"""Modeled checkpoint compression: ratio plus CPU throughput cost.

Compression trades checkpoint *volume* (what the shared PFS charges for)
against *CPU time* (charged to the simulation clock before the write
burst).  The models are calibrated to the usual suspects:

* ``none`` — the identity stage, zero cost;
* ``zlib-like`` — deflate-class: strong ratio, modest throughput;
* ``lz4-like`` — fast byte-oriented: weaker ratio, near-memcpy speed.

Floating-point checkpoint data rarely compresses as well as text; the
ratios below sit at the conservative end of what FTI/VeloC-style
pipelines report for HPC state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.util.units import MB, SEC, US


@dataclass(frozen=True)
class CompressionModel:
    """One compression stage: size ratio and modeled CPU cost.

    Decompression is asymmetric on real codecs — inflate runs several
    times faster than deflate, LZ4 decode near memory speed — so the
    restart path has its own throughput.  ``None`` falls back to the
    compression throughput (symmetric)."""

    name: str
    ratio: float  # input_bytes / output_bytes (>= 1.0)
    throughput_bytes_per_s: float  # compression speed on one core
    fixed_ns: int = 0  # per-invocation setup cost
    # Restart-side decode speed (raw bytes produced per second).
    decompress_throughput_bytes_per_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ValueError(f"{self.name}: ratio must be >= 1.0")
        if self.throughput_bytes_per_s <= 0:
            raise ValueError(f"{self.name}: throughput must be positive")
        if (
            self.decompress_throughput_bytes_per_s is not None
            and self.decompress_throughput_bytes_per_s <= 0
        ):
            raise ValueError(
                f"{self.name}: decompress throughput must be positive"
            )

    def compress(self, nbytes: int) -> Tuple[int, int]:
        """``(stored_bytes, cost_ns)`` for compressing ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative size")
        if nbytes == 0:
            return 0, 0
        stored = max(1, int(nbytes / self.ratio))
        cost = self.fixed_ns + int(nbytes / self.throughput_bytes_per_s * SEC)
        return stored, cost

    def decompress_cost_ns(self, raw_bytes: int) -> int:
        """Modeled CPU time to reinflate ``raw_bytes`` of state on the
        restart path (region-level restart cost: decompression
        throughput != compression throughput)."""
        if raw_bytes < 0:
            raise ValueError("negative size")
        if raw_bytes == 0 or self.ratio == 1.0:
            return 0  # identity stage: nothing was compressed
        tput = (
            self.decompress_throughput_bytes_per_s
            or self.throughput_bytes_per_s
        )
        return self.fixed_ns + int(raw_bytes / tput * SEC)


#: The identity stage: payloads are stored raw, nothing is charged.
NO_COMPRESSION = CompressionModel(
    name="none", ratio=1.0, throughput_bytes_per_s=float("inf"), fixed_ns=0
)

_MODELS: Dict[str, CompressionModel] = {
    "none": NO_COMPRESSION,
    "zlib-like": CompressionModel(
        name="zlib-like",
        ratio=2.2,
        throughput_bytes_per_s=400 * MB,
        fixed_ns=20 * US,
        decompress_throughput_bytes_per_s=1_200 * MB,
    ),
    "lz4-like": CompressionModel(
        name="lz4-like",
        ratio=1.6,
        throughput_bytes_per_s=2_000 * MB,
        fixed_ns=5 * US,
        decompress_throughput_bytes_per_s=4_500 * MB,
    ),
}


def compression_model(name: str) -> CompressionModel:
    """Look up a model by spec name (``none``/``zlib-like``/``lz4-like``)."""
    try:
        return _MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown compression model {name!r} "
            f"(valid models: {', '.join(sorted(_MODELS))})"
        ) from None


def compression_names() -> Tuple[str, ...]:
    return tuple(sorted(_MODELS))
