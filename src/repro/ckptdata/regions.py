"""Memory-region model of one rank's checkpointable state.

Incremental checkpointing pays off exactly when an application rewrites
only part of its state between two checkpoints (FTI's differential
levels, DMTCP's dirty-page tracking).  The model here is deliberately
coarse: a rank's state is a handful of **regions**, each with a size and
a per-iteration *dirty fraction* — the probability mass of the region
rewritten in one application iteration.  Stencil codes have a large,
almost-fully-rewritten field array plus cold setup tables; solvers keep
big read-mostly operators next to small hot vectors.

Dirty coverage over ``k`` iterations follows the standard independent-
writes saturation curve: a region with per-iteration dirty fraction
``f`` has ``1 - (1 - f)^k`` of its bytes dirty after ``k`` iterations,
so a delta checkpoint never exceeds the full size and degrades
gracefully toward it as the checkpoint interval grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.units import KB, MB


@dataclass(frozen=True)
class MemoryRegion:
    """One contiguous piece of a rank's application state."""

    name: str
    nbytes: int
    # Fraction of the region's bytes rewritten per application iteration.
    dirty_fraction: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"region {self.name!r}: negative size")
        if not 0.0 <= self.dirty_fraction <= 1.0:
            raise ValueError(
                f"region {self.name!r}: dirty_fraction must be in [0, 1], "
                f"got {self.dirty_fraction}"
            )

    def dirty_bytes(self, iters: int) -> int:
        """Bytes dirty after ``iters`` iterations since the base copy."""
        if iters <= 0:
            return 0
        coverage = 1.0 - (1.0 - self.dirty_fraction) ** iters
        return int(self.nbytes * coverage)


@dataclass(frozen=True)
class WriteLocalityProfile:
    """A rank's state as regions with per-iteration write locality.

    Exposed by :class:`~repro.apps.base.AppSpec.write_locality`; apps
    without a hand-calibrated profile fall back to
    :func:`synthetic_default_profile`.
    """

    regions: Tuple[MemoryRegion, ...]

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("a profile needs at least one region")
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")

    @property
    def total_bytes(self) -> int:
        """Full (level-0) checkpoint size of the application state."""
        return sum(r.nbytes for r in self.regions)

    def delta_bytes(self, iters: int) -> int:
        """Size of a delta payload covering ``iters`` iterations of
        writes since the base checkpoint (dirty-region union)."""
        return sum(r.dirty_bytes(iters) for r in self.regions)

    def dirty_fraction(self, iters: int = 1) -> float:
        """Aggregate dirty fraction after ``iters`` iterations."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return self.delta_bytes(iters) / total


def synthetic_default_profile(total_bytes: int = 4 * MB) -> WriteLocalityProfile:
    """Fallback profile for apps without a calibrated one.

    Shape borrowed from the common HPC split: a hot working set that is
    rewritten almost completely every iteration, a warm halo/buffer area,
    and cold setup tables written once at init.
    """
    if total_bytes < 4:
        raise ValueError("total_bytes too small to split into regions")
    hot = total_bytes // 2
    warm = total_bytes // 4
    cold = total_bytes - hot - warm
    return WriteLocalityProfile(
        regions=(
            MemoryRegion("hot", hot, 0.9),
            MemoryRegion("warm", warm, 0.2),
            MemoryRegion("cold", cold, 0.01),
        )
    )


def uniform_profile(total_bytes: int, dirty_fraction: float) -> WriteLocalityProfile:
    """Single-region profile (handy for tests and analytic checks)."""
    return WriteLocalityProfile(
        regions=(MemoryRegion("state", total_bytes, dirty_fraction),)
    )


#: Small profile used by unit tests and the fuzz harness: cheap enough
#: that modeled write bursts stay well under the synthetic apps' compute
#: time, but structured enough to exercise the region math.
TEST_PROFILE = WriteLocalityProfile(
    regions=(
        MemoryRegion("field", 48 * KB, 0.8),
        MemoryRegion("halo", 12 * KB, 0.3),
        MemoryRegion("setup", 4 * KB, 0.0),
    )
)
