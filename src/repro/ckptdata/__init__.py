"""Incremental checkpoint data plane: dirty regions, delta chains,
compression-aware storage costs.

See :mod:`repro.ckptdata.plane` for the subsystem overview and
``docs/ckptdata.md`` for the design notes.
"""

from repro.ckptdata.compression import (
    CompressionModel,
    NO_COMPRESSION,
    compression_model,
    compression_names,
)
from repro.ckptdata.plane import (
    DELTA,
    FULL,
    CkptDataPlane,
    CkptPayload,
    parse_ckpt_data,
)
from repro.ckptdata.regions import (
    MemoryRegion,
    TEST_PROFILE,
    WriteLocalityProfile,
    synthetic_default_profile,
    uniform_profile,
)

__all__ = [
    "CompressionModel",
    "NO_COMPRESSION",
    "compression_model",
    "compression_names",
    "DELTA",
    "FULL",
    "CkptDataPlane",
    "CkptPayload",
    "parse_ckpt_data",
    "MemoryRegion",
    "TEST_PROFILE",
    "WriteLocalityProfile",
    "synthetic_default_profile",
    "uniform_profile",
]
