"""The incremental checkpoint data plane.

Sits between the protocol and the storage backends: the protocol asks it
to turn "rank ``r`` checkpoints at round ``n``" into a
:class:`CkptPayload` — **full** (the whole region set) or **delta** (the
dirty-region union since the previous round) — runs the modeled
compression stage, and maintains each rank's **delta chain** so the
storage layer can reason about which rounds are actually restorable.

Chain semantics
---------------

* Round payloads form per-rank chains: a delta's ``base_round`` is the
  immediately preceding checkpoint round; walking base links from any
  round reaches the chain's full checkpoint.
* A full payload is produced: on a rank's first checkpoint, every
  ``full_period`` rounds, when the chain would exceed ``chain_cap``
  deltas, after a restart (a delta must never span a rollback — the
  re-executed state has no committed base), and — unless
  ``full_on_durable=False`` — on rounds the storage plan propagates to a
  durable tier (so a PFS round is self-contained, FTI/SCR style).
* Restoring round ``n`` means reading the whole chain ``full..n``; a
  delta whose base copy was lost with a node is unusable (the storage
  backend enforces this, see ``TieredBackend.restorable_rounds``).

The sender-side log bytes ride along with whatever payload the round
produces (they are already incremental: only records not carried by an
earlier commit are resident), and the compression stage covers the
combined blob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ckptdata.compression import (
    CompressionModel,
    NO_COMPRESSION,
    compression_model,
)
from repro.ckptdata.regions import WriteLocalityProfile, synthetic_default_profile

FULL = "full"
DELTA = "delta"


@dataclass(frozen=True)
class CkptPayload:
    """What one checkpoint round actually writes for one rank.

    ``full_bytes`` is the logical (uncompressed, full-state) size the
    round *represents*; ``delta_bytes`` is the uncompressed size of what
    this round carries (== ``full_bytes + log_bytes`` for a full);
    ``stored_bytes`` is what the storage tiers are charged for after
    compression."""

    kind: str  # FULL | DELTA
    round_no: int
    full_bytes: int  # uncompressed full state size (app regions)
    delta_bytes: int  # uncompressed bytes carried this round (incl. logs)
    base_round: Optional[int]  # previous chain link (None for a full)
    stored_bytes: int  # bytes written to storage (post-compression)
    compress_ns: int  # modeled compression CPU time, charged to the clock
    compression: str = "none"
    chain_len: int = 0  # deltas since the chain's full (0 for a full)

    def __post_init__(self) -> None:
        if self.kind not in (FULL, DELTA):
            raise ValueError(f"payload kind must be full|delta, got {self.kind!r}")
        if self.kind == FULL and self.base_round is not None:
            raise ValueError("a full payload has no base round")
        if self.kind == DELTA and self.base_round is None:
            raise ValueError("a delta payload needs a base round")


@dataclass
class _RankChain:
    """Per-rank chain cursor."""

    last_round: int = 0
    chain_len: int = 0  # deltas since the last full
    rounds_since_full: int = 0
    force_full: bool = True  # first checkpoint / after restart


class CkptDataPlane:
    """Produces payloads and tracks per-rank delta chains.

    ``mode="full"`` makes every round a full checkpoint (the data plane
    still models sizes and compression); ``mode="incr"`` produces deltas
    between periodic fulls."""

    def __init__(
        self,
        mode: str = "incr",
        full_period: int = 8,
        chain_cap: Optional[int] = None,
        compression: CompressionModel = NO_COMPRESSION,
        profile: Optional[WriteLocalityProfile] = None,
        full_on_durable: bool = True,
    ) -> None:
        if mode not in ("full", "incr"):
            raise ValueError(f"ckpt-data mode must be full|incr, got {mode!r}")
        if full_period < 1:
            raise ValueError(f"full_period must be >= 1, got {full_period}")
        if chain_cap is not None and chain_cap < 1:
            raise ValueError(f"chain_cap must be >= 1, got {chain_cap}")
        self.mode = mode
        self.full_period = full_period
        # Longest admissible run of deltas; full_period already bounds it,
        # chain_cap tightens it independently of the full cadence.
        self.chain_cap = chain_cap if chain_cap is not None else full_period - 1
        self.compression = compression
        self.profile = profile or synthetic_default_profile()
        self.full_on_durable = full_on_durable
        self._chains: Dict[int, _RankChain] = {}
        # Accounting (reported by the deltachain experiment).
        self.full_payloads = 0
        self.delta_payloads = 0
        self.raw_bytes = 0  # uncompressed bytes handed to compression
        self.stored_bytes_total = 0
        self.compress_ns_total = 0

    # ------------------------------------------------------------------
    def _chain(self, rank: int) -> _RankChain:
        ch = self._chains.get(rank)
        if ch is None:
            ch = self._chains[rank] = _RankChain()
        return ch

    def note_restore(self, rank: int, round_no: int) -> None:
        """The rank restarted from ``round_no``: the next payload must be
        a full (a delta over a rolled-back base would be unsound — the
        base the re-execution produces was never committed)."""
        ch = self._chain(rank)
        ch.last_round = round_no
        ch.chain_len = 0
        ch.rounds_since_full = 0
        ch.force_full = True

    def _wants_full(self, ch: _RankChain, round_no: int, durable_round: bool) -> bool:
        if self.mode == "full" or ch.force_full:
            return True
        if round_no != ch.last_round + 1:
            return True  # non-contiguous rounds (re-taken after rollback)
        if ch.rounds_since_full + 1 >= self.full_period:
            return True
        if ch.chain_len + 1 > self.chain_cap:
            return True
        if durable_round and self.full_on_durable:
            return True
        return False

    def build_payload(
        self,
        rank: int,
        round_no: int,
        iters_since_prev: int,
        log_bytes: int = 0,
        durable_round: bool = False,
        state_bytes: Optional[int] = None,
    ) -> CkptPayload:
        """Payload for ``rank``'s checkpoint of ``round_no``.

        ``iters_since_prev`` is the number of application iterations
        covered since the previous checkpoint (the dirty-region window);
        ``log_bytes`` rides along uncompressed-size-wise and is
        compressed with the state blob; ``durable_round`` tells the plane
        the storage plan writes a durable tier this round."""
        full_bytes = state_bytes if state_bytes else self.profile.total_bytes
        ch = self._chain(rank)
        if self._wants_full(ch, round_no, durable_round):
            kind, base, chain_len = FULL, None, 0
            carried = full_bytes
        else:
            kind, base = DELTA, ch.last_round
            chain_len = ch.chain_len + 1
            delta = self.profile.delta_bytes(max(1, iters_since_prev))
            if state_bytes:
                # An app-declared size scales the profile's delta by the
                # same factor (the profile defines the *shape*).
                delta = int(delta * (state_bytes / max(1, self.profile.total_bytes)))
            carried = min(full_bytes, delta)
        raw = carried + max(0, log_bytes)
        stored, cost_ns = self.compression.compress(raw)
        payload = CkptPayload(
            kind=kind,
            round_no=round_no,
            full_bytes=full_bytes,
            delta_bytes=raw,
            base_round=base,
            stored_bytes=stored,
            compress_ns=cost_ns,
            compression=self.compression.name,
            chain_len=chain_len,
        )
        ch.last_round = round_no
        ch.chain_len = chain_len
        ch.rounds_since_full = 0 if kind == FULL else ch.rounds_since_full + 1
        ch.force_full = False
        if kind == FULL:
            self.full_payloads += 1
        else:
            self.delta_payloads += 1
        self.raw_bytes += raw
        self.stored_bytes_total += stored
        self.compress_ns_total += cost_ns
        return payload

    # ------------------------------------------------------------------
    def expected_stored_bytes(
        self, iters_per_round: int = 1, full_period: Optional[int] = None
    ) -> int:
        """Expected bytes written per checkpoint round in steady state:
        one full plus ``period - 1`` deltas per cycle, compressed.
        Feeds the Young/Daly cadence's write-cost ``C`` so the interval
        optimizes against the *incremental* cost, not the full size.

        ``full_period`` overrides the configured one with the *effective*
        full cadence when something forces fulls more often (the caller
        knows the storage plan's durable-round density; ``chain_cap`` is
        applied here)."""
        period = full_period if full_period is not None else self.full_period
        period = max(1, min(period, self.chain_cap + 1))
        full_stored, _ = self.compression.compress(self.profile.total_bytes)
        if self.mode == "full" or period <= 1:
            return full_stored
        delta_raw = self.profile.delta_bytes(max(1, iters_per_round))
        delta_stored, _ = self.compression.compress(delta_raw)
        cycle = full_stored + (period - 1) * delta_stored
        return cycle // period

    def stats(self) -> dict:
        return {
            "mode": self.mode,
            "full_period": self.full_period,
            "chain_cap": self.chain_cap,
            "compression": self.compression.name,
            "full_payloads": self.full_payloads,
            "delta_payloads": self.delta_payloads,
            "raw_bytes": self.raw_bytes,
            "stored_bytes": self.stored_bytes_total,
            "compress_ns": self.compress_ns_total,
        }


def parse_ckpt_data(
    spec: str, profile: Optional[WriteLocalityProfile] = None
) -> CkptDataPlane:
    """Build a data plane from a CLI spec string.

    * ``"full"`` — full payloads every round (sizes + compression still
      modeled);
    * ``"incr"`` — deltas with the default full period (8);
    * ``"incr:4"`` — a full every 4th round;
    * ``"incr:4:zlib-like"`` — plus the deflate-class compression stage;
    * ``"full::zlib-like"`` — full payloads, compressed.
    """
    parts = spec.split(":")
    mode = parts[0].strip()
    if mode not in ("full", "incr"):
        raise ValueError(
            f"unknown ckpt-data mode {mode!r} in spec {spec!r} "
            "(write e.g. 'full', 'incr', 'incr:4', 'incr:4:zlib-like')"
        )
    if len(parts) > 3:
        raise ValueError(
            f"too many ':' fields in ckpt-data spec {spec!r} "
            "(format: mode[:period][:compression])"
        )
    period = 8
    if len(parts) > 1 and parts[1].strip():
        try:
            period = int(parts[1])
        except ValueError:
            raise ValueError(
                f"bad full period {parts[1]!r} in ckpt-data spec {spec!r}: "
                "expected an integer (write e.g. 'incr:4')"
            ) from None
        if period < 1:
            raise ValueError(
                f"bad full period {period} in ckpt-data spec {spec!r}: "
                "must be >= 1"
            )
    comp = NO_COMPRESSION
    if len(parts) > 2 and parts[2].strip():
        comp = compression_model(parts[2].strip())
    return CkptDataPlane(
        mode=mode, full_period=period, compression=comp, profile=profile
    )
