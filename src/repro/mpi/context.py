"""The application-facing API (what "application code" is written against).

A :class:`RankContext` wraps one rank's runtime and exposes an mpi4py-like
surface plus the SPBC additions.  Applications address peers by
*communicator-local* rank (like real MPI); the context translates to world
ranks before calling into the runtime.

Blocking calls are generators: application code drives them with
``yield from`` (the simulator's equivalent of a blocking MPI call).
Nonblocking calls (``isend``/``irecv``/``test``/``iprobe``) are plain
calls, exactly as in MPI.

The three SPBC API primitives (section 5.1) are exposed verbatim:
``declare_pattern`` / ``begin_iteration`` / ``end_iteration``.  They are
purely local (no communication) and are no-ops for matching purposes
unless the SPBC hooks are installed.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.mpi import collectives as coll
from repro.mpi.communicator import Communicator
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import RecvRequest, Request, SendRequest, Status


class RankContext:
    """One rank's view of the world."""

    __slots__ = ("world", "rt", "comm")

    def __init__(self, world, rank: int, comm: Optional[Communicator] = None) -> None:
        self.world = world
        self.rt = world.runtimes[rank]
        self.comm = comm or world.comm_world

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Rank inside the context's communicator."""
        return self.comm.comm_rank(self.rt.rank)

    @property
    def world_rank(self) -> int:
        return self.rt.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def now(self) -> int:
        return self.rt.engine.now

    def with_comm(self, comm: Communicator) -> "RankContext":
        """A view of the same rank scoped to another communicator."""
        return RankContext(self.world, self.rt.rank, comm)

    def _world_dst(self, comm_rank: int, comm: Optional[Communicator]) -> int:
        return (comm or self.comm).world_rank(comm_rank)

    def _world_src(self, comm_rank: int, comm: Optional[Communicator]) -> int:
        if comm_rank == ANY_SOURCE:
            return ANY_SOURCE
        return (comm or self.comm).world_rank(comm_rank)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def isend(
        self,
        dst: int,
        payload: Any = None,
        nbytes: int = 0,
        tag: int = 0,
        comm: Optional[Communicator] = None,
    ) -> SendRequest:
        return self.rt.isend(
            self._world_dst(dst, comm), payload, nbytes, tag, comm or self.comm
        )

    def irecv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> RecvRequest:
        return self.rt.irecv(self._world_src(src, comm), tag, comm or self.comm)

    def send(
        self,
        dst: int,
        payload: Any = None,
        nbytes: int = 0,
        tag: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        yield from self.rt.send(
            self._world_dst(dst, comm), payload, nbytes, tag, comm or self.comm
        )

    def recv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        status = yield from self.rt.recv(
            self._world_src(src, comm), tag, comm or self.comm
        )
        return status

    def sendrecv(
        self,
        dst: int,
        payload: Any = None,
        nbytes: int = 0,
        src: int = ANY_SOURCE,
        tag: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        """Concurrent send+recv (the halo-exchange workhorse)."""
        rt = self.rt
        t0 = rt.engine.now if rt._tele_on else 0
        sreq = self.isend(dst, payload, nbytes, tag, comm)
        rreq = self.irecv(src, tag, comm)
        # Fused debt-flush + receive wait (see MPIRuntime._recv_block),
        # then the send request is settled directly.
        block = rt._recv_block(rreq)
        if block is not None:
            yield block
        if not sreq.done:
            if sreq.completes_at_ns >= 0:
                rt._settle_or_schedule(sreq)
            if not sreq.done:
                yield sreq.trigger
        if rt._tele_on:
            now = rt.engine.now
            if now > t0:
                rt.telemetry.rank_span("mpi-wait", rt.rank, t0, now)
        return rreq.status

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def wait(self, req: Request) -> Generator:
        status = yield from self.rt.wait(req)
        return status

    def waitall(self, reqs: List[Request]) -> Generator:
        statuses = yield from self.rt.waitall(reqs)
        return statuses

    def waitany(self, reqs: List[Request]) -> Generator:
        pair = yield from self.rt.waitany(reqs)
        return pair

    def test(self, req: Request) -> Tuple[bool, Optional[Status]]:
        return self.rt.test(req)

    def testall(self, reqs: List[Request]) -> Tuple[bool, Optional[List[Status]]]:
        return self.rt.testall(reqs)

    def testany(self, reqs: List[Request]) -> Tuple[bool, int, Optional[Status]]:
        return self.rt.testany(reqs)

    def waitsome(self, reqs: List[Request]) -> Generator:
        pairs = yield from self.rt.waitsome(reqs)
        return pairs

    def iprobe(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> Tuple[bool, Optional[Status]]:
        return self.rt.iprobe(self._world_src(src, comm), tag, comm or self.comm)

    def probe(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        status = yield from self.rt.probe(
            self._world_src(src, comm), tag, comm or self.comm
        )
        return status

    # ------------------------------------------------------------------
    # Collectives (on the context communicator unless overridden)
    # ------------------------------------------------------------------
    def barrier(self, comm: Optional[Communicator] = None) -> Generator:
        yield from coll.barrier(self.rt, comm or self.comm)

    def bcast(
        self,
        value: Any = None,
        nbytes: int = 0,
        root: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.bcast(self.rt, comm or self.comm, value, nbytes, root)
        return result

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        nbytes: int = 0,
        root: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.reduce(self.rt, comm or self.comm, value, op, nbytes, root)
        return result

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        nbytes: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.allreduce(self.rt, comm or self.comm, value, op, nbytes)
        return result

    def allgather(
        self, value: Any, nbytes: int = 0, comm: Optional[Communicator] = None
    ) -> Generator:
        result = yield from coll.allgather(self.rt, comm or self.comm, value, nbytes)
        return result

    def alltoall(
        self, values: List[Any], nbytes_each: int = 0, comm: Optional[Communicator] = None
    ) -> Generator:
        result = yield from coll.alltoall(self.rt, comm or self.comm, values, nbytes_each)
        return result

    def scan(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        nbytes: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.scan(self.rt, comm or self.comm, value, op, nbytes)
        return result

    def exscan(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        nbytes: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.exscan(self.rt, comm or self.comm, value, op, nbytes)
        return result

    def reduce_scatter_block(
        self,
        values: List[Any],
        op: Callable[[Any, Any], Any],
        nbytes_each: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.reduce_scatter_block(
            self.rt, comm or self.comm, values, op, nbytes_each
        )
        return result

    def gather(
        self,
        value: Any,
        nbytes: int = 0,
        root: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.gather(self.rt, comm or self.comm, value, nbytes, root)
        return result

    def scatter(
        self,
        values: Optional[List[Any]] = None,
        nbytes_each: int = 0,
        root: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        result = yield from coll.scatter(
            self.rt, comm or self.comm, values, nbytes_each, root
        )
        return result

    # ------------------------------------------------------------------
    # Compute model / checkpointing / patterns
    # ------------------------------------------------------------------
    def compute(self, ns: int) -> Generator:
        """Spend ``ns`` of virtual CPU time.

        Body inlined from MPIRuntime.compute: one generator object per
        compute phase instead of two (hot: once per app iteration)."""
        rt = self.rt
        if ns < 0:
            raise ValueError("negative compute time")
        rt.compute_total_ns += ns
        debt, rt.cpu_debt_ns = rt.cpu_debt_ns, 0
        total = ns + debt
        warp = rt.world.warp
        if warp is not None:
            warp.on_compute(rt, total)
        sleep = rt._csleep
        sleep.delay_ns = total
        yield sleep

    def maybe_checkpoint(self, state_fn: Callable[[], dict]) -> Generator:
        """Offer the protocol a checkpoint opportunity (app is quiescent)."""
        result = yield from self.rt.maybe_checkpoint(state_fn)
        return result

    # ------------------------------------------------------------------
    # Steady-state warp cooperation (repro.sim.warp)
    # ------------------------------------------------------------------
    def declare_warpable(self) -> None:
        """Declare this rank's loop warp-capable.

        Contract: the loop body starts with ``maybe_checkpoint`` followed
        by exactly one leading ``compute`` phase, calls :meth:`warp_jump`
        immediately after that compute, and — when granted a jump of K —
        advances its *own* state (loop index, accumulators) by exactly
        what K skipped iterations would have produced.  Warp mode only
        engages when every live rank has declared."""
        self.rt.warp_capable = True

    def warp_jump(self) -> int:
        """Iterations fast-forwarded for this rank since the last call.

        Returns 0 in exact mode (and almost always): nonzero exactly
        once per granted warp, at the first post-grant loop body."""
        rt = self.rt
        k = rt.warp_skip
        if k:
            rt.warp_skip = 0
        return k

    def declare_pattern(self) -> int:
        """SPBC API: DECLARE_PATTERN — returns a fresh pattern id."""
        return self.rt.declare_pattern()

    def begin_iteration(self, pattern_id: int) -> None:
        """SPBC API: BEGIN_ITERATION — activates the pattern, bumps its
        iteration counter."""
        self.rt.begin_iteration(pattern_id)

    def end_iteration(self, pattern_id: int) -> None:
        """SPBC API: END_ITERATION — restores the default pattern."""
        self.rt.end_iteration(pattern_id)
