"""The per-rank matching engine.

Mirrors MPICH's posted-receive queue and unexpected-message queue:

* when a message arrives it is matched against posted requests in
  **posting order**;
* when a receive is posted it is matched against unexpected messages in
  **arrival order** (which per-channel equals send order, thanks to FIFO
  channels);
* ``ANY_SOURCE``/``ANY_TAG`` wildcards follow the MPI standard;
* the protocol hook ``match_allowed`` is consulted on top of the standard
  envelope match — this is exactly the one-line change SPBC makes to
  MPICH's matching function (section 5.2.1): message and request must
  carry the same ``(pattern_id, iteration_id)`` identifier.

A message is matched at most once and a request is matched at most once;
both invariants are asserted here because the whole recovery correctness
argument (Theorem 1) is about *which* pairs may match.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.message import Envelope
from repro.mpi.request import RecvRequest


class MatchingEngine:
    __slots__ = ("_match_allowed", "posted", "unexpected", "matches")

    def __init__(self, match_allowed: Callable[[RecvRequest, Envelope], bool]) -> None:
        self._match_allowed = match_allowed
        self.posted: List[RecvRequest] = []
        self.unexpected: List[Envelope] = []
        self.matches = 0

    # ------------------------------------------------------------------
    def allowed(self, req: RecvRequest, env: Envelope) -> bool:
        return req.header_matches(env) and self._match_allowed(req, env)

    def post(self, req: RecvRequest) -> Optional[Envelope]:
        """Post a reception request; returns the matched envelope if an
        unexpected message satisfies it, else queues the request."""
        if req.matched_env is not None:
            raise AssertionError("request posted twice")
        if not self.unexpected:  # fast path: nothing queued
            self.posted.append(req)
            return None
        allowed = self._match_allowed
        for i, env in enumerate(self.unexpected):
            if req.header_matches(env) and allowed(req, env):
                del self.unexpected[i]
                req.matched_env = env
                self.matches += 1
                return env
        self.posted.append(req)
        return None

    def arrive(self, env: Envelope) -> Optional[RecvRequest]:
        """Process an arriving envelope; returns the matched request if a
        posted request satisfies it, else queues the message."""
        allowed = self._match_allowed
        comm_id = env.comm_id
        src = env.src
        tag = env.tag
        # header_matches inlined: this loop runs once per delivered
        # message and the call overhead was measurable.
        for i, req in enumerate(self.posted):
            if (
                req.comm_id == comm_id
                and (req.src == ANY_SOURCE or req.src == src)
                and (req.tag == ANY_TAG or req.tag == tag)
                and allowed(req, env)
            ):
                del self.posted[i]
                req.matched_env = env  # _bind inlined (once per message)
                self.matches += 1
                return req
        self.unexpected.append(env)
        return None

    def probe(
        self, probe_req: RecvRequest
    ) -> Optional[Envelope]:
        """First unexpected message that would match ``probe_req`` (the
        message is left in place — MPI_Iprobe semantics)."""
        for env in self.unexpected:
            if self.allowed(probe_req, env):
                return env
        return None

    def cancel(self, req: RecvRequest) -> bool:
        """Remove a posted request (used on process kill)."""
        try:
            self.posted.remove(req)
        except ValueError:
            return False
        req.cancelled = True
        return True

    def clear(self) -> None:
        """Drop all state (rank restart)."""
        self.posted.clear()
        self.unexpected.clear()

    # ------------------------------------------------------------------
    def _bind(self, req: RecvRequest, env: Envelope) -> None:
        if req.matched_env is not None:  # pragma: no cover - invariant
            raise AssertionError(f"double match of request {req.req_id}")
        req.matched_env = env
        self.matches += 1

    @property
    def posted_count(self) -> int:
        return len(self.posted)

    @property
    def unexpected_count(self) -> int:
        return len(self.unexpected)
