"""Collective operations built on point-to-point messaging.

The paper assumes collectives are implemented over point-to-point
(section 3.2), which makes them automatically covered by SPBC: their
constituent messages get per-channel sequence numbers, are logged when
they cross clusters, and are replayed like any other message.  All
algorithms below use named receives only — no ``ANY_SOURCE`` — so they
are deterministic and never need the pattern API.

Algorithms (standard textbook choices, matching MPICH's defaults for
mid-size messages):

* barrier    — dissemination (ceil(log2 n) rounds);
* bcast      — binomial tree;
* reduce     — binomial tree (children fold into parents);
* allreduce  — reduce to root 0 + bcast;
* allgather  — ring (n-1 steps);
* alltoall   — pairwise exchange (n-1 steps);
* gather / scatter — linear to/from root.

Every function is a generator and must be driven with ``yield from``.
Tags: each collective instance consumes one tag above
``TAG_COLLECTIVE_BASE`` from a per-communicator counter; SPMD programs
call collectives in the same order on every member rank, so counters
agree across ranks.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.mpi.communicator import Communicator
from repro.mpi.constants import TAG_COLLECTIVE_BASE


def _coll_tag(rt, comm: Communicator) -> int:
    seq = rt._coll_seq.get(comm.comm_id, 0) + 1
    rt._coll_seq[comm.comm_id] = seq
    return TAG_COLLECTIVE_BASE + seq


def barrier(rt, comm: Communicator) -> Generator:
    """Dissemination barrier: after round k every rank has heard (directly
    or transitively) from 2^(k+1) predecessors."""
    n = comm.size
    if n == 1:
        return
    me = comm.comm_rank(rt.rank)
    tag = _coll_tag(rt, comm)
    wr = comm.world_ranks
    k = 1
    while k < n:
        dst = wr[(me + k) % n]
        src = wr[(me - k) % n]
        sreq = rt.isend(dst, None, 8, tag, comm)
        rreq = rt.irecv(src, tag, comm)
        # Fused debt-flush + receive wait (see MPIRuntime._recv_block),
        # hot inside every coordinated checkpoint.
        block = rt._recv_block(rreq)
        if block is not None:
            yield block
        if not sreq.done:
            if sreq.completes_at_ns >= 0:
                rt._settle_or_schedule(sreq)
            if not sreq.done:
                yield sreq.trigger
        k *= 2


def bcast(
    rt, comm: Communicator, value: Any = None, nbytes: int = 0, root: int = 0
) -> Generator:
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    n = comm.size
    if n == 1:
        return value
    me = comm.comm_rank(rt.rank)
    vrank = (me - root) % n  # virtual rank: root becomes 0
    tag = _coll_tag(rt, comm)

    # Receive from parent (everyone except the root).
    if vrank != 0:
        mask = 1
        while not vrank & mask:
            mask <<= 1
        parent = (vrank - mask + n) % n
        status = yield from rt.recv(comm.world_rank((parent + root) % n), tag, comm)
        value = status.payload

    # Forward to children.
    mask = 1
    while mask < n:
        if vrank & (mask - 1) == 0 and vrank & mask == 0:
            child = vrank + mask
            if child < n:
                yield from rt.send(
                    comm.world_rank((child + root) % n), value, nbytes, tag, comm
                )
        mask <<= 1
    return value


def reduce(
    rt,
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: int = 0,
    root: int = 0,
) -> Generator:
    """Binomial-tree reduction; returns the folded value on root, None
    elsewhere.  ``op`` must be associative (MPI requirement)."""
    n = comm.size
    me = comm.comm_rank(rt.rank)
    if n == 1:
        return value
    vrank = (me - root) % n
    tag = _coll_tag(rt, comm)
    acc = value
    mask = 1
    while mask < n:
        if vrank & mask:
            parent = vrank & ~mask
            yield from rt.send(comm.world_rank((parent + root) % n), acc, nbytes, tag, comm)
            return None
        partner = vrank | mask
        if partner < n:
            status = yield from rt.recv(comm.world_rank((partner + root) % n), tag, comm)
            acc = op(acc, status.payload)
        mask <<= 1
    return acc


def allreduce(
    rt, comm: Communicator, value: Any, op: Callable[[Any, Any], Any], nbytes: int = 0
) -> Generator:
    """Reduce to comm-rank 0 then broadcast the result."""
    folded = yield from reduce(rt, comm, value, op, nbytes, root=0)
    result = yield from bcast(rt, comm, folded, nbytes, root=0)
    return result


def allgather(rt, comm: Communicator, value: Any, nbytes: int = 0) -> Generator:
    """Ring allgather; returns a list indexed by communicator rank."""
    n = comm.size
    me = comm.comm_rank(rt.rank)
    out: List[Any] = [None] * n
    out[me] = value
    if n == 1:
        return out
    tag = _coll_tag(rt, comm)
    wr = comm.world_ranks
    right = wr[(me + 1) % n]
    left = wr[(me - 1) % n]
    # At step s every rank forwards the block it received at step s-1.
    block = me
    for _step in range(n - 1):
        sreq = rt.isend(right, (block, out[block]), nbytes, tag, comm)
        rreq = rt.irecv(left, tag, comm)
        # Fused debt-flush + receive wait (see MPIRuntime._recv_block).
        block = rt._recv_block(rreq)
        if block is not None:
            yield block
        if not sreq.done:
            if sreq.completes_at_ns >= 0:
                rt._settle_or_schedule(sreq)
            if not sreq.done:
                yield sreq.trigger
        block, payload = rreq.status.payload
        out[block] = payload
    return out


def alltoall(
    rt, comm: Communicator, values: List[Any], nbytes_each: int = 0
) -> Generator:
    """Pairwise-exchange all-to-all; ``values[i]`` goes to comm rank i.
    Returns the list of received values indexed by source comm rank."""
    n = comm.size
    if len(values) != n:
        raise ValueError(f"alltoall needs {n} values, got {len(values)}")
    me = comm.comm_rank(rt.rank)
    out: List[Any] = [None] * n
    out[me] = values[me]
    if n == 1:
        return out
    tag = _coll_tag(rt, comm)
    for step in range(1, n):
        dst = (me + step) % n
        src = (me - step) % n
        sreq = rt.isend(comm.world_rank(dst), values[dst], nbytes_each, tag, comm)
        status = yield from rt.recv(comm.world_rank(src), tag, comm)
        out[src] = status.payload
        yield from rt.wait(sreq)
    return out


def scan(
    rt, comm: Communicator, value: Any, op: Callable[[Any, Any], Any], nbytes: int = 0
) -> Generator:
    """Inclusive prefix reduction (MPI_Scan): rank i returns
    op-fold(values of ranks 0..i).  Linear chain algorithm."""
    n = comm.size
    me = comm.comm_rank(rt.rank)
    tag = _coll_tag(rt, comm)
    acc = value
    if me > 0:
        status = yield from rt.recv(comm.world_rank(me - 1), tag, comm)
        acc = op(status.payload, value)
    if me < n - 1:
        yield from rt.send(comm.world_rank(me + 1), acc, nbytes, tag, comm)
    return acc


def exscan(
    rt, comm: Communicator, value: Any, op: Callable[[Any, Any], Any], nbytes: int = 0
) -> Generator:
    """Exclusive prefix reduction (MPI_Exscan): rank 0 returns None,
    rank i > 0 returns op-fold(values of ranks 0..i-1)."""
    n = comm.size
    me = comm.comm_rank(rt.rank)
    tag = _coll_tag(rt, comm)
    prefix = None
    if me > 0:
        status = yield from rt.recv(comm.world_rank(me - 1), tag, comm)
        prefix = status.payload
    if me < n - 1:
        nxt = value if prefix is None else op(prefix, value)
        yield from rt.send(comm.world_rank(me + 1), nxt, nbytes, tag, comm)
    return prefix


def reduce_scatter_block(
    rt,
    comm: Communicator,
    values: List[Any],
    op: Callable[[Any, Any], Any],
    nbytes_each: int = 0,
) -> Generator:
    """MPI_Reduce_scatter_block: element i of the op-fold across ranks
    lands on comm rank i.  Implemented as alltoall + local fold (the
    textbook pairwise algorithm for modest sizes)."""
    n = comm.size
    if len(values) != n:
        raise ValueError(f"reduce_scatter needs {n} values, got {len(values)}")
    mine = yield from alltoall(rt, comm, values, nbytes_each)
    acc = mine[0]
    for v in mine[1:]:
        acc = op(acc, v)
    return acc


def gather(
    rt, comm: Communicator, value: Any, nbytes: int = 0, root: int = 0
) -> Generator:
    """Linear gather; returns list indexed by comm rank on root, None
    elsewhere."""
    n = comm.size
    me = comm.comm_rank(rt.rank)
    tag = _coll_tag(rt, comm)
    if me != root:
        yield from rt.send(comm.world_rank(root), value, nbytes, tag, comm)
        return None
    out: List[Any] = [None] * n
    out[root] = value
    for r in range(n):
        if r == root:
            continue
        status = yield from rt.recv(comm.world_rank(r), tag, comm)
        out[r] = status.payload
    return out


def scatter(
    rt,
    comm: Communicator,
    values: Optional[List[Any]] = None,
    nbytes_each: int = 0,
    root: int = 0,
) -> Generator:
    """Linear scatter; returns this rank's element."""
    n = comm.size
    me = comm.comm_rank(rt.rank)
    tag = _coll_tag(rt, comm)
    if me == root:
        if values is None or len(values) != n:
            raise ValueError(f"scatter root needs {n} values")
        reqs = []
        for r in range(n):
            if r == root:
                continue
            reqs.append(rt.isend(comm.world_rank(r), values[r], nbytes_each, tag, comm))
        yield from rt.waitall(reqs)
        return values[root]
    status = yield from rt.recv(comm.world_rank(root), tag, comm)
    return status.payload
