"""Send/receive request objects.

Requests mirror MPI semantics: they are created by the nonblocking calls,
become ``done`` when the library completes them, and are waited on with
``Wait``-family calls.  A reception request is identified across
executions by ``{src, dst, comm, req_seq}`` where ``req_seq`` is the
per-rank posting sequence number (paper section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, DEFAULT_IDENT
from repro.sim.engine import Trigger


@dataclass
class Status:
    """Completion information (MPI_Status subset + received payload)."""

    source: int = -1
    tag: int = -1
    nbytes: int = 0
    payload: Any = None


class Request:
    """Base request: a one-shot completion trigger plus a status."""

    __slots__ = ("done", "status", "trigger", "req_id", "cancelled")

    _next_id = 0

    def __init__(self) -> None:
        self.done = False
        self.cancelled = False
        self.status = Status()
        Request._next_id += 1
        self.req_id = Request._next_id
        self.trigger = Trigger(name=f"req{self.req_id}")

    def complete(self, status: Optional[Status] = None) -> None:
        if self.done:
            return
        self.done = True
        if status is not None:
            self.status = status
        self.trigger.fire(self.status)


class SendRequest(Request):
    """Tracks one send until local completion.

    ``post_seq``/``complete_seq`` record the per-rank order in which send
    requests were posted and completed — the two orders SPBC logs to drive
    replay without rendezvous deadlocks (section 5.2.2).
    """

    __slots__ = ("env", "post_seq", "complete_seq", "rendezvous", "suppressed")

    def __init__(self, env, post_seq: int, rendezvous: bool) -> None:
        super().__init__()
        self.env = env
        self.post_seq = post_seq
        self.complete_seq = -1
        self.rendezvous = rendezvous
        self.suppressed = False  # True when skipped by recovery (seq <= LS)


class RecvRequest(Request):
    """A posted reception request."""

    __slots__ = ("src", "tag", "comm_id", "req_seq", "ident", "matched_env")

    def __init__(
        self,
        src: int,
        tag: int,
        comm_id: int,
        req_seq: int,
        ident: Tuple[int, int] = DEFAULT_IDENT,
    ) -> None:
        super().__init__()
        self.src = src  # world rank or ANY_SOURCE
        self.tag = tag
        self.comm_id = comm_id
        self.req_seq = req_seq
        self.ident = ident
        self.matched_env = None

    @property
    def anonymous(self) -> bool:
        return self.src == ANY_SOURCE

    def header_matches(self, env) -> bool:
        """MPI-standard envelope matching (communicator, source, tag)."""
        if env.comm_id != self.comm_id:
            return False
        if self.src != ANY_SOURCE and env.src != self.src:
            return False
        if self.tag != ANY_TAG and env.tag != self.tag:
            return False
        return True
