"""Send/receive request objects.

Requests mirror MPI semantics: they are created by the nonblocking calls,
become ``done`` when the library completes them, and are waited on with
``Wait``-family calls.  A reception request is identified across
executions by ``{src, dst, comm, req_seq}`` where ``req_seq`` is the
per-rank posting sequence number (paper section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Optional, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, DEFAULT_IDENT
from repro.sim.engine import Trigger


@dataclass(slots=True)
class Status:
    """Completion information (MPI_Status subset + received payload)."""

    source: int = -1
    tag: int = -1
    nbytes: int = 0
    payload: Any = None


class Request:
    """Base request: a one-shot completion trigger plus a status.

    The trigger is created lazily on first access: requests that complete
    before anyone waits on them (eager sends finishing at NIC-inject
    time, receives matched from the unexpected queue) never allocate one.
    Until completion, ``status`` is a shared immutable-by-convention
    placeholder — completion always installs a fresh Status.
    """

    __slots__ = (
        "done", "status", "_trigger", "req_id", "cancelled", "completes_at_ns",
    )

    _ids = count(1)
    _PENDING_STATUS = Status()

    def __init__(self) -> None:
        self.done = False
        self.cancelled = False
        self.status = Request._PENDING_STATUS
        self.req_id = next(Request._ids)
        self._trigger: Optional[Trigger] = None
        # >= 0: an eager send completing lazily at that virtual time (no
        # engine event; the runtime settles it at observation points —
        # see MPIRuntime._settle/_settle_or_schedule).  -1 otherwise.
        self.completes_at_ns = -1

    @property
    def trigger(self) -> Trigger:
        t = self._trigger
        if t is None:
            t = self._trigger = Trigger()
            if self.done:
                t.fire(self.status)
        return t

    def complete(self, status: Optional[Status] = None) -> None:
        if self.done:
            return
        self.done = True
        if status is not None:
            self.status = status
        if self._trigger is not None:
            self._trigger.fire(self.status)


class SendRequest(Request):
    """Tracks one send until local completion.

    ``post_seq``/``complete_seq`` record the per-rank order in which send
    requests were posted and completed — the two orders SPBC logs to drive
    replay without rendezvous deadlocks (section 5.2.2).
    """

    __slots__ = ("env", "post_seq", "complete_seq", "rendezvous", "suppressed")

    def __init__(self, env, post_seq: int, rendezvous: bool) -> None:
        # Base init inlined (one request per send on the hot path).
        self.done = False
        self.cancelled = False
        self.status = Request._PENDING_STATUS
        self.req_id = next(Request._ids)
        self._trigger = None
        self.completes_at_ns = -1
        self.env = env
        self.post_seq = post_seq
        self.complete_seq = -1
        self.rendezvous = rendezvous
        self.suppressed = False  # True when skipped by recovery (seq <= LS)


class RecvRequest(Request):
    """A posted reception request."""

    __slots__ = ("src", "tag", "comm_id", "req_seq", "ident", "matched_env")

    def __init__(
        self,
        src: int,
        tag: int,
        comm_id: int,
        req_seq: int,
        ident: Tuple[int, int] = DEFAULT_IDENT,
    ) -> None:
        # Base init inlined (one request per receive on the hot path).
        self.done = False
        self.cancelled = False
        self.status = Request._PENDING_STATUS
        self.req_id = next(Request._ids)
        self._trigger = None
        self.completes_at_ns = -1
        self.src = src  # world rank or ANY_SOURCE
        self.tag = tag
        self.comm_id = comm_id
        self.req_seq = req_seq
        self.ident = ident
        self.matched_env = None

    @property
    def anonymous(self) -> bool:
        return self.src == ANY_SOURCE

    def header_matches(self, env) -> bool:
        """MPI-standard envelope matching (communicator, source, tag)."""
        if env.comm_id != self.comm_id:
            return False
        if self.src != ANY_SOURCE and env.src != self.src:
            return False
        if self.tag != ANY_TAG and env.tag != self.tag:
            return False
        return True
