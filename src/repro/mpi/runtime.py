"""The per-rank MPI runtime and the world that ties ranks together.

``MPIRuntime`` is the "MPI library" of one simulated rank: it owns the
matching engine, per-channel send sequence numbers, the eager/rendezvous
machinery, request bookkeeping, and the CPU-overhead accounting used by
the failure-free benchmarks.  Every protocol decision is delegated to the
installed :class:`~repro.mpi.hooks.ProtocolHooks`.

``World`` builds the engine/network/topology, one runtime per rank, the
communicator registry and the trace, and launches application processes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.mpi.communicator import Communicator, CommunicatorRegistry
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    DEFAULT_EAGER_THRESHOLD,
    DEFAULT_IDENT,
)
from repro.mpi.hooks import NativeHooks, ProtocolHooks
from repro.mpi.matching import MatchingEngine
from repro.mpi.message import (
    ControlMsg,
    CtsMsg,
    EagerMsg,
    Envelope,
    RtsMsg,
    RvzData,
    WIRE_HEADER_BYTES,
)
from repro.mpi.request import RecvRequest, Request, SendRequest, Status
from repro.obs import resolve_telemetry
from repro.sim.engine import AllOf, AnyOf, Engine, SimError, Trigger
from repro.sim.network import Network, NetworkParams, Packet, Topology
from repro.sim.process import DebtWait, SimProcess, SleepMarker
from repro.sim.tracing import CommEvent, Trace

# CPU cost of handing a loopback (self) message through shared memory.
LOOPBACK_NS_PER_BYTE = 0.05
LOOPBACK_FIXED_NS = 150


class MPIRuntime:
    """MPI library instance of a single world rank."""

    def __init__(self, world: "World", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.engine: Engine = world.engine
        self.hooks: ProtocolHooks = world.hooks
        self.matching = MatchingEngine(self.hooks.match_allowed)
        self.trace = world.trace  # cached: consulted on every send/recv
        self._trace_on = world.trace.enabled  # immutable for a run
        self.telemetry = world.telemetry
        self._tele_on = world.telemetry.enabled  # immutable for a run
        self._eager_threshold = world.eager_threshold
        self._comms = world.comms.comms  # cached: one dict hit per deliver
        # Identifier-stamping capability: set by the protocol at attach()
        # (SPBC with ident_matching).  When False, messages/requests carry
        # DEFAULT_IDENT without a per-call hook dispatch.
        self.stamp_idents = False
        # Protocol-owned per-rank state, cached here by SPBC at attach()
        # and restore_rank() so the per-message hooks skip a dict lookup.
        self.spbc_state = None
        self.alive = True
        self.incarnation = 0

        # Per-channel outgoing sequence numbers: (comm_id, dst) -> last.
        self.chan_seq: Dict[Tuple[int, int], int] = {}
        # Per-rank request numbering (paper section 3.3 identities).
        self._recv_post_seq = 0
        self._send_post_seq = 0
        self._send_complete_seq = 0
        # Send-request order logs (section 5.2.2): per-rank post order and
        # completion order of send requests, used for replay flow control.
        self.send_post_order: List[Tuple[int, int, int, int]] = []  # message keys
        self.send_complete_order: List[Tuple[int, int, int, int]] = []

        # Rendezvous bookkeeping.
        self._rvz_pending_cts: Dict[int, SendRequest] = {}
        self._rvz_awaiting_data: Dict[Tuple, RecvRequest] = {}
        self._rvz_unexpected: Dict[Tuple, int] = {}  # message_key -> send_req_id
        # Sends held back until the peer's lastMessage fixes LS.
        self._deferred_sends: Dict[Tuple[int, int], List[SendRequest]] = {}

        # Deferred CPU cost (charged at the next blocking call).
        self.cpu_debt_ns = 0
        self.overhead_total_ns = 0
        # Application compute time (the profiler's numerator).
        self.compute_total_ns = 0
        # Serialization point for protocol work on the send path.
        self._send_busy_until = 0

        # Pattern API state (stamped into idents by the SPBC hooks).
        self.active_ident: Tuple[int, int] = DEFAULT_IDENT
        self._next_pattern_id = 0
        self.pattern_iters: Dict[int, int] = {}

        # Fires on every accepted arrival; blocking probe waits on it.
        self._arrival_signal = Trigger()

        # Reusable sleep markers (repro.sim.process.SleepMarker): at most
        # one sleep is ever outstanding per rank, so every virtual sleep
        # mutates one of these two objects instead of allocating
        # (_csleep for application compute phases, _sleep for CPU-debt
        # flushes inside blocking calls — the warp detector tells them
        # apart).
        self._sleep = SleepMarker()
        self._csleep = SleepMarker(is_compute=True)
        # Fused debt-flush + trigger wait (repro.sim.process.DebtWait).
        self._debt_gate = DebtWait()

        # Steady-state warp cooperation (repro.sim.warp): an application
        # declares itself warp-capable via RankContext.declare_warpable,
        # and consumes granted iteration jumps via RankContext.warp_jump.
        self.warp_capable = False
        self.warp_skip = 0

        # Collective instance counters, per communicator.
        self._coll_seq: Dict[int, int] = {}

        world.network.attach(rank, self._on_packet)

    # ------------------------------------------------------------------
    # Pattern API (paper section 5.1) — state only; semantics live in the
    # protocol hooks.  DECLARE_PATTERN / BEGIN_ITERATION / END_ITERATION
    # are local operations: no communication happens here.
    # ------------------------------------------------------------------
    def declare_pattern(self) -> int:
        self._next_pattern_id += 1
        pid = self._next_pattern_id
        # setdefault, not assignment: a restarted process re-executes its
        # (deterministic, SPMD) declarations, and the pattern's iteration
        # counter restored from the checkpoint must survive them.
        self.pattern_iters.setdefault(pid, 0)
        return pid

    def begin_iteration(self, pattern_id: int) -> None:
        if pattern_id not in self.pattern_iters:
            raise ValueError(f"pattern {pattern_id} was never declared")
        self.pattern_iters[pattern_id] += 1
        self.active_ident = (pattern_id, self.pattern_iters[pattern_id])

    def end_iteration(self, pattern_id: int) -> None:
        if self.active_ident[0] != pattern_id:
            raise ValueError(
                f"end_iteration({pattern_id}) but active pattern is "
                f"{self.active_ident[0]}"
            )
        self.active_ident = DEFAULT_IDENT

    def pattern_state(self) -> dict:
        """Checkpointable snapshot of the pattern counters."""
        return {
            "next_pattern_id": self._next_pattern_id,
            "pattern_iters": dict(self.pattern_iters),
            "active_ident": self.active_ident,
        }

    def restore_pattern_state(self, state: dict) -> None:
        # The declaration counter restarts at 0: the restarted generator
        # re-executes its DECLARE_PATTERN calls in program order and must
        # obtain the same ids as the original execution.  The iteration
        # counters, in contrast, carry on from the checkpoint.
        self._next_pattern_id = 0
        self.pattern_iters = dict(state["pattern_iters"])
        self.active_ident = tuple(state["active_ident"])

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def next_seqnum(self, comm_id: int, dst: int) -> int:
        key = (comm_id, dst)
        self.chan_seq[key] = self.chan_seq.get(key, 0) + 1
        return self.chan_seq[key]

    def isend(
        self,
        dst: int,
        payload: Any = None,
        nbytes: int = 0,
        tag: int = 0,
        comm: Optional[Communicator] = None,
    ) -> SendRequest:
        """Nonblocking send to world rank ``dst``; returns a request."""
        comm = comm or self.world.comm_world
        if not self.alive:
            raise SimError(f"rank {self.rank}: isend on dead runtime")
        # Inlined next_seqnum: one dict lookup on the hottest path.
        comm_id = comm.comm_id
        key = (comm_id, dst)
        chan_seq = self.chan_seq
        seqnum = chan_seq.get(key, 0) + 1
        chan_seq[key] = seqnum
        env = Envelope(
            self.rank,
            dst,
            tag,
            comm_id,
            seqnum,
            nbytes,
            payload,
            self.active_ident if self.stamp_idents else DEFAULT_IDENT,
        )
        self._send_post_seq += 1
        req = SendRequest(
            env,
            self._send_post_seq,
            rendezvous=nbytes > self._eager_threshold and dst != self.rank,
        )
        if self._trace_on:
            # The send post/completion order logs (section 5.2.2) are
            # offline-analysis artifacts like the trace itself: recorded
            # only when tracing, never consulted by the simulation.
            self.send_post_order.append(env.message_key)
            self.trace.record(
                CommEvent(
                    kind="send",
                    rank=self.rank,
                    time_ns=self.engine.now,
                    channel=env.channel,
                    seqnum=env.seqnum,
                    tag=tag,
                    nbytes=nbytes,
                    ident=env.ident,
                )
            )
        decision, overhead = self.hooks.on_send_with_cost(self, env)
        if overhead:
            self.cpu_debt_ns += overhead
            self.overhead_total_ns += overhead
        if decision is False:
            # Destination already received this message (recovery filter,
            # Algorithm 1 line 7).
            req.suppressed = True
            self._complete_send(req)
            return req
        if decision == "defer":
            # Restarted rank: LS for this channel is unknown until the
            # peer's lastMessage arrives; queue the physical transfer.
            self._deferred_sends.setdefault((comm.comm_id, dst), []).append(req)
            return req
        if overhead > 0:
            # Protocol work (the log memcpy) happens inside the send call,
            # *before* the message reaches the wire: delay the physical
            # transfer by the same amount, serialized per sender.  This is
            # what makes logging visible end-to-end (Table 2) instead of
            # disappearing into the receivers' waits.  The transfer stays
            # a scheduled event on purpose: folding the delay into the
            # packet would assign the delivery its engine sequence number
            # at isend time, which reorders same-timestamp ties and
            # (measurably, on the ANY_SOURCE apps) changes executions —
            # exact mode must stay bit-identical to the seed.
            at = max(self.engine.now, self._send_busy_until) + overhead
            self._send_busy_until = at
            self.engine.schedule_at_fast(
                at, self._transmit_evt, env, req, self.incarnation
            )
        else:
            self._transmit(env, req)
        return req

    def _transmit_evt(self, env: Envelope, req: SendRequest, inc: int) -> None:
        if inc != self.incarnation or not self.alive:
            return
        # Eager non-loopback path inlined from _transmit (this event runs
        # once per protocol-charged send — the common SPBC case).
        if not req.rendezvous and env.dst != self.rank:
            pkt = self.world.network.send(
                self.rank, env.dst, EagerMsg(env), env.nbytes + WIRE_HEADER_BYTES
            )
            if self._trace_on:
                self.engine.schedule_at_fast(
                    pkt.inject_done_at, self._complete_send_evt, req,
                    self.incarnation,
                )
            else:
                req.completes_at_ns = pkt.inject_done_at
            return
        self._transmit(env, req)

    def _transmit(self, env: Envelope, req: SendRequest) -> None:
        """Physically move one envelope (eager, rendezvous, or loopback)."""
        if env.dst == self.rank:
            copy_ns = LOOPBACK_FIXED_NS + int(env.nbytes * LOOPBACK_NS_PER_BYTE)
            self.engine.schedule_fast(
                copy_ns, self._loopback_arrival, env, self.incarnation
            )
            self._complete_send(req)
            return
        if req.rendezvous:
            self._rvz_pending_cts[req.req_id] = req
            self.world.network.send(
                self.rank, env.dst, RtsMsg(env, req.req_id), WIRE_HEADER_BYTES
            )
        else:
            pkt = self.world.network.send(
                self.rank, env.dst, EagerMsg(env), env.nbytes + WIRE_HEADER_BYTES
            )
            # Local completion once the NIC finished injecting the
            # payload.  With tracing off, no engine event is spent on
            # it: the request completes lazily at its first observation
            # (_settle/_settle_or_schedule) — same completion time, one
            # event per send saved.  Tracing keeps the evented path so
            # send_complete_order records the true global order.
            if self._trace_on:
                self.engine.schedule_at_fast(
                    pkt.inject_done_at, self._complete_send_evt, req,
                    self.incarnation,
                )
            else:
                req.completes_at_ns = pkt.inject_done_at

    def isend_raw(self, env: Envelope) -> SendRequest:
        """Send a pre-built envelope verbatim (log replay).

        Skips sequence-number assignment and every protocol hook: the
        envelope already carries the seqnum/ident it had in the original
        execution.  Used by replayers (paper section 5.2.2) and by the
        Rollback-triggered replay path (Algorithm 1 lines 23-24).
        """
        env.replayed = True
        self._send_post_seq += 1
        req = SendRequest(
            env,
            self._send_post_seq,
            rendezvous=env.nbytes > self.world.eager_threshold and env.dst != self.rank,
        )
        self._transmit(env, req)
        return req

    def release_deferred(self, comm_id: int, dst: int) -> None:
        """Flush sends queued while LS of (comm_id, dst) was unknown.

        Called by the protocol once the peer's lastMessage (or Rollback)
        fixed LS; each queued send is re-submitted to ``on_send`` which
        now either suppresses or transmits it.
        """
        queue = self._deferred_sends.pop((comm_id, dst), [])
        for req in queue:
            decision = self.hooks.on_send(self, req.env)
            if decision is False:
                req.suppressed = True
                self._complete_send(req)
            else:
                self._transmit(req.env, req)

    def _complete_send_evt(self, req: SendRequest, inc: int) -> None:
        if inc != self.incarnation:
            return
        self._complete_send(req)

    def _recv_block(self, rreq: Request):
        """Arm the fused debt-flush + receive-wait idiom; returns the
        object to yield, or None when no blocking is needed.

        One non-generator call shared by every inlined wait site
        (RankContext.sendrecv, collectives.barrier/allgather): pending
        CPU debt rides the receive wait as a DebtWait gate (resume at
        max(debt deadline, completion)), a bare debt with the receive
        already done becomes a plain sleep, and a debt-free incomplete
        receive blocks on its trigger directly."""
        debt = self.cpu_debt_ns
        if debt > 0:
            self.cpu_debt_ns = 0
            if rreq.done:
                sleep = self._sleep
                sleep.delay_ns = debt
                return sleep
            gate = self._debt_gate
            gate.deadline_ns = self.engine.now + debt
            gate.trigger = rreq.trigger
            return gate
        if not rreq.done:
            return rreq.trigger
        return None

    def _settle(self, req: Request) -> None:
        """Complete a lazily-completing send whose time has passed
        (nonblocking observation points: test/testall/testany)."""
        if req.completes_at_ns <= self.engine.now:
            req.completes_at_ns = -1
            self._complete_send(req)

    def _settle_or_schedule(self, req: Request) -> None:
        """Blocking observation points: settle a due lazy completion, or
        materialize the completion event so the wait's trigger fires."""
        ca = req.completes_at_ns
        req.completes_at_ns = -1
        if ca <= self.engine.now:
            self._complete_send(req)
        else:
            self.engine.schedule_at_fast(
                ca, self._complete_send_evt, req, self.incarnation
            )

    def _complete_send(self, req: SendRequest) -> None:
        if req.done:
            return
        self._send_complete_seq += 1
        req.complete_seq = self._send_complete_seq
        if self._trace_on:
            self.send_complete_order.append(req.env.message_key)
        env = req.env
        req.complete(Status(-1, env.tag, env.nbytes))

    def _loopback_arrival(self, env: Envelope, inc: int) -> None:
        if inc != self.incarnation or not self.alive:
            return
        if self.hooks.on_arrival(self, env, None):
            self.accept_arrival(env)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def irecv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> RecvRequest:
        """Nonblocking receive; ``src`` is a world rank or ANY_SOURCE."""
        comm = comm or self.world.comm_world
        if not self.alive:
            raise SimError(f"rank {self.rank}: irecv on dead runtime")
        self._recv_post_seq += 1
        req = RecvRequest(
            src=src,
            tag=tag,
            comm_id=comm.comm_id,
            req_seq=self._recv_post_seq,
            ident=self.active_ident if self.stamp_idents else DEFAULT_IDENT,
        )
        if self._trace_on:
            self.trace.record(
                CommEvent(
                    kind="post",
                    rank=self.rank,
                    time_ns=self.engine.now,
                    channel=(src, self.rank, comm.comm_id),
                    seqnum=-1,
                    tag=tag,
                    req_seq=req.req_seq,
                    ident=req.ident,
                )
            )
        env = self.matching.post(req)
        if env is not None:
            self._on_matched(req, env)
        return req

    def accept_arrival(self, env: Envelope, rvz_send_req_id: Optional[int] = None) -> None:
        """Feed an (already protocol-approved) envelope into matching."""
        req = self.matching.arrive(env)
        if req is None:
            if rvz_send_req_id is not None:
                self._rvz_unexpected[env.message_key] = rvz_send_req_id
        else:
            if rvz_send_req_id is not None:
                self._rvz_unexpected[env.message_key] = rvz_send_req_id
                self._on_matched(req, env)
            elif self._trace_on or self._rvz_unexpected:
                self._on_matched(req, env)
            else:
                # Flattened common path: eager match, no tracing, no
                # rendezvous bookkeeping pending — complete in place.
                self._complete_recv(req, env)
        # Wake blocked probes/waiters that poll the unexpected queue.  An
        # un-waited (still pending) signal can simply stay in place: a
        # fresh trigger is only needed once this one fired for somebody.
        sig = self._arrival_signal
        if sig._waiters:
            self._arrival_signal = Trigger()
            sig.fire()

    def _on_matched(self, req: RecvRequest, env: Envelope) -> None:
        if self._trace_on:
            self.trace.record(
                CommEvent(
                    kind="match",
                    rank=self.rank,
                    time_ns=self.engine.now,
                    channel=env.channel,
                    seqnum=env.seqnum,
                    tag=env.tag,
                    nbytes=env.nbytes,
                    req_seq=req.req_seq,
                    ident=env.ident,
                )
            )
        rvz_id = (
            self._rvz_unexpected.pop(env.message_key, None)
            if self._rvz_unexpected
            else None
        )
        if rvz_id is not None:
            # Rendezvous: grant the sender a CTS; completion at data arrival.
            self._rvz_awaiting_data[env.message_key] = req
            self.world.network.send(
                self.rank, env.src, CtsMsg(rvz_id), WIRE_HEADER_BYTES
            )
            return
        self._complete_recv(req, env)

    def _complete_recv(self, req: RecvRequest, env: Envelope) -> None:
        comm = self._comms[env.comm_id]
        # Direct map hit (the sender is a member by construction); the
        # checked comm_rank() accessor costs a try/except per delivery.
        status = Status(comm._rank_of_world[env.src], env.tag, env.nbytes, env.payload)
        if self._trace_on:
            self.trace.record(
                CommEvent(
                    kind="deliver",
                    rank=self.rank,
                    time_ns=self.engine.now,
                    channel=env.channel,
                    seqnum=env.seqnum,
                    tag=env.tag,
                    nbytes=env.nbytes,
                    req_seq=req.req_seq,
                    ident=env.ident,
                )
            )
        self.hooks.on_deliver(self, env)
        # req.complete() inlined (once per delivered message).
        if not req.done:
            req.done = True
            req.status = status
            trigger = req._trigger
            if trigger is not None:
                trigger.fire(status)

    # ------------------------------------------------------------------
    # Packet dispatch (net sink)
    # ------------------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        payload = pkt.payload
        cls = payload.__class__  # exact wire types; no subclassing
        if cls is EagerMsg:
            env = payload.env
            if self.hooks.on_arrival(self, env, None):
                self.accept_arrival(env)
        elif cls is RtsMsg:
            env = payload.env
            if self.hooks.on_arrival(self, env, payload.send_req_id):
                self.accept_arrival(env, rvz_send_req_id=payload.send_req_id)
        elif cls is CtsMsg:
            req = self._rvz_pending_cts.pop(payload.send_req_id, None)
            if req is None:
                return  # sender restarted; stale CTS
            data_pkt = self.world.network.send(
                self.rank,
                req.env.dst,
                RvzData(req.env, req.req_id),
                req.env.nbytes + WIRE_HEADER_BYTES,
            )
            self.engine.schedule_at_fast(
                data_pkt.inject_done_at, self._complete_send_evt, req, self.incarnation
            )
        elif cls is RvzData:
            req = self._rvz_awaiting_data.pop(payload.env.message_key, None)
            if req is None:
                return  # receiver restarted; stale data
            self._complete_recv(req, payload.env)
        elif cls is ControlMsg:
            self.hooks.on_control(self, payload)
        else:  # pragma: no cover - wiring error
            raise SimError(f"rank {self.rank}: unknown packet payload {payload!r}")

    # ------------------------------------------------------------------
    # Blocking operations (generators; apps use them via ``yield from``)
    # ------------------------------------------------------------------
    def charge_cpu(self, ns: int) -> None:
        """Accumulate CPU time to be paid at the next blocking call."""
        self.cpu_debt_ns += ns

    def _flush_debt(self) -> Generator:
        if self.cpu_debt_ns > 0:
            debt, self.cpu_debt_ns = self.cpu_debt_ns, 0
            sleep = self._sleep
            sleep.delay_ns = debt
            yield sleep

    def compute(self, ns: int) -> Generator:
        """Model ``ns`` of local computation."""
        if ns < 0:
            raise ValueError("negative compute time")
        self.compute_total_ns += ns
        debt, self.cpu_debt_ns = self.cpu_debt_ns, 0
        total = ns + debt
        warp = self.world.warp
        if warp is not None:
            warp.on_compute(self, total)
        if self._tele_on:
            now = self.engine.now
            self.telemetry.rank_span("compute", self.rank, now, now + total)
        sleep = self._csleep
        sleep.delay_ns = total
        yield sleep

    def wait(self, req: Request) -> Generator:
        if self.cpu_debt_ns > 0:
            debt, self.cpu_debt_ns = self.cpu_debt_ns, 0
            sleep = self._sleep
            sleep.delay_ns = debt
            yield sleep
        if not req.done:
            if req.completes_at_ns >= 0:
                self._settle_or_schedule(req)
            if not req.done:
                if self._tele_on:
                    t0 = self.engine.now
                    yield req.trigger
                    self.telemetry.rank_span(
                        "mpi-wait", self.rank, t0, self.engine.now
                    )
                else:
                    yield req.trigger
        return req.status

    def waitall(self, reqs: List[Request]) -> Generator:
        if self.cpu_debt_ns > 0:
            debt, self.cpu_debt_ns = self.cpu_debt_ns, 0
            sleep = self._sleep
            sleep.delay_ns = debt
            yield sleep
        for r in reqs:
            if not r.done and r.completes_at_ns >= 0:
                self._settle_or_schedule(r)
        pending = [r.trigger for r in reqs if not r.done]
        if pending:
            if self._tele_on:
                t0 = self.engine.now
                yield AllOf(pending)
                self.telemetry.rank_span(
                    "mpi-wait", self.rank, t0, self.engine.now
                )
            else:
                yield AllOf(pending)
        return [r.status for r in reqs]

    def waitany(self, reqs: List[Request]) -> Generator:
        """MPI_Waitany: yields (index, status) of one completed request.

        This call is one of the paper's two sources of non-determinism
        (section 3.2): which request completes first depends on message
        arrival timing.
        """
        if not reqs:
            raise ValueError("waitany on empty request list")
        yield from self._flush_debt()
        for r in reqs:
            if not r.done and r.completes_at_ns >= 0:
                self._settle_or_schedule(r)
        while True:
            for i, r in enumerate(reqs):
                if r.done:
                    return i, r.status
            if self._tele_on:
                t0 = self.engine.now
                yield AnyOf([r.trigger for r in reqs if not r.done])
                self.telemetry.rank_span(
                    "mpi-wait", self.rank, t0, self.engine.now
                )
            else:
                yield AnyOf([r.trigger for r in reqs if not r.done])

    def test(self, req: Request) -> Tuple[bool, Optional[Status]]:
        """MPI_Test: nonblocking completion check."""
        if not req.done and req.completes_at_ns >= 0:
            self._settle(req)
        return (True, req.status) if req.done else (False, None)

    def testall(self, reqs: List[Request]) -> Tuple[bool, Optional[List[Status]]]:
        for r in reqs:
            if not r.done and r.completes_at_ns >= 0:
                self._settle(r)
        if all(r.done for r in reqs):
            return True, [r.status for r in reqs]
        return False, None

    def testany(self, reqs: List[Request]) -> Tuple[bool, int, Optional[Status]]:
        """MPI_Testany: (flag, index, status) of the first completed
        request, or (False, -1, None).  Like MPI_Waitany, one of the
        paper's sources of timing non-determinism (section 3.2)."""
        for i, r in enumerate(reqs):
            if not r.done and r.completes_at_ns >= 0:
                self._settle(r)
            if r.done:
                return True, i, r.status
        return False, -1, None

    def waitsome(self, reqs: List[Request]) -> Generator:
        """MPI_Waitsome: block until at least one request completes, then
        return every completed (index, status) pair."""
        if not reqs:
            raise ValueError("waitsome on empty request list")
        yield from self._flush_debt()
        for r in reqs:
            if not r.done and r.completes_at_ns >= 0:
                self._settle_or_schedule(r)
        while True:
            done = [(i, r.status) for i, r in enumerate(reqs) if r.done]
            if done:
                return done
            if self._tele_on:
                t0 = self.engine.now
                yield AnyOf([r.trigger for r in reqs if not r.done])
                self.telemetry.rank_span(
                    "mpi-wait", self.rank, t0, self.engine.now
                )
            else:
                yield AnyOf([r.trigger for r in reqs if not r.done])

    def iprobe(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> Tuple[bool, Optional[Status]]:
        """MPI_Iprobe: check for a matchable unexpected message.

        The probe carries the active identifier, so under SPBC a message
        from another pattern iteration is invisible — the same rule the
        modified matching function applies (section 5.2.1).
        """
        comm = comm or self.world.comm_world
        probe = RecvRequest(
            src=src,
            tag=tag,
            comm_id=comm.comm_id,
            req_seq=-1,
            ident=self.hooks.request_ident(self),
        )
        env = self.matching.probe(probe)
        if env is None:
            return False, None
        return True, Status(
            source=comm.comm_rank(env.src), tag=env.tag, nbytes=env.nbytes
        )

    def probe(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        """Blocking probe: waits until a matching message is available."""
        yield from self._flush_debt()
        while True:
            flag, status = self.iprobe(src, tag, comm)
            if flag:
                return status
            if self._tele_on:
                t0 = self.engine.now
                yield self._arrival_signal
                self.telemetry.rank_span(
                    "mpi-wait", self.rank, t0, self.engine.now
                )
            else:
                yield self._arrival_signal

    def send(
        self,
        dst: int,
        payload: Any = None,
        nbytes: int = 0,
        tag: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        req = self.isend(dst, payload, nbytes, tag, comm)
        yield from self.wait(req)

    def recv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> Generator:
        req = self.irecv(src, tag, comm)
        status = yield from self.wait(req)
        return status

    def maybe_checkpoint(self, state_fn: Callable[[], dict]) -> Generator:
        """Cooperative checkpoint opportunity (delegated to the protocol)."""
        warp = self.world.warp
        if warp is not None:
            warp.on_iteration(self)
        if self.cpu_debt_ns > 0:
            debt, self.cpu_debt_ns = self.cpu_debt_ns, 0
            sleep = self._sleep
            sleep.delay_ns = debt
            yield sleep
        if self.hooks.checkpoint_noop(self):
            # Fast path: the protocol declined this call (cadence not
            # due / checkpointing off) — skip the generator machinery
            # entirely.  This is once per app iteration per rank.
            return None
        result = yield from self.hooks.maybe_checkpoint(self, state_fn)
        return result

    # ------------------------------------------------------------------
    # Failure / restart support
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Crash this rank's library state (failure injection)."""
        self.alive = False
        self.incarnation += 1
        self.warp_skip = 0  # an unconsumed jump dies with the incarnation
        self.world.network.detach(self.rank)
        self.matching.clear()
        self._rvz_pending_cts.clear()
        self._rvz_awaiting_data.clear()
        self._rvz_unexpected.clear()
        self._deferred_sends.clear()
        self.cpu_debt_ns = 0
        self._send_busy_until = 0

    def restart(self) -> None:
        """Bring the library back up for a new process incarnation.

        Channel seqnums, pattern state etc. must be restored separately
        by the protocol (they are part of the checkpoint)."""
        self.alive = True
        self.matching = MatchingEngine(self.hooks.match_allowed)
        self._arrival_signal = Trigger()
        self.chan_seq = {}
        self._coll_seq = {}
        self._recv_post_seq = 0
        self._send_post_seq = 0
        self._send_complete_seq = 0
        self.send_post_order = []
        self.send_complete_order = []
        self.world.network.attach(self.rank, self._on_packet)

    def cancel_pending_rvz_to(self, peer: int, comm_id: int) -> int:
        """Complete rendezvous sends stuck waiting for a CTS from a peer
        that just rolled back.

        The old incarnation's RTS died with the crash and the new
        incarnation will receive the payload through log replay (every
        inter-cluster message is logged before transmission), so the local
        send request is done as far as this application is concerned.
        Returns the number of requests completed.
        """
        victims = [
            (rid, req)
            for rid, req in self._rvz_pending_cts.items()
            if req.env.dst == peer and req.env.comm_id == comm_id
        ]
        for rid, req in victims:
            del self._rvz_pending_cts[rid]
            req.suppressed = True
            self._complete_send(req)
        return len(victims)

    def scrub_peer_rendezvous(self, peer: int, comm_id: int) -> int:
        """Cancel rendezvous transfers whose sender just rolled back.

        Matched-but-incomplete receives are unbound and re-posted (at the
        front, in original posting order) so the restarted peer's re-sent
        copy can match them again; unmatched-RTS bookkeeping is dropped
        (the protocol removes the corresponding unexpected envelopes).
        Returns the number of unbound requests.
        """
        victims = [
            (key, req)
            for key, req in self._rvz_awaiting_data.items()
            if key[0] == peer and key[2] == comm_id
        ]
        reqs = []
        for key, req in victims:
            del self._rvz_awaiting_data[key]
            req.matched_env = None
            reqs.append(req)
        reqs.sort(key=lambda r: r.req_seq)
        self.matching.posted[:0] = reqs
        for key in [
            k for k in self._rvz_unexpected if k[0] == peer and k[2] == comm_id
        ]:
            del self._rvz_unexpected[key]
        return len(victims)

    # ------------------------------------------------------------------
    def control_send(self, dst: int, kind: str, data: Any = None, nbytes: int = 0) -> None:
        """Send an out-of-band protocol control message."""
        msg = ControlMsg(kind=kind, data=data, src=self.rank)
        if dst == self.rank:
            # Local control delivery (e.g. a rank hosting a coordinator
            # role talking to itself): cheap in-process hop.
            self.engine.schedule_fast(
                LOOPBACK_FIXED_NS, self._local_control, msg, self.incarnation
            )
            return
        self.world.network.send(
            self.rank, dst, msg, nbytes + WIRE_HEADER_BYTES
        )

    def _local_control(self, msg: ControlMsg, inc: int) -> None:
        if inc != self.incarnation or not self.alive:
            return
        self.hooks.on_control(self, msg)


class World:
    """All simulated ranks plus the fabric they run on."""

    def __init__(
        self,
        nranks: int,
        ranks_per_node: int = 8,
        net_params: Optional[NetworkParams] = None,
        seed: int = 0,
        hooks: Optional[ProtocolHooks] = None,
        trace: bool = True,
        eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
        telemetry: Any = None,
    ) -> None:
        self.engine = Engine()
        # Resolve telemetry before anything touches the engine: runtime
        # construction already runs protocol attach hooks (which bind
        # the storage backend and its I/O scheduler to this engine).
        self.telemetry = resolve_telemetry(telemetry)
        self.engine.telemetry = self.telemetry
        self.topology = Topology(nranks=nranks, ranks_per_node=ranks_per_node)
        self.network = self._make_network(net_params, seed)
        self.trace = Trace(enabled=trace)
        self.comms = CommunicatorRegistry(nranks)
        self.hooks = hooks or NativeHooks()
        self.eager_threshold = eager_threshold
        # Steady-state warp controller (repro.sim.warp); None = exact mode.
        self.warp = None
        self.runtimes: List[MPIRuntime] = [MPIRuntime(self, r) for r in range(nranks)]
        for rt in self.runtimes:
            self.hooks.attach(rt)
        self.processes: Dict[int, SimProcess] = {}
        # The queue-depth sampler is observation-only (reads the heap,
        # schedules nothing but its own re-arm); guarded like every
        # other call site so disabled telemetry is never even invoked.
        if self.telemetry.enabled:
            self.telemetry.start_queue_sampler(self.engine)

    def _make_network(self, net_params: Optional[NetworkParams], seed: int) -> Network:
        """Subclass hook: the sharded world (repro.sim.shard) swaps in a
        network that exports packets addressed outside the shard."""
        return Network(self.engine, self.topology, net_params, seed=seed)

    @property
    def nranks(self) -> int:
        return self.topology.nranks

    @property
    def comm_world(self) -> Communicator:
        return self.comms.world

    def launch(self, rank: int, gen: Generator, name: Optional[str] = None) -> SimProcess:
        """Create and start the application process of ``rank``."""
        proc = SimProcess(self.engine, name or f"rank{rank}", gen)
        self.processes[rank] = proc
        proc.start()
        return proc

    def run(self, until_ns: Optional[int] = None, detect_deadlock: bool = True) -> int:
        return self.engine.run(until_ns=until_ns, detect_deadlock=detect_deadlock)

    def all_done(self) -> bool:
        from repro.sim.process import ProcessStatus

        return all(p.status is ProcessStatus.DONE for p in self.processes.values())

    def max_finish_time(self) -> int:
        times = [p.finish_time for p in self.processes.values() if p.finish_time is not None]
        if not times:
            raise SimError("no process finished")
        return max(times)
