"""Protocol hook interface.

The MPI runtime calls into a :class:`ProtocolHooks` object at every point
a checkpointing protocol needs to observe or steer the library:

* ``message_ident`` / ``request_ident`` — SPBC stamps the active
  ``(pattern_id, iteration_id)`` here (section 5.2.1);
* ``match_allowed`` — the modified MPICH matching function: message and
  request match only if their identifiers agree;
* ``on_send`` — sender-side logging (Algorithm 1 lines 3-9) and the
  recovery re-send filter (``seqnum <= LS`` suppression);
* ``send_overhead_ns`` — CPU cost charged for protocol work on the send
  path (what Table 2 measures);
* ``on_arrival`` — inter-cluster dedup/reorder during recovery
  (Algorithm 1 lines 10-12);
* ``on_deliver`` — LR bookkeeping;
* ``on_control`` — out-of-band protocol traffic (Rollback, lastMessage,
  HydEE coordinator messages);
* ``maybe_checkpoint`` — the cooperative checkpoint entry point.

``NativeHooks`` implements the unmodified-MPICH baseline: every hook is a
no-op, so the runtime behaves like plain MPI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Tuple

from repro.mpi.constants import DEFAULT_IDENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.message import Envelope
    from repro.mpi.request import RecvRequest
    from repro.mpi.runtime import MPIRuntime


class ProtocolHooks:
    """Base class; subclasses override what they need."""

    def attach(self, runtime: "MPIRuntime") -> None:
        """Called once when the runtime for one rank is created."""

    # -- identifier stamping ------------------------------------------
    def message_ident(self, runtime: "MPIRuntime") -> Tuple[int, int]:
        return DEFAULT_IDENT

    def request_ident(self, runtime: "MPIRuntime") -> Tuple[int, int]:
        return DEFAULT_IDENT

    # -- matching ------------------------------------------------------
    def match_allowed(self, req: "RecvRequest", env: "Envelope") -> bool:
        return True

    # -- send path -----------------------------------------------------
    def on_send(self, runtime: "MPIRuntime", env: "Envelope"):
        """Steer the physical transfer of ``env``.

        Return ``True`` to send normally, ``False`` to suppress it (the
        destination already holds this message — Algorithm 1 line 7), or
        the string ``"defer"`` to queue it until the protocol calls
        ``runtime.release_deferred`` (used right after a restart while the
        peer's ``lastMessage`` response is still in flight)."""
        return True

    def send_overhead_ns(self, runtime: "MPIRuntime", env: "Envelope") -> int:
        return 0

    def on_send_with_cost(self, runtime: "MPIRuntime", env: "Envelope"):
        """Combined send-path hook: ``(on_send decision, overhead ns)``.

        The runtime calls this once per send; the default composes the
        two simple hooks, so subclasses overriding ``on_send`` /
        ``send_overhead_ns`` keep working.  A protocol may install a
        fused implementation to avoid the double dispatch (and double
        cluster resolution) on the hottest path — see SPBC."""
        return self.on_send(runtime, env), self.send_overhead_ns(runtime, env)

    # -- receive path --------------------------------------------------
    def on_arrival(
        self,
        runtime: "MPIRuntime",
        env: "Envelope",
        rvz_send_req_id: "int | None" = None,
    ) -> bool:
        """Return False to drop or hold the arrival (duplicate suppression
        and in-order release during recovery); the hook may buffer the
        ``(env, rvz_send_req_id)`` pair and later feed it back through
        ``runtime.accept_arrival``."""
        return True

    def on_deliver(self, runtime: "MPIRuntime", env: "Envelope") -> None:
        pass

    # -- control plane ---------------------------------------------------
    def on_control(self, runtime: "MPIRuntime", msg: Any) -> None:
        pass

    # -- checkpointing ---------------------------------------------------
    def checkpoint_noop(self, runtime: "MPIRuntime") -> bool:
        """Fast predicate called once per ``maybe_checkpoint``: return
        True when this call would be an immediate no-op, letting the
        runtime skip the generator machinery on the per-iteration hot
        path.  Implementations may use it to advance per-call counters
        (it is guaranteed to run exactly once per application
        ``maybe_checkpoint`` call, before ``maybe_checkpoint`` itself).

        Defaults to False — the safe answer for subclasses that
        override ``maybe_checkpoint`` without knowing about this fast
        path (their checkpoints would otherwise be silently skipped).
        Protocols with a real no-op case override it (SPBC;
        NativeHooks below)."""
        return False

    def maybe_checkpoint(
        self, runtime: "MPIRuntime", state_fn: Callable[[], dict]
    ) -> Generator:
        """Cooperative checkpoint point; default is an immediate no-op.

        Implementations may run a coordination protocol here (blocking
        generator).  ``state_fn`` lazily captures the application state.
        """
        return
        yield  # pragma: no cover - makes this a generator function


class NativeHooks(ProtocolHooks):
    """Unmodified-MPI baseline (the paper's reference performance)."""

    def checkpoint_noop(self, runtime: "MPIRuntime") -> bool:
        return True  # native MPI never checkpoints
