"""Communicators: ordered process groups with their own channel context.

The paper's model (section 3.2) defines channels per communicator —
"there can be multiple channels between two processes, one for each
communicator they belong to".  A communicator here is a world-level
object shared by all member ranks: an id, an ordered list of world ranks,
and translation helpers.  ``split`` mirrors ``MPI_Comm_split`` and is
collective-free in the simulator (deterministic, no messages), which is
faithful enough since MPICH's implementation is also deterministic for
SPMD call sequences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class Communicator:
    """An ordered group of world ranks with a unique context id."""

    def __init__(self, comm_id: int, world_ranks: Sequence[int], name: str = "") -> None:
        if len(set(world_ranks)) != len(world_ranks):
            raise ValueError("duplicate ranks in communicator")
        self.comm_id = comm_id
        self.world_ranks: List[int] = list(world_ranks)
        self.name = name or f"comm{comm_id}"
        self._rank_of_world: Dict[int, int] = {
            w: i for i, w in enumerate(self.world_ranks)
        }

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def world_rank(self, comm_rank: int) -> int:
        """Translate a communicator-local rank to a world rank."""
        return self.world_ranks[comm_rank]

    def comm_rank(self, world_rank: int) -> int:
        """Translate a world rank to its rank inside this communicator."""
        try:
            return self._rank_of_world[world_rank]
        except KeyError:
            raise ValueError(
                f"world rank {world_rank} is not a member of {self.name}"
            ) from None

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._rank_of_world

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Communicator {self.name} id={self.comm_id} size={self.size}>"


class CommunicatorRegistry:
    """World-level registry; hands out context ids and implements split."""

    def __init__(self, nranks: int) -> None:
        self._next_id = 0
        self.comms: Dict[int, Communicator] = {}
        self.world = self.create(list(range(nranks)), name="world")

    def create(self, world_ranks: Sequence[int], name: str = "") -> Communicator:
        cid = self._next_id
        self._next_id += 1
        comm = Communicator(cid, world_ranks, name=name)
        self.comms[cid] = comm
        return comm

    def split(
        self, parent: Communicator, colors: Sequence[int], keys: Optional[Sequence[int]] = None
    ) -> Dict[int, Communicator]:
        """MPI_Comm_split over ``parent``.

        ``colors[i]``/``keys[i]`` belong to parent comm-rank ``i``.  Ranks
        with color < 0 (MPI_UNDEFINED) get no communicator.  Returns
        ``{color: communicator}``; member order is (key, parent rank).
        """
        if len(colors) != parent.size:
            raise ValueError("colors must cover every parent rank")
        if keys is None:
            keys = list(range(parent.size))
        groups: Dict[int, List[tuple]] = {}
        for prank, (color, key) in enumerate(zip(colors, keys)):
            if color < 0:
                continue
            groups.setdefault(color, []).append((key, prank))
        out: Dict[int, Communicator] = {}
        for color in sorted(groups):
            members = [
                parent.world_rank(prank)
                for _key, prank in sorted(groups[color])
            ]
            out[color] = self.create(members, name=f"{parent.name}.split{color}")
        return out
