"""Message envelopes and wire-level payload types.

A message is identified across executions by payload plus the tuple
``{src, dst, comm, seqnum}`` (paper section 3.3); ``seqnum`` is the
per-channel sequence number every MPI library keeps to implement FIFO.
SPBC additionally stamps an ``ident = (pattern_id, iteration_id)`` tuple
(section 4.3 / 5.1) used by the matching engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.mpi.constants import DEFAULT_IDENT


@dataclass(slots=True)
class Envelope:
    """Metadata + payload of one application-level message."""

    src: int  # world rank of sender
    dst: int  # world rank of destination
    tag: int
    comm_id: int
    seqnum: int  # per (comm_id, src, dst) channel sequence number
    nbytes: int
    payload: Any = None
    ident: Tuple[int, int] = DEFAULT_IDENT
    # True when this copy was re-sent from a sender-side log during
    # recovery (diagnostics only; matching never looks at it).
    replayed: bool = False

    @property
    def channel(self) -> Tuple[int, int, int]:
        return (self.src, self.dst, self.comm_id)

    @property
    def message_key(self) -> Tuple[int, int, int, int]:
        """Identity of the message across executions (section 3.3)."""
        return (self.src, self.dst, self.comm_id, self.seqnum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<msg {self.src}->{self.dst} comm={self.comm_id} tag={self.tag} "
            f"seq={self.seqnum} id={self.ident} {self.nbytes}B>"
        )


# ----------------------------------------------------------------------
# Wire-level payloads (what actually travels through repro.sim.network)
# ----------------------------------------------------------------------

@dataclass(slots=True)
class EagerMsg:
    """Envelope + payload shipped in one shot (small messages)."""

    env: Envelope


@dataclass(slots=True)
class RtsMsg:
    """Rendezvous request-to-send: envelope only, payload stays behind."""

    env: Envelope
    send_req_id: int


@dataclass(slots=True)
class CtsMsg:
    """Rendezvous clear-to-send, returned once the receive is matched."""

    send_req_id: int


@dataclass(slots=True)
class RvzData:
    """Rendezvous payload transfer."""

    env: Envelope
    send_req_id: int


@dataclass(slots=True)
class ControlMsg:
    """Out-of-band protocol message (Rollback, lastMessage, coordinator
    traffic...).  Routed to the protocol hooks, never to MPI matching."""

    kind: str
    data: Any = None
    src: int = -1


WIRE_HEADER_BYTES = 64  # modeled size of envelope/control headers
