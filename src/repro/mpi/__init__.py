"""A simulated MPI library (the substrate SPBC is implemented inside).

This package reimplements, over the discrete-event engine, the MPI subset
the paper relies on (section 3.2):

* point-to-point: ``Isend``/``Irecv``/``Send``/``Recv``, ``Wait``/
  ``Waitall``/``Waitany``, ``Test``/``Testall``, ``Iprobe``/``Probe``;
* wildcards ``ANY_SOURCE`` and ``ANY_TAG`` (the paper's two sources of
  non-determinism);
* eager and rendezvous transfer protocols with sender-side completion
  semantics (section 5.2.2's replay flow control depends on them);
* communicators with ``split`` (a channel is defined per communicator);
* collectives implemented on top of point-to-point (the paper's stated
  assumption);
* per-channel sequence numbers (the implicit seqnum of section 3.3);
* a protocol-hook interface through which SPBC, HydEE and the native
  baseline intercept sends, arrivals and matching.
"""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, TAG_USER_MAX
from repro.mpi.message import Envelope, ControlMsg
from repro.mpi.request import Request, RecvRequest, SendRequest, Status
from repro.mpi.hooks import ProtocolHooks, NativeHooks
from repro.mpi.communicator import Communicator
from repro.mpi.runtime import MPIRuntime, World
from repro.mpi.context import RankContext

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "TAG_USER_MAX",
    "Envelope",
    "ControlMsg",
    "Request",
    "RecvRequest",
    "SendRequest",
    "Status",
    "ProtocolHooks",
    "NativeHooks",
    "Communicator",
    "MPIRuntime",
    "World",
    "RankContext",
]
