"""MPI-level constants."""

from __future__ import annotations

# Wildcards (negative so they can never collide with a real rank/tag).
ANY_SOURCE: int = -1
ANY_TAG: int = -2

# Tag space layout: user tags must stay below TAG_USER_MAX; the collective
# implementation and protocol control planes use tags above it.
TAG_USER_MAX: int = 1 << 20
TAG_COLLECTIVE_BASE: int = 1 << 20
TAG_PROTOCOL_BASE: int = 1 << 24

# Transfer protocol switch point (MPICH-like): messages strictly larger
# than this go through rendezvous (RTS/CTS/DATA).
DEFAULT_EAGER_THRESHOLD: int = 64 * 1024

# The default identifier stamped on messages/requests outside any
# user-declared pattern (section 5.1: "a default communication pattern").
DEFAULT_IDENT: tuple[int, int] = (0, 0)
