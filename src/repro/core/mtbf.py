"""Per-cluster MTBF estimation from observed failures.

The Young/Daly cadence needs an MTBF.  A configured constant
(``SPBCConfig.mtbf_ns``) is what most systems run with, but the
simulator *sees* every injected failure — so it can do what production
resilience runtimes do: estimate the mean time between failures online
and let the checkpoint interval follow the machine it actually runs on
(``mtbf_ns="observed"``).

The estimator exponentially smooths inter-failure gaps: with smoothing
factor ``alpha``, a new gap ``g`` updates the estimate ``m`` as
``m := alpha * g + (1 - alpha) * m``.  Until the second failure there is
no gap to learn from, so the configured prior is returned — the cadence
starts from the administrator's guess and converges to the observed
rate as failures accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class MTBFEstimator:
    """Exponential smoothing over observed inter-failure times."""

    prior_ns: int
    alpha: float = 0.5
    _last_failure_ns: Optional[int] = field(default=None, repr=False)
    _smoothed_ns: Optional[float] = field(default=None, repr=False)
    samples: int = 0  # inter-failure gaps observed so far

    def __post_init__(self) -> None:
        if self.prior_ns <= 0:
            raise ValueError(f"MTBF prior must be positive, got {self.prior_ns}")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")

    def note_failure(self, now_ns: int) -> None:
        """Record a failure at virtual time ``now_ns``."""
        if self._last_failure_ns is not None:
            gap = now_ns - self._last_failure_ns
            if gap > 0:
                # Two failures at the same instant (one blast radius
                # touching several clusters) are one event, not a
                # zero-length gap.
                if self._smoothed_ns is None:
                    self._smoothed_ns = float(gap)
                else:
                    self._smoothed_ns = (
                        self.alpha * gap + (1.0 - self.alpha) * self._smoothed_ns
                    )
                self.samples += 1
        self._last_failure_ns = now_ns

    def mtbf_ns(self) -> int:
        """Current estimate (the prior until a gap has been observed)."""
        if self._smoothed_ns is None:
            return self.prior_ns
        return max(1, int(self._smoothed_ns))

    @property
    def observed(self) -> bool:
        """True once at least one inter-failure gap has been folded in."""
        return self._smoothed_ns is not None
