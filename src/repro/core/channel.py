"""Channel sequence-number variants, including the paper's section-7
extension for hybrid MPI+threads programs.

With ``MPI_THREAD_MULTIPLE``, several threads of one rank may send on
the same channel; if they disambiguate by *tag*, per-channel total order
(channel-determinism) is lost, but per-``(channel, tag)`` order can
survive.  The paper proposes "to associate a sequence number with each
(channel, tag) tuple instead of a single sequence number per channel".
:class:`TagChannelSeq` implements exactly that bookkeeping, alongside
the default :class:`ChannelSeq`, so a thread-aware protocol variant can
decide which messages need re-sending per (channel, tag) stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

ChannelKey = Tuple[int, int]  # (comm_id, peer)
TaggedKey = Tuple[int, int, int]  # (comm_id, peer, tag)


class ChannelSeq:
    """Per-channel sequence numbers (the paper's base protocol)."""

    def __init__(self) -> None:
        self._next: Dict[ChannelKey, int] = {}

    def next(self, comm_id: int, peer: int) -> int:
        key = (comm_id, peer)
        self._next[key] = self._next.get(key, 0) + 1
        return self._next[key]

    def current(self, comm_id: int, peer: int) -> int:
        return self._next.get((comm_id, peer), 0)

    def snapshot(self) -> Dict[ChannelKey, int]:
        return dict(self._next)

    def restore(self, snap: Dict[ChannelKey, int]) -> None:
        self._next = dict(snap)


class TagChannelSeq:
    """Per-(channel, tag) sequence numbers (section 7's sketch for
    MPI_THREAD_MULTIPLE programs that separate threads by tag).

    Guarantees: for each (comm, peer, tag) stream the numbers are gapless
    and monotone, independent of interleaving with other tags — so a
    tag-deterministic multi-threaded sender still produces comparable
    streams across executions even though the per-channel total order is
    gone.
    """

    def __init__(self) -> None:
        self._next: Dict[TaggedKey, int] = {}

    def next(self, comm_id: int, peer: int, tag: int) -> int:
        key = (comm_id, peer, tag)
        self._next[key] = self._next.get(key, 0) + 1
        return self._next[key]

    def current(self, comm_id: int, peer: int, tag: int) -> int:
        return self._next.get((comm_id, peer, tag), 0)

    def streams_of_channel(self, comm_id: int, peer: int) -> Dict[int, int]:
        """tag -> last seq for one physical channel (what a recovery
        handshake would exchange per stream)."""
        return {
            tag: seq
            for (cid, p, tag), seq in self._next.items()
            if cid == comm_id and p == peer
        }

    def snapshot(self) -> Dict[TaggedKey, int]:
        return dict(self._next)

    def restore(self, snap: Dict[TaggedKey, int]) -> None:
        self._next = dict(snap)

    def merge_resend_bounds(
        self, received: Dict[int, int], comm_id: int, peer: int
    ) -> Dict[int, Tuple[int, int]]:
        """Given the peer's per-tag received high-water marks, compute
        per-tag (first, last) seq ranges that need re-sending."""
        out: Dict[int, Tuple[int, int]] = {}
        for tag, last_sent in self.streams_of_channel(comm_id, peer).items():
            got = received.get(tag, 0)
            if got < last_sent:
                out[tag] = (got + 1, last_sent)
        return out
