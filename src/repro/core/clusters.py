"""Cluster maps: the process partition SPBC is parameterized by.

A cluster map assigns every world rank to exactly one cluster.  The
paper's configurations always keep all ranks of a physical node in the
same cluster ("providing failure containment inside a node would be
useless since a node failure kills every process on it", section 6.1);
:meth:`ClusterMap.validate_node_aligned` checks that property.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.sim.network import Topology


class ClusterMap:
    """Immutable rank -> cluster assignment."""

    def __init__(self, cluster_of: Sequence[int]) -> None:
        if not cluster_of:
            raise ValueError("empty cluster map")
        self.cluster_of: List[int] = list(cluster_of)
        ids = sorted(set(self.cluster_of))
        if ids != list(range(len(ids))):
            raise ValueError(
                f"cluster ids must be contiguous 0..k-1, got {ids[:10]}..."
            )
        self._members: Dict[int, List[int]] = {}
        for rank, c in enumerate(self.cluster_of):
            self._members.setdefault(c, []).append(rank)

    # ------------------------------------------------------------------
    @property
    def nranks(self) -> int:
        return len(self.cluster_of)

    @property
    def nclusters(self) -> int:
        return len(self._members)

    def cluster(self, rank: int) -> int:
        return self.cluster_of[rank]

    def members(self, cluster: int) -> List[int]:
        return list(self._members[cluster])

    def same_cluster(self, a: int, b: int) -> bool:
        return self.cluster_of[a] == self.cluster_of[b]

    def is_intercluster(self, src: int, dst: int) -> bool:
        return self.cluster_of[src] != self.cluster_of[dst]

    def sizes(self) -> List[int]:
        return [len(self._members[c]) for c in range(self.nclusters)]

    # ------------------------------------------------------------------
    def validate_node_aligned(self, topology: Topology) -> None:
        """Raise if any physical node is split across clusters."""
        for node in range(topology.nnodes):
            ranks = topology.ranks_on_node(node)
            clusters = {self.cluster_of[r] for r in ranks}
            if len(clusters) > 1:
                raise ValueError(
                    f"node {node} is split across clusters {sorted(clusters)}"
                )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def block(cls, nranks: int, nclusters: int) -> "ClusterMap":
        """Contiguous equal blocks of ranks (the simplest node-aligned map
        when ranks are block-distributed over nodes)."""
        if not 1 <= nclusters <= nranks:
            raise ValueError(f"need 1 <= nclusters <= nranks, got {nclusters}")
        if nranks % nclusters != 0:
            raise ValueError(
                f"{nclusters} clusters do not evenly divide {nranks} ranks"
            )
        per = nranks // nclusters
        return cls([r // per for r in range(nranks)])

    @classmethod
    def singletons(cls, nranks: int) -> "ClusterMap":
        """One rank per cluster == pure message logging (Table 1's
        512-cluster column)."""
        return cls(list(range(nranks)))

    @classmethod
    def single(cls, nranks: int) -> "ClusterMap":
        """Everything in one cluster == pure coordinated checkpointing."""
        return cls([0] * nranks)

    @classmethod
    def per_node(cls, topology: Topology) -> "ClusterMap":
        """One cluster per physical node == log all inter-node messages
        (Table 1's 64-cluster row)."""
        return cls([topology.node_of(r) for r in range(topology.nranks)])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClusterMap) and self.cluster_of == other.cluster_of

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ClusterMap {self.nclusters} clusters over {self.nranks} ranks>"
