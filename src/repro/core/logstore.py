"""Sender-based message logs (Algorithm 1 line 6, Johnson/Zwaenepoel [21]).

Every inter-cluster message is recorded in its sender's memory: payload,
metadata — including the per-channel sequence number and the SPBC
``(pattern_id, iteration_id)`` identifier — so it can be re-sent verbatim
during recovery.  The store also keeps the accounting the paper's Table 1
reports: logged bytes over time per process (growth rate in MB/s).

The log has two areas per channel:

* ``channels`` — *resident* records, held in the sender's memory since
  the last checkpoint commit;
* a *stable* area — records already covered by a committed checkpoint
  (the snapshot saved with (State, Logs) at line 15).  ``truncate()``
  moves the resident records there, freeing the sender's memory without
  losing replayability: peers replaying for a rolled-back cluster read
  the union (``include_stable=True``), since the failed side's restored
  LR may predate the sender's own checkpoint.

``bytes_logged``/``records_logged`` stay cumulative (Table 1 reports
growth over the whole run); ``resident_bytes``/``resident_records``
track live memory and drop back at every truncation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Set, Tuple

from repro.util.units import mb_per_s


@dataclass(slots=True)
class LogRecord:
    """One logged message, exactly as it must be replayed.

    ``count`` is 1 for every real record.  Warp fast-forward (see
    :mod:`repro.sim.warp`) coalesces a whole fast-forwarded span of a
    channel into a single synthetic record (``payload=None``) whose
    ``count``/``nbytes`` carry the span's record and byte totals, so the
    store's accounting — residency, GC credit, Table 1 growth — stays
    exact without materializing the skipped messages."""

    comm_id: int
    dst: int
    seqnum: int
    tag: int
    nbytes: int
    ident: Tuple[int, int]
    payload: Any
    send_time_ns: int
    count: int = 1


ChannelKey = Tuple[int, int]  # (comm_id, dst)


def _suffix_after(chan: List[LogRecord], seqnum: int) -> List[LogRecord]:
    """Records with seqnum strictly greater than ``seqnum``; ``chan`` is
    seq-sorted, so this is a bisect, not a scan (replay is no longer
    once-per-run when multi-failure scenarios re-trigger it)."""
    return chan[bisect_right(chan, seqnum, key=lambda r: r.seqnum):]


class LogStore:
    """Per-rank append-only log, organized by outgoing channel."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.channels: Dict[ChannelKey, List[LogRecord]] = {}  # resident
        self._stable: Dict[ChannelKey, List[LogRecord]] = {}
        self.bytes_logged = 0  # cumulative (Table 1)
        self.records_logged = 0
        self.resident_bytes = 0  # live memory held by the log
        self.resident_records = 0
        # Receiver-certified GC floors: seq <= floor on a channel will
        # never be requested again (the receiver saved its delivery in a
        # checkpoint it can never roll back past).  Forever-true facts:
        # they survive this sender's own rollbacks.
        self._collected: Dict[ChannelKey, int] = {}
        self.collected_records = 0  # cumulative, freed by receiver GC
        self.collected_bytes = 0

    def append(self, rec: LogRecord) -> None:
        key = (rec.comm_id, rec.dst)
        if rec.seqnum <= self.last_seq(rec.comm_id, rec.dst):
            raise ValueError(
                f"log seqnums must increase per channel: {rec.seqnum} after "
                f"{self.last_seq(rec.comm_id, rec.dst)} on {key}"
            )
        self.channels.setdefault(key, []).append(rec)
        self.bytes_logged += rec.nbytes
        self.records_logged += rec.count
        self.resident_bytes += rec.nbytes
        self.resident_records += rec.count

    def last_seq(self, comm_id: int, dst: int) -> int:
        """Highest logged seqnum on a channel (0 if nothing logged),
        across both the resident and the stable area.  A channel whose
        records were all garbage-collected reports its GC floor, so
        re-sends of collected messages are never re-logged."""
        key = (comm_id, dst)
        chan = self.channels.get(key)
        if chan:
            return chan[-1].seqnum  # resident extends the stable prefix
        stable = self._stable.get(key)
        if stable:
            return stable[-1].seqnum
        return self._collected.get(key, 0)

    def replay_after(
        self, comm_id: int, dst: int, seqnum: int, include_stable: bool = False
    ) -> List[LogRecord]:
        """Records on (comm_id, dst) with seqnum strictly greater than
        ``seqnum``, in sequence order (Algorithm 1 lines 23-24).

        Recovery passes ``include_stable=True``: a rolled-back peer's LR
        can predate this sender's last checkpoint, so replay must also
        cover records truncated out of resident memory."""
        key = (comm_id, dst)
        out: List[LogRecord] = []
        if include_stable:
            out.extend(_suffix_after(self._stable.get(key, []), seqnum))
        out.extend(_suffix_after(self.channels.get(key, []), seqnum))
        return out

    def channel_keys(self) -> Set[ChannelKey]:
        """Every channel with logged traffic — resident, stable, or
        fully garbage-collected (the channel existed; recovery handshakes
        must still cover it)."""
        return set(self.channels) | set(self._stable) | set(self._collected)

    def records_to(self, dst: int) -> List[LogRecord]:
        """All records destined to ``dst``, across communicators, in send
        order (send_time then seqnum keeps cross-comm order sensible)."""
        out: List[LogRecord] = []
        for area in (self._stable, self.channels):
            for (cid, d), recs in area.items():
                if d == dst:
                    out.extend(recs)
        out.sort(key=lambda r: (r.send_time_ns, r.comm_id, r.seqnum))
        return out

    def all_records(self) -> Iterator[LogRecord]:
        for area in (self._stable, self.channels):
            for recs in area.values():
                yield from recs

    def merged_channels(self) -> Dict[ChannelKey, List[LogRecord]]:
        """Per-channel stable + resident records, in sequence order."""
        out: Dict[ChannelKey, List[LogRecord]] = {}
        for area in (self._stable, self.channels):
            for key, recs in area.items():
                out.setdefault(key, []).extend(recs)
        return out

    # ------------------------------------------------------------------
    def growth_rate_mb_s(self, duration_ns: int) -> float:
        """Average log growth over a run — the quantity of Table 1."""
        return mb_per_s(self.bytes_logged, duration_ns)

    # ------------------------------------------------------------------
    # Checkpoint support: logs are saved with the process state (line 15)
    # and the memory may be freed afterwards.  Rolled-back processes come
    # back with exactly the snapshot content.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "channels": {k: list(v) for k, v in self.merged_channels().items()},
            "bytes_logged": self.bytes_logged,
            "records_logged": self.records_logged,
        }

    def restore(self, snap: dict) -> None:
        # Everything in the snapshot was covered by the checkpoint that
        # carried it, so it restores into the stable area.
        self._stable = {k: list(v) for k, v in snap["channels"].items()}
        self.channels = {}
        self.bytes_logged = snap["bytes_logged"]
        self.records_logged = snap["records_logged"]
        self.resident_bytes = 0
        self.resident_records = 0
        # Receiver GC floors outlive our own rollback (the receiver's
        # guarantee is about *its* restart floor, not ours): re-collect
        # records the snapshot carries from before the floors.  Pruning
        # restored *copies* of already-collected records is not new GC,
        # so the cumulative collected counters are left untouched.
        floors = dict(self._collected)
        self._collected = {}
        saved = (self.collected_records, self.collected_bytes)
        for (cid, dst), floor in floors.items():
            self.collect(cid, dst, floor)
        self.collected_records, self.collected_bytes = saved

    def inherit_floors(self, prev: "LogStore") -> None:
        """Carry receiver-certified GC floors over from a dead
        incarnation's log.  The floors are facts about the *receivers*'
        restart guarantees, so they outlive this sender's own crash;
        a subsequent :meth:`restore` re-collects any records the
        checkpoint snapshot carries from below them."""
        for (cid, dst), floor in prev._collected.items():
            if floor > self._collected.get((cid, dst), 0):
                self._collected[(cid, dst)] = floor

    def collect(self, comm_id: int, dst: int, upto_seq: int) -> int:
        """Receiver-driven garbage collection (Johnson/Zwaenepoel-style):
        delete records with ``seqnum <= upto_seq`` from *both* log areas.

        Legal only when the receiver certified it can never again request
        them — it delivered them and saved that delivery (the LR) in a
        checkpoint it is guaranteed never to roll back past (see
        ``StorageBackend.guaranteed_round``).  Unlike :meth:`truncate`,
        which moves records into the checkpointed stable area, this frees
        them everywhere: the resident memory *and* every future snapshot
        shrink.  Returns the number of records deleted."""
        key = (comm_id, dst)
        if upto_seq <= self._collected.get(key, 0):
            return 0
        self._collected[key] = upto_seq
        deleted = 0
        for area, resident in ((self._stable, False), (self.channels, True)):
            chan = area.get(key)
            if not chan:
                continue
            cut = bisect_right(chan, upto_seq, key=lambda r: r.seqnum)
            if cut == 0:
                continue
            for rec in chan[:cut]:
                self.collected_bytes += rec.nbytes
                deleted += rec.count
                if resident:
                    self.resident_bytes -= rec.nbytes
                    self.resident_records -= rec.count
            del chan[:cut]
            if not chan:
                del area[key]
        self.collected_records += deleted
        return deleted

    def truncate(self) -> None:
        """Free the resident log memory (legal right after a checkpoint
        commits to a surviving tier: the saved snapshot now covers
        everything up to the checkpoint).  Records stay replayable via
        ``include_stable=True``."""
        for key, recs in self.channels.items():
            self._stable.setdefault(key, []).extend(recs)
        self.channels = {}
        self.resident_bytes = 0
        self.resident_records = 0
        # bytes_logged/records_logged are cumulative on purpose: Table 1
        # reports growth over the whole run, not log residency.
