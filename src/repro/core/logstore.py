"""Sender-based message logs (Algorithm 1 line 6, Johnson/Zwaenepoel [21]).

Every inter-cluster message is recorded in its sender's memory: payload,
metadata — including the per-channel sequence number and the SPBC
``(pattern_id, iteration_id)`` identifier — so it can be re-sent verbatim
during recovery.  The store also keeps the accounting the paper's Table 1
reports: logged bytes over time per process (growth rate in MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.util.units import mb_per_s


@dataclass
class LogRecord:
    """One logged message, exactly as it must be replayed."""

    comm_id: int
    dst: int
    seqnum: int
    tag: int
    nbytes: int
    ident: Tuple[int, int]
    payload: Any
    send_time_ns: int


ChannelKey = Tuple[int, int]  # (comm_id, dst)


class LogStore:
    """Per-rank append-only log, organized by outgoing channel."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.channels: Dict[ChannelKey, List[LogRecord]] = {}
        self.bytes_logged = 0
        self.records_logged = 0

    def append(self, rec: LogRecord) -> None:
        chan = self.channels.setdefault((rec.comm_id, rec.dst), [])
        if chan and rec.seqnum <= chan[-1].seqnum:
            raise ValueError(
                f"log seqnums must increase per channel: {rec.seqnum} after "
                f"{chan[-1].seqnum} on {(rec.comm_id, rec.dst)}"
            )
        chan.append(rec)
        self.bytes_logged += rec.nbytes
        self.records_logged += 1

    def last_seq(self, comm_id: int, dst: int) -> int:
        """Highest logged seqnum on a channel (0 if nothing logged)."""
        chan = self.channels.get((comm_id, dst))
        return chan[-1].seqnum if chan else 0

    def replay_after(self, comm_id: int, dst: int, seqnum: int) -> List[LogRecord]:
        """Records on (comm_id, dst) with seqnum strictly greater than
        ``seqnum``, in sequence order (Algorithm 1 lines 23-24)."""
        chan = self.channels.get((comm_id, dst), [])
        # Logs are appended in seq order; binary search would be fine but
        # replay happens once per failure — keep it simple.
        return [r for r in chan if r.seqnum > seqnum]

    def records_to(self, dst: int) -> List[LogRecord]:
        """All records destined to ``dst``, across communicators, in send
        order (send_time then seqnum keeps cross-comm order sensible)."""
        out: List[LogRecord] = []
        for (cid, d), recs in self.channels.items():
            if d == dst:
                out.extend(recs)
        out.sort(key=lambda r: (r.send_time_ns, r.comm_id, r.seqnum))
        return out

    def all_records(self) -> Iterator[LogRecord]:
        for recs in self.channels.values():
            yield from recs

    # ------------------------------------------------------------------
    def growth_rate_mb_s(self, duration_ns: int) -> float:
        """Average log growth over a run — the quantity of Table 1."""
        return mb_per_s(self.bytes_logged, duration_ns)

    # ------------------------------------------------------------------
    # Checkpoint support: logs are saved with the process state (line 15)
    # and the memory may be freed afterwards.  Rolled-back processes come
    # back with exactly the snapshot content.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "channels": {k: list(v) for k, v in self.channels.items()},
            "bytes_logged": self.bytes_logged,
            "records_logged": self.records_logged,
        }

    def restore(self, snap: dict) -> None:
        self.channels = {k: list(v) for k, v in snap["channels"].items()}
        self.bytes_logged = snap["bytes_logged"]
        self.records_logged = snap["records_logged"]

    def truncate(self) -> None:
        """Free the log memory (legal right after a checkpoint: the saved
        snapshot now covers everything up to the checkpoint)."""
        self.channels = {}
        # accounting counters are cumulative on purpose: Table 1 reports
        # growth over the whole run, not log residency.
