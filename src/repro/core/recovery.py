"""Online failure injection and partial restart.

This is the capability the paper's prototype lacked ("due to current
limitations of our prototype (no support for partial restart), we cannot
simulate failures", section 6.4) — the simulator gives it to us, so
Algorithm 1's recovery lines (16-26) can be exercised end-to-end:

1. at the failure time every process of the failed cluster is killed, its
   MPI library state is wiped, and all in-flight traffic to/from the
   cluster is purged;
2. after a restart delay each member restarts from its latest coordinated
   checkpoint (or from the initial state when none exists), restores
   (State, Logs), and sends Rollback on its inter-cluster channels;
3. peers reply lastMessage and replay logged messages per channel in
   sequence-number order — with no synchronization among replayers;
4. the restarted application re-executes; its inter-cluster re-sends with
   ``seq <= LS`` are suppressed.

Failure containment is observable: processes outside the failed cluster
are never restarted (their SimProcess objects survive), which the test
suite asserts.

Two failure kinds are modeled:

* ``"process"`` — the cluster's processes die; every checkpoint copy
  survives (RAM partner copies and node-local SSDs outlive a crash);
* ``"node"`` — exactly the *physical node* hosting the target rank dies
  (per-node blast radius, not the whole cluster's machines): every rank
  on that node is killed, checkpoint copies **hosted on that node** in
  tiers with ``survives_node_failure=False`` are invalidated (partner
  copies placed on a buddy node survive), and every cluster with a
  member on the node rolls back to its latest consistent surviving
  round — or to the synthetic round-0 checkpoint when nothing survives.

The node-failure blast radius comes from the world's
:class:`~repro.sim.network.Topology` (node -> ranks mapping at the
configured ranks-per-node).  Because the paper's cluster maps never
split a node across clusters, a node failure usually rolls back exactly
one cluster; with a node-splitting map, every touched cluster restarts.

A cluster restarts from one *consistent* round: the latest round every
member still holds a copy of (a coordinated cut is only consistent when
all members resume from the same round).  Reading the copies back is
charged via the tier's ``read_time_ns`` — the paper's "IO burst when
retrieving the last checkpoint" — and surfaced in :class:`FailureEvent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.checkpoint import Checkpoint
from repro.core.logstore import LogStore
from repro.core.protocol import SPBC
from repro.mpi.context import RankContext
from repro.mpi.runtime import World
from repro.sim.network import Topology
from repro.sim.process import SimProcess
from repro.storage.backend import RestoreReceipt
from repro.util.units import MS

AppFactory = Callable[[RankContext, Optional[dict]], Generator]

FAILURE_KINDS = ("process", "node")


@dataclass
class FailureEvent:
    """One cluster's view of one injected failure.

    A node failure on a node-splitting cluster map emits one event per
    rolled-back cluster.  ``purged_packets`` and ``invalidated_copies``
    are totals for the *whole* injection, recorded on the primary
    event (the cluster containing the injected rank); secondary events
    carry 0 so summing over events never double-counts.  ``rank`` is
    the injected target on the primary event and the cluster's first
    member on secondary ones."""

    time_ns: int
    rank: int
    cluster: int
    restarted_from_round: int
    purged_packets: int = 0
    kind: str = "process"
    # Checkpoint copies lost with the node(s) (node failures only).
    invalidated_copies: int = 0
    # Tier the surviving copy was read from (None: restart from scratch).
    restored_tier: Optional[str] = None
    # Modeled restart-read time added before the cluster comes back.
    restore_read_ns: int = 0
    # Modeled decompression time on the restart path (charged only by
    # backends with charge_decompress; always reported).
    restore_decompress_ns: int = 0
    # Background flushes aborted by this failure (async mode): in-flight
    # PFS copies of the dead node never land, so recovery restarts from
    # the last *fully drained* round.  Recorded on the primary event.
    cancelled_flushes: int = 0
    # Partner-rebuild flows started when this event's restart brought
    # the failed node back (re-replication to the returned buddy).
    partner_rebuilds: int = 0
    # Physical node that died (node failures only).
    node: Optional[int] = None
    # Ranks killed by this event that belong to this event's cluster.
    killed_ranks: Tuple[int, ...] = ()
    # True when a later crash of the same cluster replaced this event's
    # pending restart before it ran: restarted_from_round/restored_tier
    # keep their preliminary values and describe no actual restart.
    superseded: bool = False


class RecoveryManager:
    """Injects crashes and drives Algorithm 1's restart side."""

    def __init__(
        self,
        world: World,
        spbc: SPBC,
        app_factory: AppFactory,
        restart_delay_ns: int = 2 * MS,
        topology: Optional[Topology] = None,
        restart_stagger_ns: int = 0,
    ) -> None:
        self.world = world
        self.spbc = spbc
        self.app_factory = app_factory
        self.restart_delay_ns = restart_delay_ns
        # When one blast radius rolls back several clusters, offset the
        # i-th cluster's restart (and therefore its chain-read pipeline)
        # by i * restart_stagger_ns, so the simultaneous PFS read bursts
        # are spread out instead of melting the shared read lane.
        self.restart_stagger_ns = restart_stagger_ns
        # Node -> ranks placement defining the node-failure blast radius
        # (defaults to the world's own topology).
        self.topology = topology or world.topology
        if topology is not None:
            # An explicit override also governs where the backend thinks
            # copies live (partner placement must match the blast radius).
            spbc.storage.bind_topology(topology)
        self.failures: List[FailureEvent] = []
        self.restarts: Dict[int, int] = {}  # rank -> number of restarts
        # Journal event sink (see repro.journal): completed restarts are
        # emitted here; the crash-side failure facts are journaled by
        # the runner from ``failures`` after the run (their counts are
        # only engine-independent in the merged/final view).
        self.journal = None
        # One pending restart per cluster: a second crash of a cluster
        # that is still down supersedes the queued restart instead of
        # stacking a duplicate incarnation on top of it.
        self._pending_restart: Dict[int, object] = {}
        self._last_event: Dict[int, FailureEvent] = {}
        # Absolute times of the pending restart milestones (the shard
        # coordinator's conservative hold points; see repro.sim.shard).
        self._pending_at: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def inject_failure(self, at_ns: int, rank: int, kind: str = "process") -> None:
        """Schedule a crash at ``at_ns``.

        ``kind="process"`` crashes ``rank``'s processes — the whole
        cluster rolls back, since its checkpoint is a coordinated cut,
        but every storage copy survives.  ``kind="node"`` kills exactly
        the physical node hosting ``rank``: all ranks on that node die,
        copies hosted there in non-surviving tiers are invalidated, and
        every cluster with a member on the node rolls back."""
        if kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {kind!r} "
                f"(valid kinds: {', '.join(FAILURE_KINDS)})"
            )
        self.world.engine.schedule_at(at_ns, self._fail, rank, kind)

    def inject_node_failure(self, at_ns: int, rank: int) -> None:
        """Fail the physical node hosting ``rank`` at ``at_ns``."""
        self.inject_failure(at_ns, rank, kind="node")

    def _fail(self, rank: int, kind: str = "process") -> None:
        clusters = self.spbc.clusters
        if kind == "node":
            node = self.topology.node_of(rank)
            dead_ranks = set(self.topology.ranks_on_node(node))
        else:
            node = None
            dead_ranks = set(clusters.members(clusters.cluster(rank)))
        # Every cluster touched by the blast radius rolls back wholesale:
        # its checkpoint is a coordinated cut, so partial membership
        # cannot survive a member's loss.
        affected = sorted({clusters.cluster(r) for r in dead_ranks})
        # Per-cluster MTBF estimation (mtbf_ns="observed"): every cluster
        # in the blast radius observes this failure.
        self.spbc.note_failure_observed(affected, self.world.engine.now)
        members_all: set = set()
        for c in affected:
            members_all |= set(clusters.members(c))
        for r in sorted(members_all):
            proc = self.world.processes.get(r)
            if proc is not None:
                proc.kill()
            self.world.runtimes[r].kill()
        purged = self.world.network.purge_involving(members_all)
        invalidated = 0
        flushes_before = getattr(self.spbc.storage, "flush_flows_cancelled", 0)
        if kind == "node":
            # Per-node blast radius: only copies hosted on the dead node
            # die (partner copies placed on a live buddy node survive),
            # and background flushes sourced from it are aborted — an
            # in-flight PFS copy is not yet a restorable copy.
            invalidated = self.spbc.storage.invalidate_node_copies(dead_ranks)
        cancelled_flushes = (
            getattr(self.spbc.storage, "flush_flows_cancelled", 0)
            - flushes_before
        )
        if kind == "node":
            # A node loss can strand *other* clusters' in-flight restore
            # reads: a pipeline sourced from a copy that just died (e.g.
            # a partner mirror on the lost node) must not land.  Cancel
            # it and re-plan from what still survives — the partial read
            # is wasted, not refunded.
            for c in [
                c
                for c, pending in self._pending_restart.items()
                if c not in affected
                and isinstance(pending, _FlowRestore)
                and not pending.still_valid(self.spbc.storage)
            ]:
                self._pending_restart[c].cancel()
                self._restart(c)
        primary = clusters.cluster(rank)
        for stagger_idx, c in enumerate(affected):
            ckpt = self.spbc.storage.load_latest(clusters.members(c)[0])
            event = FailureEvent(
                time_ns=self.world.engine.now,
                rank=rank if c == primary else clusters.members(c)[0],
                cluster=c,
                restarted_from_round=ckpt.round_no if ckpt else 0,
                purged_packets=purged if c == primary else 0,
                kind=kind,
                invalidated_copies=invalidated if c == primary else 0,
                cancelled_flushes=cancelled_flushes if c == primary else 0,
                node=node,
                killed_ranks=tuple(sorted(set(clusters.members(c)))),
            )
            self.failures.append(event)
            tele = self.world.engine.telemetry
            if tele.enabled and self._owns_cluster(c):
                # Owner-only: mirrored crash side effects on other shards
                # would double-count the event and duplicate the
                # timeline instants in the merged coordinator view.
                tele.inc("recovery.failures")
                for kr in event.killed_ranks:
                    tele.rank_instant(
                        "failure",
                        kr,
                        event.time_ns,
                        args={"kind": kind, "cluster": c},
                    )
            prev = self._last_event.get(c)
            if prev is not None and c in self._pending_restart:
                prev.superseded = True
            self._last_event[c] = event
            if not self._owns_cluster(c):
                # Sharded simulation: another shard drives this cluster's
                # restart; this world only mirrors the crash side effects.
                continue
            pending = self._pending_restart.get(c)
            if pending is not None:
                pending.cancel()
            delay = self.restart_delay_ns + stagger_idx * self.restart_stagger_ns
            self._pending_restart[c] = self.world.engine.schedule(
                delay, self._restart, c
            )
            self._pending_at[c] = self.world.engine.now + delay

    # ------------------------------------------------------------------
    def _owns_cluster(self, cluster: int) -> bool:
        """Whether this manager drives ``cluster``'s restart (always, in
        single-process mode; shard workers override to their partition)."""
        return True

    def _restart(self, cluster: int) -> None:
        self._pending_restart.pop(cluster, None)
        self._pending_at.pop(cluster, None)
        members = self.spbc.clusters.members(cluster)
        # Defensive: if anything of the cluster is somehow still live
        # (e.g. overlapping failure schedules), take it down first.
        for r in members:
            proc = self.world.processes.get(r)
            if proc is not None and proc.is_live:
                proc.kill()
            if self.world.runtimes[r].alive:
                self.world.runtimes[r].kill()
        # Consistent restart round: the latest round every member can
        # still *reconstruct* (mixing rounds across members would splice
        # two different coordinated cuts).  With the incremental data
        # plane this is chain-aware: a surviving delta whose base died
        # with a node is not restorable, so the cluster falls back to
        # the newest round with a complete chain (usually the last full).
        common = None
        for r in members:
            rounds = set(self.spbc.storage.restorable_rounds(r))
            common = rounds if common is None else common & rounds
        round_no = max(common) if common else 0
        if round_no > 0 and getattr(self.spbc.storage, "flows_active", False):
            # Event-driven backends read the chains back as overlapping
            # flows: every member's pipeline is in flight concurrently,
            # genuinely sharing the tiers' read bandwidth, and the
            # cluster comes back when the slowest pipeline finishes.  A
            # second crash mid-restore cancels the pipelines.
            handle = _FlowRestore(self, cluster, members, round_no)
            self._pending_restart[cluster] = handle
            handle.begin()
            return
        restores: Dict[int, Optional[RestoreReceipt]] = {}
        read_ns = 0
        delay_ns = 0
        decompress_ns = 0
        charge_decompress = getattr(self.spbc.storage, "charge_decompress", False)
        for r in members:
            rec = (
                self.spbc.storage.retrieve(
                    r, round_no, concurrent_readers=len(members)
                )
                if round_no > 0
                else None
            )
            restores[r] = rec
            if rec is not None:
                read_ns = max(read_ns, rec.read_ns)
                decompress_ns = max(decompress_ns, rec.decompress_ns)
                total = rec.read_ns + (
                    rec.decompress_ns if charge_decompress else 0
                )
                delay_ns = max(delay_ns, total)
        event = self._last_event.get(cluster)
        if event is not None:
            event.restarted_from_round = round_no
            event.restore_read_ns = read_ns
            event.restore_decompress_ns = decompress_ns
            event.restored_tier = next(
                (rec.tier for rec in restores.values() if rec is not None), None
            )
        if delay_ns > 0:
            # The restart-time read burst: the cluster only comes back
            # once every member has its copy off stable storage (plus
            # the modeled decompression, when the backend charges it).
            self._pending_restart[cluster] = self.world.engine.schedule(
                delay_ns, self._complete_restart, cluster, restores
            )
            self._pending_at[cluster] = self.world.engine.now + delay_ns
        else:
            self._complete_restart(cluster, restores)

    def _finish_flow_restore(
        self,
        cluster: int,
        round_no: int,
        restores: Dict[int, Optional[RestoreReceipt]],
    ) -> None:
        """All of a cluster's restore pipelines completed."""
        event = self._last_event.get(cluster)
        if event is not None:
            recs = [rec for rec in restores.values() if rec is not None]
            event.restarted_from_round = round_no
            event.restore_read_ns = max((r.read_ns for r in recs), default=0)
            event.restore_decompress_ns = max(
                (r.decompress_ns for r in recs), default=0
            )
            event.restored_tier = next((r.tier for r in recs), None)
        self._complete_restart(cluster, restores)

    def _complete_restart(
        self, cluster: int, restores: Dict[int, Optional[RestoreReceipt]]
    ) -> None:
        self._pending_restart.pop(cluster, None)
        self._pending_at.pop(cluster, None)
        members = self.spbc.clusters.members(cluster)
        # Bring every member's library back first, then restore protocol
        # state, then send Rollbacks, then start the apps: Rollbacks must
        # not race a half-restored cluster.
        for r in members:
            self.world.runtimes[r].restart()
        for r in members:
            rt = self.world.runtimes[r]
            rec = restores[r]
            if rec is None:
                # Restarting from the initial state: announce the rollback
                # to every inter-cluster rank (no channels known yet).
                self.spbc.restore_rank(rt, self._initial_checkpoint(r), broadcast=True)
            else:
                self.spbc.restore_rank(rt, rec.ckpt)
        for r in members:
            self.spbc.send_rollbacks(self.world.runtimes[r])
        # Failure notification to every survivor (paper line 16 reaches
        # all processes): survivors knowing channels the restarted side's
        # checkpoint predates ping back, extending the handshake.
        self._notify_survivors(set(members))
        for r in members:
            rec = restores[r]
            state = rec.ckpt.app_state if rec is not None else None
            ctx = RankContext(self.world, r)
            self.restarts[r] = self.restarts.get(r, 0) + 1
            gen = self.app_factory(ctx, state)
            proc = SimProcess(
                self.world.engine, f"rank{r}.inc{self.restarts[r]}", gen
            )
            self.world.processes[r] = proc
            proc.start()
        # The failed node is back with its ranks: re-replicate the
        # partner copies it hosted (owned by its ring predecessors) as
        # background flows, restoring tolerance to a *sequential*
        # failure of the buddy pair (SCR-style rebuild).
        event = self._last_event.get(cluster)
        if (
            event is not None
            and event.kind == "node"
            and event.node is not None
            and hasattr(self.spbc.storage, "rebuild_partner_copies")
        ):
            event.partner_rebuilds = self.spbc.storage.rebuild_partner_copies(
                event.node
            )
        if self.journal is not None:
            # Only restarts that actually ran reach this point, so the
            # journaled round/tier are never the preliminary values a
            # superseding crash would have invalidated.
            self.journal.emit(
                "restart",
                t=self.world.engine.now,
                cluster=cluster,
                round=event.restarted_from_round if event else 0,
                tier=event.restored_tier if event else None,
            )
        tele = self.world.engine.telemetry
        if tele.enabled:
            now = self.world.engine.now
            t_fail = event.time_ns if event is not None else now
            span_args = {
                "round": event.restarted_from_round if event else 0,
                "tier": event.restored_tier if event else None,
                "cluster": cluster,
            }
            for r in members:
                tele.rank_span("restart", r, t_fail, now, args=span_args)
                rec = restores.get(r)
                read_ns = rec.read_ns if rec is not None else 0
                if read_ns > 0:
                    # The read tail of the outage: the member's chain
                    # came off storage in the final read_ns (overlapping
                    # flow pipelines record their exact windows in the
                    # storage lanes as well).
                    tele.rank_span(
                        "restart-read", r, now - read_ns, now, args=span_args
                    )
            tele.inc("recovery.restarts")

    def _notify_survivors(self, failed: set) -> None:
        """Deliver the failure notification from every surviving rank
        (shard workers override: each shard notifies its own ranks)."""
        for r in range(self.world.nranks):
            rt = self.world.runtimes[r]
            if r not in failed and rt.alive:
                self.spbc.notify_failure(rt, failed)

    def _initial_checkpoint(self, rank: int) -> Checkpoint:
        """Synthetic round-0 checkpoint: restart from the initial state.

        With no saved checkpoint the cluster re-executes from the very
        beginning; peers replay everything (LR = 0 on every channel).
        Rollback announcements are broadcast to every inter-cluster rank
        because a fresh state knows no channels yet.
        """
        return Checkpoint(
            rank=rank,
            round_no=0,
            taken_at_ns=0,
            app_state=None,
            chan_seq={},
            lr={},
            arrived={},
            ls={},
            pattern_state={
                "next_pattern_id": 0,
                "pattern_iters": {},
                "active_ident": (0, 0),
            },
            unexpected=[],
            log_snapshot=LogStore(rank).snapshot(),
        )


class _FlowRestore:
    """One cluster's restart read running as overlapping flow pipelines.

    Stands in for the plain scheduled-event handle in
    ``RecoveryManager._pending_restart``: a later crash of the same
    cluster calls :meth:`cancel`, which aborts every member's pipeline
    (the bytes already read are not refunded — no time travel)."""

    def __init__(
        self,
        manager: RecoveryManager,
        cluster: int,
        members: Sequence[int],
        round_no: int,
    ) -> None:
        self.manager = manager
        self.cluster = cluster
        self.members = list(members)
        self.round_no = round_no
        self.restores: Dict[int, Optional[RestoreReceipt]] = {}
        self.handles: Dict[int, object] = {}
        self.plans: Dict[int, object] = {}
        self.cancelled = False
        self._remaining = len(self.members)

    def begin(self) -> None:
        storage = self.manager.spbc.storage
        for r in self.members:
            # Snapshot the plan the pipeline will execute, so a later
            # failure elsewhere can check whether a source copy died
            # under an in-flight read (still_valid below).
            self.plans[r] = storage.restore_plan(r, self.round_no)
            handle = storage.start_restore(
                r, self.round_no, on_done=partial(self._member_done, r)
            )
            if handle is not None:
                self.handles[r] = handle

    def still_valid(self, storage) -> bool:
        """True while every copy the pipelines are reading survives.  A
        third-party node failure can invalidate a source copy (e.g. a
        partner mirror on the buddy node) mid-read — the transfer must
        not be allowed to land data the model declared lost."""
        for rank, plan in self.plans.items():
            if rank in self.restores:
                continue  # this member's read already completed
            if plan is None:
                continue
            for link in plan.links:
                if not storage.has_copy(rank, link.round_no, link.tier):
                    return False
        return True

    def cancel(self) -> None:
        self.cancelled = True
        for handle in self.handles.values():
            handle.cancel()
        self.handles.clear()

    def next_event_ns(self) -> Optional[int]:
        """Conservative lower bound on the next pipeline event across
        the cluster's members — and therefore on the restart milestone
        time, which always lands on one of these events.  The shard
        coordinator holds every other shard at this bound (recomputed
        per window) until the completion instant is actually known."""
        bounds = [
            b
            for b in (h.next_event_ns() for h in self.handles.values())
            if b is not None
        ]
        return min(bounds, default=None)

    def _member_done(self, rank: int, receipt: Optional[RestoreReceipt]) -> None:
        if self.cancelled:
            return
        self.handles.pop(rank, None)
        self.restores[rank] = receipt
        self._remaining -= 1
        if self._remaining == 0:
            self.manager._finish_flow_restore(
                self.cluster, self.round_no, self.restores
            )
