"""Online failure injection and partial restart.

This is the capability the paper's prototype lacked ("due to current
limitations of our prototype (no support for partial restart), we cannot
simulate failures", section 6.4) — the simulator gives it to us, so
Algorithm 1's recovery lines (16-26) can be exercised end-to-end:

1. at the failure time every process of the failed cluster is killed, its
   MPI library state is wiped, and all in-flight traffic to/from the
   cluster is purged;
2. after a restart delay each member restarts from its latest coordinated
   checkpoint (or from the initial state when none exists), restores
   (State, Logs), and sends Rollback on its inter-cluster channels;
3. peers reply lastMessage and replay logged messages per channel in
   sequence-number order — with no synchronization among replayers;
4. the restarted application re-executes; its inter-cluster re-sends with
   ``seq <= LS`` are suppressed.

Failure containment is observable: processes outside the failed cluster
are never restarted (their SimProcess objects survive), which the test
suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.core.checkpoint import Checkpoint
from repro.core.logstore import LogStore
from repro.core.protocol import SPBC
from repro.mpi.context import RankContext
from repro.mpi.runtime import World
from repro.sim.process import SimProcess
from repro.util.units import MS

AppFactory = Callable[[RankContext, Optional[dict]], Generator]


@dataclass
class FailureEvent:
    time_ns: int
    rank: int
    cluster: int
    restarted_from_round: int
    purged_packets: int = 0


class RecoveryManager:
    """Injects crashes and drives Algorithm 1's restart side."""

    def __init__(
        self,
        world: World,
        spbc: SPBC,
        app_factory: AppFactory,
        restart_delay_ns: int = 2 * MS,
    ) -> None:
        self.world = world
        self.spbc = spbc
        self.app_factory = app_factory
        self.restart_delay_ns = restart_delay_ns
        self.failures: List[FailureEvent] = []
        self.restarts: Dict[int, int] = {}  # rank -> number of restarts
        # One pending restart per cluster: a second crash of a cluster
        # that is still down supersedes the queued restart instead of
        # stacking a duplicate incarnation on top of it.
        self._pending_restart: Dict[int, object] = {}

    # ------------------------------------------------------------------
    def inject_failure(self, at_ns: int, rank: int) -> None:
        """Schedule a crash of ``rank`` (and, per the model, of its whole
        cluster — the paper clusters never split a node) at ``at_ns``."""
        self.world.engine.schedule_at(at_ns, self._fail, rank)

    def _fail(self, rank: int) -> None:
        cluster = self.spbc.clusters.cluster(rank)
        members = self.spbc.clusters.members(cluster)
        for r in members:
            proc = self.world.processes.get(r)
            if proc is not None:
                proc.kill()
            self.world.runtimes[r].kill()
        purged = self.world.network.purge_involving(set(members))
        ckpt = self.spbc.storage.load_latest(rank)
        self.failures.append(
            FailureEvent(
                time_ns=self.world.engine.now,
                rank=rank,
                cluster=cluster,
                restarted_from_round=ckpt.round_no if ckpt else 0,
                purged_packets=purged,
            )
        )
        pending = self._pending_restart.get(cluster)
        if pending is not None:
            pending.cancel()
        self._pending_restart[cluster] = self.world.engine.schedule(
            self.restart_delay_ns, self._restart, cluster
        )

    # ------------------------------------------------------------------
    def _restart(self, cluster: int) -> None:
        self._pending_restart.pop(cluster, None)
        members = self.spbc.clusters.members(cluster)
        # Defensive: if anything of the cluster is somehow still live
        # (e.g. overlapping failure schedules), take it down first.
        for r in members:
            proc = self.world.processes.get(r)
            if proc is not None and proc.is_live:
                proc.kill()
            if self.world.runtimes[r].alive:
                self.world.runtimes[r].kill()
        # Bring every member's library back first, then restore protocol
        # state, then send Rollbacks, then start the apps: Rollbacks must
        # not race a half-restored cluster.
        for r in members:
            self.world.runtimes[r].restart()
        for r in members:
            rt = self.world.runtimes[r]
            ckpt = self.spbc.storage.load_latest(r)
            if ckpt is None:
                # Restarting from the initial state: announce the rollback
                # to every inter-cluster rank (no channels known yet).
                self.spbc.restore_rank(rt, self._initial_checkpoint(r), broadcast=True)
            else:
                self.spbc.restore_rank(rt, ckpt)
        for r in members:
            self.spbc.send_rollbacks(self.world.runtimes[r])
        # Failure notification to every survivor (paper line 16 reaches
        # all processes): survivors knowing channels the restarted side's
        # checkpoint predates ping back, extending the handshake.
        failed = set(members)
        for r in range(self.world.nranks):
            rt = self.world.runtimes[r]
            if r not in failed and rt.alive:
                self.spbc.notify_failure(rt, failed)
        for r in members:
            rt = self.world.runtimes[r]
            ckpt = self.spbc.storage.load_latest(r)
            state = ckpt.app_state if ckpt else None
            ctx = RankContext(self.world, r)
            self.restarts[r] = self.restarts.get(r, 0) + 1
            gen = self.app_factory(ctx, state)
            proc = SimProcess(
                self.world.engine, f"rank{r}.inc{self.restarts[r]}", gen
            )
            self.world.processes[r] = proc
            proc.start()

    def _initial_checkpoint(self, rank: int) -> Checkpoint:
        """Synthetic round-0 checkpoint: restart from the initial state.

        With no saved checkpoint the cluster re-executes from the very
        beginning; peers replay everything (LR = 0 on every channel).
        Rollback announcements are broadcast to every inter-cluster rank
        because a fresh state knows no channels yet.
        """
        return Checkpoint(
            rank=rank,
            round_no=0,
            taken_at_ns=0,
            app_state=None,
            chan_seq={},
            lr={},
            arrived={},
            ls={},
            pattern_state={
                "next_pattern_id": 0,
                "pattern_iters": {},
                "active_ident": (0, 0),
            },
            unexpected=[],
            log_snapshot=LogStore(rank).snapshot(),
        )
