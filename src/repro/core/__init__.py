"""SPBC — Scalable Pattern-Based Checkpointing (the paper's contribution).

The protocol (paper section 4, Algorithm 1):

* processes are partitioned into clusters (:mod:`repro.core.clusters`);
* inter-cluster messages are logged in their sender's memory
  (:mod:`repro.core.logstore`), with per-channel sequence numbers;
* coordinated checkpointing runs inside each cluster
  (:mod:`repro.core.checkpoint`);
* message/request identifiers from the pattern API prevent mismatches of
  anonymous receives during recovery (:mod:`repro.core.protocol`);
* after a failure only the failed cluster rolls back; other clusters
  replay logged messages per channel, in sequence-number order, with no
  inter-process synchronization (:mod:`repro.core.recovery` online path,
  :mod:`repro.core.emulated` paper-methodology path).
"""

from repro.core.clusters import ClusterMap
from repro.core.logstore import LogRecord, LogStore
from repro.core.protocol import SPBC, SPBCConfig, LogCostModel
from repro.core.checkpoint import Checkpoint, StableStorage
from repro.core.recovery import RecoveryManager
from repro.core.emulated import ReplayPlan, replayer_process

__all__ = [
    "ClusterMap",
    "LogRecord",
    "LogStore",
    "SPBC",
    "SPBCConfig",
    "LogCostModel",
    "Checkpoint",
    "StableStorage",
    "RecoveryManager",
    "ReplayPlan",
    "replayer_process",
]
