"""Determinism checkers and the always-happens-before (AHB) toolkit.

Section 3.4 defines two properties over the set of valid executions E_A:

* **send-determinism** (Def. 1): each process emits the same total
  sequence of send events in every valid execution;
* **channel-determinism** (Def. 2): each *channel* carries the same
  sequence of send events in every valid execution (strictly weaker —
  AMG's probe/reply pattern is channel- but not send-deterministic).

We approximate "every valid execution" by running the same program under
different network timing seeds (jitter): each seed yields a different
interleaving, i.e., a different element of E_A.  The checkers compare the
per-channel / per-process send sequences across those runs.

Section 3.5's always-happens-before relation is approximated the same
way: compute happened-before (vector clocks, Lamport [23]) for each run
and intersect — a pair related in *every* observed execution is reported
as AHB.  This is exactly the relation the paper's Theorem 1 quantifies
over, restricted to the executions we sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.tracing import Trace

MessageKey = Tuple[int, int, int, int]  # (src, dst, comm_id, seqnum)


@dataclass
class DeterminismReport:
    """Result of comparing send sequences across executions."""

    deterministic: bool
    runs_compared: int
    mismatches: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.deterministic


def check_channel_determinism(traces: Sequence[Trace]) -> DeterminismReport:
    """Compare per-channel send sequences (seqnum, tag, nbytes) across
    executions (Definition 2)."""
    if len(traces) < 2:
        raise ValueError("need at least two executions to compare")
    ref = traces[0].per_channel_send_sequences()
    mismatches: List[str] = []
    for i, trace in enumerate(traces[1:], start=1):
        other = trace.per_channel_send_sequences()
        for chan in sorted(set(ref) | set(other)):
            a, b = ref.get(chan, []), other.get(chan, [])
            if a != b:
                mismatches.append(
                    f"run0 vs run{i}: channel {chan}: "
                    f"{_first_divergence(a, b)}"
                )
    return DeterminismReport(not mismatches, len(traces), mismatches)


def check_send_determinism(traces: Sequence[Trace]) -> DeterminismReport:
    """Compare per-process total send orders across executions
    (Definition 1 — stricter than channel-determinism)."""
    if len(traces) < 2:
        raise ValueError("need at least two executions to compare")
    ref = traces[0].per_process_send_sequences()
    mismatches: List[str] = []
    for i, trace in enumerate(traces[1:], start=1):
        other = trace.per_process_send_sequences()
        for rank in sorted(set(ref) | set(other)):
            a, b = ref.get(rank, []), other.get(rank, [])
            if a != b:
                mismatches.append(
                    f"run0 vs run{i}: process {rank}: {_first_divergence(a, b)}"
                )
    return DeterminismReport(not mismatches, len(traces), mismatches)


def _first_divergence(a: List, b: List) -> str:
    if len(a) != len(b):
        return f"lengths differ ({len(a)} vs {len(b)})"
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"index {i}: {x} vs {y}"
    return "identical"  # pragma: no cover


# ----------------------------------------------------------------------
# Happened-before via vector clocks
# ----------------------------------------------------------------------

@dataclass
class HBIndex:
    """Vector clocks of the send/deliver event of every message in one
    execution."""

    nranks: int
    send_vc: Dict[MessageKey, np.ndarray]
    deliver_vc: Dict[MessageKey, np.ndarray]

    @staticmethod
    def _before(a: np.ndarray, b: np.ndarray) -> bool:
        return bool(np.all(a <= b) and np.any(a < b))

    def happens_before(
        self, kind1: str, m1: MessageKey, kind2: str, m2: MessageKey
    ) -> bool:
        """Is event kind1(m1) happened-before kind2(m2) in this run?
        ``kind`` is "send" or "deliver"."""
        vc1 = (self.send_vc if kind1 == "send" else self.deliver_vc).get(m1)
        vc2 = (self.send_vc if kind2 == "send" else self.deliver_vc).get(m2)
        if vc1 is None or vc2 is None:
            raise KeyError(f"unknown event {kind1}({m1}) or {kind2}({m2})")
        return self._before(vc1, vc2)


def build_hb_index(trace: Trace, nranks: int) -> HBIndex:
    """Single pass over a (time-ordered) trace computing vector clocks.

    Every send and deliver event ticks its rank's clock; a deliver joins
    the sender's clock attached to the message.
    """
    clocks = np.zeros((nranks, nranks), dtype=np.int64)
    send_vc: Dict[MessageKey, np.ndarray] = {}
    deliver_vc: Dict[MessageKey, np.ndarray] = {}
    for e in trace.events:
        if e.kind == "send":
            r = e.rank
            clocks[r, r] += 1
            send_vc[e.message_key] = clocks[r].copy()
        elif e.kind == "deliver":
            r = e.rank
            svc = send_vc.get(e.message_key)
            if svc is not None:
                np.maximum(clocks[r], svc, out=clocks[r])
            clocks[r, r] += 1
            deliver_vc[e.message_key] = clocks[r].copy()
    return HBIndex(nranks=nranks, send_vc=send_vc, deliver_vc=deliver_vc)


def always_happens_before(
    indices: Sequence[HBIndex],
    kind1: str,
    m1: MessageKey,
    kind2: str,
    m2: MessageKey,
) -> bool:
    """AHB(e1, e2): e1 -> e2 in *every* sampled execution (Definition 3,
    restricted to the sampled subset of E_A)."""
    if not indices:
        raise ValueError("need at least one execution")
    return all(ix.happens_before(kind1, m1, kind2, m2) for ix in indices)
