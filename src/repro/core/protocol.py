"""The SPBC protocol (Algorithm 1) as MPI runtime hooks.

Responsibilities, mapped to the paper:

* line 4      — per-channel seqnums (assigned by the runtime, read here);
* line 6      — sender-side logging of inter-cluster messages, *before*
  the re-send filter so suppressed re-sends are logged too;
* line 7      — suppression of re-sends already received (``seq <= LS``);
* line 11     — LR bookkeeping per incoming channel;
* lines 13-15 — coordinated checkpointing inside each cluster, saving
  (State, Logs) to stable storage;
* lines 16-20 — on restart, a Rollback carrying LR is sent on every
  known inter-cluster channel;
* lines 21-24 — peers answer lastMessage (their received high-water mark)
  and replay logged messages with ``seq > LR`` in sequence order;
* section 4.3 / 5.2.1 — matching is allowed only between message and
  request with equal ``(pattern_id, iteration_id)`` identifiers.

Implementation refinements beyond the paper's pseudocode (documented in
DESIGN.md section 4):

* a restarted rank *defers* inter-cluster sends on a channel until the
  peer's lastMessage (or Rollback, for concurrent failures) fixes LS;
* arrivals on inter-cluster channels pass a dedup/reorder gate keyed by
  seqnum, which makes recovery robust to duplicated or late copies;
* on receiving a Rollback, a live peer scrubs incomplete rendezvous
  state from the failed sender: the reply carries the *complete prefix*
  (highest seq below which everything was delivered or is fully held),
  messages above it are re-sent by the restarted rank and already-
  delivered ones are swallowed via a per-channel drop set.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple, Union

from repro.ckptdata.plane import CkptDataPlane
from repro.core.checkpoint import Checkpoint
from repro.core.mtbf import MTBFEstimator
from repro.storage.backend import InMemoryBackend, SaveReceipt, StorageBackend
from repro.storage.multilevel import optimal_interval_ns, optimal_interval_rounds
from repro.core.clusters import ClusterMap
from repro.core.logstore import LogRecord, LogStore
from repro.mpi import collectives as coll
from repro.mpi.constants import DEFAULT_IDENT
from repro.mpi.hooks import ProtocolHooks
from repro.mpi.message import ControlMsg, Envelope
from repro.mpi.request import RecvRequest
from repro.util.units import SEC, US

ChannelIn = Tuple[int, int]  # (comm_id, src world rank)
ChannelOut = Tuple[int, int]  # (comm_id, dst world rank)

ROLLBACK = "spbc.rollback"
LASTMESSAGE = "spbc.lastmessage"
PEER_HELLO = "spbc.peer_hello"
LOG_GC = "spbc.log_gc"

_DRAIN_RETRY_NS = 20 * US
_DRAIN_MAX_TRIES = 10_000


@dataclass(frozen=True)
class LogCostModel:
    """CPU cost of the protocol on the send path (what Table 2 measures).

    Defaults calibrated so 16-cluster runs land in the paper's
    0.07%-1.14% overhead band (Table 2): logging is an uncached copy into
    the log buffer plus allocator/bookkeeping work (~330 MB/s effective,
    consistent with the testbed's 2009-era Xeons), identifier stamping a
    few tens of ns on every send.
    """

    log_fixed_ns: int = 600
    log_ns_per_byte: float = 3.0
    ident_fixed_ns: int = 40

    def send_cost_ns(self, logged: bool, nbytes: int) -> int:
        if logged:
            return self.log_fixed_ns + int(nbytes * self.log_ns_per_byte)
        return self.ident_fixed_ns


@dataclass
class SPBCConfig:
    """Protocol parameters."""

    clusters: ClusterMap
    ident_matching: bool = True
    cost: LogCostModel = field(default_factory=LogCostModel)
    # Coordinated checkpoint every N maybe_checkpoint() calls (app
    # iterations); None disables checkpointing (the paper's benchmark
    # configuration: "none of our experiments include checkpointing").
    # "auto" derives the cadence per cluster from the Young/Daly optimal
    # interval over the storage backend's modeled write cost, the
    # configured MTBF, and the measured iteration time — it needs a
    # cost-modeled backend (TieredBackend/PartnerCopyBackend).
    checkpoint_every: Union[int, str, None] = None
    # Node MTBF driving the "auto" cadence (Young: sqrt(2*C*MTBF)).
    # "observed" estimates it per cluster from injected failures
    # (exponential smoothing over inter-failure gaps, see
    # repro.core.mtbf), starting from ``mtbf_prior_ns``.
    mtbf_ns: Union[int, str] = 60 * SEC
    # Starting estimate for mtbf_ns="observed" until the second failure
    # provides the first inter-failure gap.
    mtbf_prior_ns: int = 60 * SEC
    # Where checkpoints are persisted and what that costs.  The default
    # InMemoryBackend charges nothing (the paper's configuration); a
    # TieredBackend executes a multi-level plan and its write time is
    # charged to the simulation clock inside the coordinated checkpoint.
    storage: Optional[StorageBackend] = None
    # The incremental checkpoint data plane (repro.ckptdata): turns each
    # round into a full or delta payload with modeled compression, and
    # maintains per-rank delta chains.  None keeps the seed's
    # opaque-blob model bit-identical.
    ckpt_data: Optional[CkptDataPlane] = None
    # Modeled application-state bytes per rank, used when the app's
    # state_fn does not report an "nbytes" itself.  The experiment
    # harness derives this from the app's write-locality profile so no
    # registered app checkpoints zero bytes against a cost-modeled
    # backend.
    state_nbytes: int = 0
    # Cross-cluster staggering of shared-tier (PFS) rounds: cluster c
    # delays its durable write burst by c * pfs_stagger_ns, smoothing
    # the shared-bandwidth burst.  While staggered, the write cost is
    # charged at cluster-level concurrency (the offsets de-conflict the
    # clusters on the shared medium).  0 disables staggering.
    pfs_stagger_ns: int = 0
    # "known" sends Rollback only on channels with recorded traffic;
    # "all" broadcasts to every inter-cluster rank (safe for apps whose
    # communication graph changes between checkpoint and failure).
    rollback_scope: str = "known"
    # Emulated-recovery mode (paper section 6.4): ranks listed here are
    # re-executing a lost segment; their inter-cluster sends are skipped
    # unconditionally and nothing is logged.
    emulated_recovering: Optional[Set[int]] = None


class _InboundChannel:
    """Recovery-aware inbound state of one inter-cluster channel."""

    __slots__ = ("arrived", "pending_data", "drop_set", "buffer")

    def __init__(self) -> None:
        self.arrived = 0  # contiguous acceptance high-water mark
        self.pending_data: Set[int] = set()  # accepted RTS awaiting payload
        self.drop_set: Set[int] = set()  # re-sent copies to swallow
        self.buffer: Dict[int, Tuple[Envelope, Optional[int]]] = {}

    def complete_prefix(self, delivered_floor: int) -> int:
        """Highest seq h such that every message <= h is fully available
        here (delivered or held with payload)."""
        if self.pending_data:
            return min(self.pending_data) - 1
        return max(self.arrived, delivered_floor)


class _RankState:
    """Per-rank protocol state."""

    def __init__(self, rank: int, cluster: int) -> None:
        self.rank = rank
        self.cluster = cluster
        self.log = LogStore(rank)
        self.lr: Dict[ChannelIn, int] = {}  # delivered high-water (line 11)
        self.ls: Dict[ChannelOut, int] = {}  # re-send suppression bound
        self.inbound: Dict[ChannelIn, _InboundChannel] = {}
        self.gated: Set[ChannelOut] = set()  # defer sends until LS known
        self.recovering = False
        # Intra-cluster drain counters (per peer world rank, all comms).
        self.intra_sent: Dict[int, int] = {}
        self.intra_arrived: Dict[int, int] = {}
        self.ckpt_calls = 0
        self.calls_at_last_ckpt = 0  # dirty-region window anchor
        self.ckpt_round = 0
        self.gc_round_sent = 0  # latest round GC notices went out for
        self.rollbacks_handled = 0
        self.replayed_records = 0
        self.broadcast_rollback = False
        self.rollback_sent: Set[int] = set()  # peers already handshaked

    def chan_in(self, key: ChannelIn) -> _InboundChannel:
        ch = self.inbound.get(key)
        if ch is None:
            ch = self.inbound[key] = _InboundChannel()
        return ch


class _AutoCadence:
    """Young/Daly-driven checkpoint cadence, shared by a cluster's ranks.

    The interval is recomputed at every commit from cluster-consistent
    inputs: the first member to reach a due boundary stamps the epoch's
    end, the first member out of the closing barrier fixes the next
    epoch's interval from the measured iteration time and the receipt's
    write cost.  All members consult the same object, so every rank of a
    cluster agrees on which ``maybe_checkpoint`` call checkpoints — the
    coordinated barrier never splits.

    The first epoch runs with ``every=1``: the initial checkpoint is the
    calibration round that reveals the checkpoint size and write cost.
    """

    MAX_EVERY = 1_000_000

    def __init__(self, anchor_ns: int = 0) -> None:
        self.every = 1  # calibration round
        self.last_ckpt_call = 0
        self.anchor_ns = anchor_ns  # epoch start (app start / last commit)
        self.first_due_ns: Optional[int] = None
        self.iter_ns_est = 0.0
        self.ckpt_cost_ns = 0
        self.t_opt_ns = 0
        self.commits = 0

    def due(self, call_idx: int, now: int) -> bool:
        if call_idx - self.last_ckpt_call < self.every:
            return False
        if self.first_due_ns is None:
            self.first_due_ns = now  # first member at the due boundary
        return True

    def note_commit(
        self,
        call_idx: int,
        now: int,
        receipt: SaveReceipt,
        mtbf_ns: int,
        expected_cost_ns: Optional[int] = None,
    ) -> None:
        if call_idx == self.last_ckpt_call:
            return  # a later member of the same round; already applied
        iters = call_idx - self.last_ckpt_call
        busy = max(0, (self.first_due_ns or now) - self.anchor_ns)
        if busy > 0:
            self.iter_ns_est = busy / iters
        # Young's C: the committed round's write cost — or, when the
        # incremental data plane is on, the *expected* per-round cost
        # over a full/delta cycle (a full round's burst would otherwise
        # make the cadence pessimistic about every delta round).
        cost_ns = (
            expected_cost_ns
            if expected_cost_ns is not None and expected_cost_ns > 0
            else receipt.write_ns
        )
        self.ckpt_cost_ns = cost_ns
        if cost_ns <= 0:
            raise ValueError(
                "checkpoint_every='auto' needs a cost-modeled storage "
                "backend: this round's write cost was 0 ns, so Young's "
                "interval is undefined (use e.g. --storage tiered)"
            )
        self.t_opt_ns = optimal_interval_ns(cost_ns, mtbf_ns)
        if self.iter_ns_est > 0:
            self.every = optimal_interval_rounds(
                cost_ns, mtbf_ns, self.iter_ns_est, self.MAX_EVERY
            )
        self.last_ckpt_call = call_idx
        self.anchor_ns = now
        self.first_due_ns = None
        self.commits += 1


def _match_anything(req: RecvRequest, env: Envelope) -> bool:
    """match_allowed stand-in when identifier matching is disabled."""
    return True


class SPBC(ProtocolHooks):
    """Scalable Pattern-Based Checkpointing."""

    def __init__(self, config: SPBCConfig) -> None:
        self.config = config
        self.clusters = config.clusters
        # Send-path caches: the per-message hooks resolve cluster
        # membership with two list indexings instead of going through the
        # ClusterMap methods, and the cost model's bound method is
        # pre-resolved (profiled hot on every Tier-1 workload).
        self._cluster_of: List[int] = list(config.clusters.cluster_of)
        self._send_cost_ns = config.cost.send_cost_ns
        # Flattened cost-model constants for the fused send hook.
        self._ident_cost_ns = config.cost.ident_fixed_ns
        self._log_fixed_ns = config.cost.log_fixed_ns
        self._log_ns_per_byte = config.cost.log_ns_per_byte
        if not config.ident_matching:
            # Shadow the method with a module-level predicate: the
            # matching engine binds match_allowed once per runtime, and
            # the config test per match was measurable.
            self.match_allowed = _match_anything
        if type(self) is SPBC:
            self.on_send_with_cost = self._on_send_with_cost_fused
        self.state: Dict[int, _RankState] = {}
        # Journal event sink (anything with .emit(kind, t, **fields));
        # installed by the runners when a run is being recorded.
        self.journal = None
        self._world = None
        self._cluster_comms: Dict[int, Any] = {}
        self.storage: StorageBackend = config.storage or InMemoryBackend()
        self._emulated = config.emulated_recovering
        self._cadences: Dict[int, _AutoCadence] = {}  # cluster -> cadence
        self._plane: Optional[CkptDataPlane] = config.ckpt_data
        self._mtbf_estimators: Dict[int, MTBFEstimator] = {}
        self._warned_zero_bytes = False
        # (start_ns, end_ns, cluster) of every shared-tier write burst —
        # the staggering test measures peak concurrent PFS writers here.
        # Async-flush backends record their bursts as *measured* flow
        # windows instead (merged in peak_concurrent_pfs_writers).
        self.pfs_write_windows: List[Tuple[int, int, int]] = []
        # Time each rank spent stalled inside coordinated checkpoints
        # (barriers + drain + compression + the charged write burst) —
        # what async flushing is meant to shrink (ioverlap experiment).
        self.ckpt_stall_ns: Dict[int, int] = {}
        self._validate_config(config)

    def _validate_config(self, config: SPBCConfig) -> None:
        if isinstance(config.mtbf_ns, str) and config.mtbf_ns != "observed":
            raise ValueError(
                f"mtbf_ns accepts a positive integer or 'observed', got "
                f"{config.mtbf_ns!r}"
            )
        if config.mtbf_prior_ns <= 0:
            raise ValueError(
                f"mtbf_prior_ns must be positive, got {config.mtbf_prior_ns}"
            )
        if config.pfs_stagger_ns < 0:
            raise ValueError(
                f"pfs_stagger_ns must be >= 0, got {config.pfs_stagger_ns}"
            )
        if config.state_nbytes < 0:
            raise ValueError(
                f"state_nbytes must be >= 0, got {config.state_nbytes}"
            )
        self._validate_checkpoint_every(config)

    def _validate_checkpoint_every(self, config: SPBCConfig) -> None:
        every = config.checkpoint_every
        if every is None:
            return
        if isinstance(every, str):
            if every != "auto":
                raise ValueError(
                    f"checkpoint_every accepts an int, None, or 'auto', "
                    f"got {every!r}"
                )
            if isinstance(self.storage, InMemoryBackend):
                raise ValueError(
                    "checkpoint_every='auto' needs a cost-modeled storage "
                    "backend (e.g. --storage tiered): the free in-memory "
                    "store has no write cost to optimize against"
                )
            if not isinstance(config.mtbf_ns, str) and config.mtbf_ns <= 0:
                raise ValueError(
                    f"checkpoint_every='auto' needs a positive MTBF, got "
                    f"mtbf_ns={config.mtbf_ns}"
                )
        elif every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 (or None/'auto'), got {every}"
            )

    # -- MTBF: configured constant or observed online ------------------
    def _mtbf_for(self, cluster: int) -> int:
        """MTBF the cluster's cadence optimizes against."""
        if self.config.mtbf_ns == "observed":
            est = self._mtbf_estimators.get(cluster)
            return est.mtbf_ns() if est is not None else self.config.mtbf_prior_ns
        return self.config.mtbf_ns

    def note_failure_observed(self, clusters, now_ns: int) -> None:
        """Record an injected failure for per-cluster MTBF estimation
        (called by the RecoveryManager for every affected cluster)."""
        for c in clusters:
            est = self._mtbf_estimators.get(c)
            if est is None:
                est = self._mtbf_estimators[c] = MTBFEstimator(
                    prior_ns=self.config.mtbf_prior_ns
                )
            est.note_failure(now_ns)

    def mtbf_report(self) -> Dict[int, dict]:
        """Per-cluster view of the observed-MTBF estimators."""
        return {
            c: {
                "mtbf_ns": est.mtbf_ns(),
                "samples": est.samples,
                "observed": est.observed,
            }
            for c, est in sorted(self._mtbf_estimators.items())
        }

    # ------------------------------------------------------------------
    def attach(self, runtime) -> None:
        # Identifier stamping happens inline in the runtime's send/recv
        # hot path, gated by this capability flag (a per-message hook
        # dispatch was pure overhead — the ident is always just the
        # runtime's active_ident).
        runtime.stamp_idents = self.config.ident_matching
        if self._world is None:
            self._world = runtime.world
            if self.clusters.nranks != runtime.world.nranks:
                raise ValueError(
                    f"cluster map covers {self.clusters.nranks} ranks but the "
                    f"world has {runtime.world.nranks}"
                )
            # Partner copies and per-node blast radii need placement.
            self.storage.bind_topology(runtime.world.topology)
            # Async flushes, partner rebuilds, and flow-based restart
            # reads run on the engine clock via the I/O scheduler.
            self.storage.bind_engine(runtime.engine)
        st = _RankState(runtime.rank, self.clusters.cluster(runtime.rank))
        self.state[runtime.rank] = st
        runtime.spbc_state = st

    def _cluster_comm(self, cluster: int):
        comm = self._cluster_comms.get(cluster)
        if comm is None:
            comm = self._world.comms.create(
                self.clusters.members(cluster), name=f"spbc.cluster{cluster}"
            )
            self._cluster_comms[cluster] = comm
        return comm

    # ------------------------------------------------------------------
    # Identifier stamping and matching (sections 4.3, 5.2.1)
    # ------------------------------------------------------------------
    def message_ident(self, runtime) -> Tuple[int, int]:
        if not self.config.ident_matching:
            return DEFAULT_IDENT
        return runtime.active_ident

    def request_ident(self, runtime) -> Tuple[int, int]:
        if not self.config.ident_matching:
            return DEFAULT_IDENT
        return runtime.active_ident

    def match_allowed(self, req: RecvRequest, env: Envelope) -> bool:
        # ident_matching=False installs _match_anything in __init__, so
        # this body only ever runs with identifier matching on.
        return req.ident == env.ident

    # ------------------------------------------------------------------
    # Send path (Algorithm 1 lines 3-9)
    # ------------------------------------------------------------------
    def _log_and_filter(self, runtime, st: _RankState, env: Envelope):
        """Inter-cluster send path: log (line 6) + re-send filter (line 7)."""
        # Line 6: log before the re-send filter, exactly once per message.
        if env.seqnum > st.log.last_seq(env.comm_id, env.dst):
            st.log.append(
                LogRecord(
                    comm_id=env.comm_id,
                    dst=env.dst,
                    seqnum=env.seqnum,
                    tag=env.tag,
                    nbytes=env.nbytes,
                    ident=env.ident,
                    payload=env.payload,
                    send_time_ns=runtime.engine.now,
                )
            )
        if st.recovering:
            out_key = (env.comm_id, env.dst)
            if out_key in st.gated:
                return "defer"
            if env.seqnum <= st.ls.get(out_key, 0):
                return False  # line 7: destination already received it
        return True

    def on_send(self, runtime, env: Envelope):
        st = runtime.spbc_state
        cluster_of = self._cluster_of
        if cluster_of[env.src] == cluster_of[env.dst]:
            dst = env.dst
            intra = st.intra_sent
            intra[dst] = intra.get(dst, 0) + 1
            return True
        if self._emulated is not None and env.src in self._emulated:
            # Paper section 6.4 emulated recovery: the destination already
            # holds every inter-cluster message; skip them all.
            return False
        return self._log_and_filter(runtime, st, env)

    def _on_send_with_cost_fused(self, runtime, env: Envelope):
        """Fused decision+cost send hook (one dispatch, one cluster
        resolution per send).  Installed per-instance in __init__ only
        for plain SPBC: subclasses overriding on_send /
        send_overhead_ns keep the composing base-class
        on_send_with_cost, so their overrides stay in effect."""
        st = runtime.spbc_state
        cluster_of = self._cluster_of
        if cluster_of[env.src] == cluster_of[env.dst]:
            dst = env.dst
            intra = st.intra_sent
            intra[dst] = intra.get(dst, 0) + 1
            if self._emulated is not None:
                return True, 0
            return True, self._ident_cost_ns
        if self._emulated is not None:
            if env.src in self._emulated:
                return False, 0
            return self._log_and_filter(runtime, st, env), 0
        return (
            self._log_and_filter(runtime, st, env),
            self._log_fixed_ns + int(env.nbytes * self._log_ns_per_byte),
        )

    def send_overhead_ns(self, runtime, env: Envelope) -> int:
        if self._emulated is not None:
            return 0
        cluster_of = self._cluster_of
        return self._send_cost_ns(
            cluster_of[env.src] != cluster_of[env.dst], env.nbytes
        )

    # ------------------------------------------------------------------
    # Receive path (Algorithm 1 lines 10-12 + recovery dedup/reorder)
    # ------------------------------------------------------------------
    def on_arrival(self, runtime, env: Envelope, rvz_send_req_id=None) -> bool:
        st = runtime.spbc_state
        cluster_of = self._cluster_of
        if cluster_of[env.src] == cluster_of[env.dst]:
            src = env.src
            intra = st.intra_arrived
            intra[src] = intra.get(src, 0) + 1
            return True
        key = (env.comm_id, env.src)
        ch = st.chan_in(key)
        s = env.seqnum
        if s <= ch.arrived:
            return False  # duplicate (late live copy or redundant replay)
        if s == ch.arrived + 1:
            ch.arrived = s
            accept = True
            if s in ch.drop_set:
                ch.drop_set.discard(s)
                accept = False  # re-sent copy of an already-delivered message
            elif rvz_send_req_id is not None:
                ch.pending_data.add(s)
            if ch.buffer:
                runtime.engine.schedule(
                    0, self._drain_buffer, runtime, key, runtime.incarnation
                )
            return accept
        # Gap: hold until the missing seqnums are replayed.
        if s not in ch.buffer:
            ch.buffer[s] = (env, rvz_send_req_id)
        return False

    def _drain_buffer(self, runtime, key: ChannelIn, inc: int) -> None:
        if inc != runtime.incarnation or not runtime.alive:
            return
        st = self.state[runtime.rank]
        ch = st.chan_in(key)
        for stale in [s for s in ch.buffer if s <= ch.arrived]:
            del ch.buffer[stale]
        while (ch.arrived + 1) in ch.buffer:
            s = ch.arrived + 1
            env, rvz_id = ch.buffer.pop(s)
            ch.arrived = s
            if s in ch.drop_set:
                ch.drop_set.discard(s)
                continue
            if rvz_id is not None:
                ch.pending_data.add(s)
            runtime.accept_arrival(env, rvz_send_req_id=rvz_id)

    def on_deliver(self, runtime, env: Envelope) -> None:
        cluster_of = self._cluster_of
        if cluster_of[env.src] == cluster_of[env.dst]:
            return
        st = runtime.spbc_state
        key = (env.comm_id, env.src)
        st.lr[key] = max(st.lr.get(key, 0), env.seqnum)  # line 11
        ch = st.inbound.get(key)
        if ch is not None:
            ch.pending_data.discard(env.seqnum)

    # ------------------------------------------------------------------
    # Coordinated checkpointing inside a cluster (lines 13-15)
    # ------------------------------------------------------------------
    def _cadence(self, cluster: int) -> _AutoCadence:
        cad = self._cadences.get(cluster)
        if cad is None:
            cad = self._cadences[cluster] = _AutoCadence()
        return cad

    def checkpoint_noop(self, runtime) -> bool:
        """Per-iteration fast path: advance the call counter and decide —
        without any generator machinery — whether this call checkpoints.
        The runtime guarantees exactly one call per application
        ``maybe_checkpoint``, immediately before the (possibly skipped)
        generator entry point below."""
        st = runtime.spbc_state
        st.ckpt_calls += 1
        every = self.config.checkpoint_every
        if every is None:
            return True
        if every == "auto":
            cad = self._cadence(st.cluster)
            return not cad.due(st.ckpt_calls, runtime.engine.now)
        return st.ckpt_calls % every != 0

    def maybe_checkpoint(self, runtime, state_fn: Callable[[], dict]) -> Generator:
        # Only reached when checkpoint_noop() returned False: this call
        # is a due checkpoint round.
        st = self.state[runtime.rank]
        if self.config.checkpoint_every == "auto":
            cad = self._cadence(st.cluster)
            receipt = yield from self._coordinated_checkpoint(runtime, state_fn)
            cad.note_commit(
                st.ckpt_calls,
                runtime.engine.now,
                receipt,
                self._mtbf_for(st.cluster),
                expected_cost_ns=self._expected_write_cost_ns(cad, st.cluster),
            )
            return st.ckpt_round
        yield from self._coordinated_checkpoint(runtime, state_fn)
        return st.ckpt_round

    def _expected_write_cost_ns(
        self, cad: _AutoCadence, cluster: int
    ) -> Optional[int]:
        """Expected per-round write cost under the data plane's
        full/delta cycle (None without a plane: the cadence falls back
        to the committed round's actual cost)."""
        if self._plane is None:
            return None
        full_period = None
        if self._plane.full_on_durable:
            # The plan's durable rounds force fulls too: the effective
            # full period is whichever comes more often.
            durable_period = self.storage.durable_round_period()
            if durable_period is not None:
                full_period = min(self._plane.full_period, durable_period)
        exp_bytes = self._plane.expected_stored_bytes(
            iters_per_round=max(1, cad.every), full_period=full_period
        )
        # Price the expectation at the same concurrency the charged
        # costs use: staggered shared rounds run at cluster-level
        # concurrency, unstaggered ones contend with the whole world.
        writers = (
            len(self.clusters.members(cluster))
            if self.config.pfs_stagger_ns > 0
            else self._world.nranks
        )
        cost = self.storage.amortized_write_cost_ns(
            exp_bytes, concurrent_writers=writers
        )
        return cost if cost > 0 else None

    def _coordinated_checkpoint(self, runtime, state_fn) -> Generator:
        """Blocking coordinated checkpoint of this rank's cluster.

        Contract: the application calls maybe_checkpoint only when all its
        own requests are complete (the natural state at an iteration
        boundary).  Under that contract no intra-cluster rendezvous is
        pending; only eager messages can still be in flight, and the drain
        loop below waits them out, so the saved cut has empty intra-cluster
        channels.
        """
        st = self.state[runtime.rank]
        stall_from_ns = runtime.engine.now
        ccomm = self._cluster_comm(st.cluster)
        yield from coll.barrier(runtime, ccomm)

        members = set(self.clusters.members(st.cluster))
        for attempt in range(_DRAIN_MAX_TRIES):
            mine = (
                {d: n for d, n in st.intra_sent.items() if d in members},
                {s: n for s, n in st.intra_arrived.items() if s in members},
            )
            counters = yield from coll.allgather(runtime, ccomm, mine, nbytes=64)
            if self._drained(ccomm, counters):
                break
            yield from runtime.compute(_DRAIN_RETRY_NS)
        else:  # pragma: no cover - indicates a misplaced checkpoint call
            raise RuntimeError(
                f"cluster {st.cluster}: intra-cluster channels failed to "
                "drain; maybe_checkpoint called at a non-quiescent point?"
            )

        st.ckpt_round += 1
        async_mode = getattr(self.storage, "flows_active", False)
        # Cross-cluster staggering of shared-tier rounds: cluster c
        # starts its durable burst c * pfs_stagger_ns later, so the
        # shared medium sees the clusters one after another instead of
        # all at once.  The write cost is then charged at cluster-level
        # concurrency — the offsets de-conflict the clusters.  Under
        # async flush the offset delays the background *flow* instead of
        # stalling the rank, and no concurrency has to be assumed at
        # all: the flows share the PFS bandwidth for real.
        shared_round = self.storage.shared_tier_scheduled(st.ckpt_round)
        writers = self._world.nranks
        flush_delay_ns = 0
        if shared_round and self.config.pfs_stagger_ns > 0:
            writers = len(members)
            offset = st.cluster * self.config.pfs_stagger_ns
            if async_mode:
                flush_delay_ns = offset
            elif offset > 0:
                yield from runtime.compute(offset)
        ckpt = self._build_checkpoint(runtime, st, state_fn())
        if ckpt.payload is not None and ckpt.payload.compress_ns > 0:
            # The data plane's compression stage runs on the CPU before
            # any bytes move toward storage.
            yield from runtime.compute(ckpt.payload.compress_ns)
        write_start_ns = runtime.engine.now
        write_ns = self.storage.write_cost_ns(ckpt, concurrent_writers=writers)
        if write_ns > 0:
            # Charge the storage backend's modeled write time to the
            # simulation clock (every cluster checkpoints on the same
            # cadence, so the whole world contends for shared tiers).
            # Under async flush this is the *local* tiers only — the
            # shared tier drains in the background.
            yield from runtime.compute(write_ns)
        write_end_ns = runtime.engine.now
        if shared_round and write_ns > 0 and not async_mode:
            # Within the burst the local tiers are modeled first, so the
            # shared-tier (PFS) phase is the tail — record only it: the
            # peak-writers measurement must not count a rank as a PFS
            # writer while it is still writing its local SSD.  (Async
            # bursts are measured from the actual flow timeline instead:
            # see StorageBackend.shared_flow_windows.)
            shared_ns = self.storage.shared_write_cost_ns(
                ckpt, concurrent_writers=writers
            )
            end_ns = runtime.engine.now
            self.pfs_write_windows.append(
                (max(write_start_ns, end_ns - shared_ns), end_ns, st.cluster)
            )
        # Commit only after the write time has elapsed: a failure during
        # the write burst must fall back to the previous round, not find
        # a copy whose write never finished.  An async round's PFS copy
        # is launched here as a background flow and becomes restorable
        # only when it lands.
        if async_mode:
            receipt = self.storage.save(
                ckpt,
                concurrent_writers=writers,
                flush_delay_ns=flush_delay_ns,
            )
        else:
            receipt = self.storage.save(ckpt, concurrent_writers=writers)
        if self.journal is not None:
            # The committed-checkpoint observable: keyed by the cut's
            # taken_at time (the commit-history invariant's timestamp),
            # not the save instant, so canonical order is engine-free.
            self.journal.emit(
                "commit",
                t=ckpt.taken_at_ns,
                rank=runtime.rank,
                round=st.ckpt_round,
                nbytes=ckpt.nbytes,
                durable=bool(receipt.durable),
                committed_at_ns=runtime.engine.now,
            )
        if receipt.durable:
            # The commit reached a tier that survives node failure: the
            # snapshot now covers every resident record, so the sender's
            # log memory can be freed (bounded log residency).  Replay
            # still reaches the records via include_stable=True.
            st.log.truncate()
        yield from coll.barrier(runtime, ccomm)
        if self.storage.guaranteed_round(runtime.rank) >= st.ckpt_round:
            # Receiver-driven log GC: the backend certifies this round
            # can never be rolled back past (guaranteed_round), and the
            # closing barrier proves every member of this cluster
            # committed it — so our restart floor can never again drop
            # below this round's LR and senders may delete the records
            # it covers.  Announcing *before* the barrier would be
            # unsound: a failure between one member's save and another's
            # restarts the cluster from the previous round, whose LR the
            # senders' logs must still serve.
            st.gc_round_sent = st.ckpt_round
            self._send_gc_notices(runtime, st, ckpt)
        elif async_mode:
            self._deferred_gc(runtime, st, members)
        self.ckpt_stall_ns[runtime.rank] = (
            self.ckpt_stall_ns.get(runtime.rank, 0)
            + (runtime.engine.now - stall_from_ns)
        )
        tele = runtime.engine.telemetry
        if tele.enabled:
            tele.rank_span(
                "checkpoint",
                runtime.rank,
                stall_from_ns,
                runtime.engine.now,
                args={
                    "round": st.ckpt_round,
                    "nbytes": ckpt.nbytes,
                    "durable": bool(receipt.durable),
                },
            )
            if write_end_ns > write_start_ns:
                tele.rank_span(
                    "ckpt-write",
                    runtime.rank,
                    write_start_ns,
                    write_end_ns,
                    args={"round": st.ckpt_round},
                )
            tele.inc("spbc.commits")
            tele.inc("spbc.ckpt_bytes", ckpt.nbytes)
        return receipt

    def _deferred_gc(self, runtime, st: _RankState, members) -> None:
        """Async-flush GC: a round earns credit only once its background
        PFS flow lands, so durability arrives *between* barriers.  At
        the next commit barrier, the latest round whose chain has
        durably landed at **every** member (a per-rank guaranteed round
        is not cluster-consistent while flushes drain at different
        speeds) is announced to the senders, and the resident log is
        folded into the stable area (its snapshot rides in every later
        checkpoint, so replayability is preserved)."""
        # Own rank first: the cluster minimum can't exceed it, so this
        # skips the k-1 peer chain walks whenever our own latest drain
        # hasn't advanced past the last notice (the common case).
        if self.storage.guaranteed_round(runtime.rank) <= st.gc_round_sent:
            return
        g = min(self.storage.guaranteed_round(m) for m in members)
        if g <= st.gc_round_sent or g < 1:
            return
        drained = self.storage.load_round(runtime.rank, g)
        if drained is None:  # pragma: no cover - defensive
            return
        st.gc_round_sent = g
        st.log.truncate()
        self._send_gc_notices(runtime, st, drained)

    def _send_gc_notices(self, runtime, st: _RankState, ckpt: Checkpoint) -> None:
        by_peer: Dict[int, Dict[int, int]] = {}
        for (cid, src), lr_val in ckpt.lr.items():
            if lr_val > 0 and self.clusters.is_intercluster(runtime.rank, src):
                by_peer.setdefault(src, {})[cid] = lr_val
        for peer, lr_map in sorted(by_peer.items()):
            runtime.control_send(peer, LOG_GC, {"lr": lr_map}, nbytes=32)
        if self.journal is not None and by_peer:
            self.journal.emit(
                "gc",
                t=runtime.engine.now,
                rank=runtime.rank,
                round=st.gc_round_sent,
                peers=len(by_peer),
            )
        if by_peer:
            tele = runtime.engine.telemetry
            if tele.enabled:
                tele.inc("spbc.gc_notices", len(by_peer))
                tele.rank_instant(
                    "gc",
                    runtime.rank,
                    runtime.engine.now,
                    args={"round": st.gc_round_sent},
                )

    @staticmethod
    def _drained(ccomm, counters) -> bool:
        """True when, for every ordered intra-cluster pair, the sender's
        count equals the receiver's arrival count."""
        sent_of = {ccomm.world_rank(i): c[0] for i, c in enumerate(counters)}
        arr_of = {ccomm.world_rank(i): c[1] for i, c in enumerate(counters)}
        for a, sends in sent_of.items():
            for b, n in sends.items():
                if arr_of[b].get(a, 0) != n:
                    return False
        return True

    def _build_checkpoint(
        self, runtime, st: _RankState, app_state: dict
    ) -> Checkpoint:
        # Snapshot the unexpected queue: intra-cluster envelopes are part
        # of the library state; inter-cluster ones are *excluded* — after
        # a rollback they come back through log replay (their seqnums are
        # above the LR we save).  Only eager envelopes can be here under
        # the quiescence contract.
        unexpected = []
        inter_held: Dict[ChannelIn, List[int]] = {}
        for env in runtime.matching.unexpected:
            if self.clusters.is_intercluster(env.src, env.dst):
                inter_held.setdefault((env.comm_id, env.src), []).append(env.seqnum)
            else:
                unexpected.append(env)
        # Saved arrival marks: delivered LR plus contiguous held prefix.
        arrived_snapshot: Dict[ChannelIn, int] = {}
        for key, ch in st.inbound.items():
            base = st.lr.get(key, 0)
            held = sorted(inter_held.get(key, []))
            mark = base
            for s in held:
                if s == mark + 1:
                    mark = s
                else:
                    break
            arrived_snapshot[key] = mark
        # Keep the held inter-cluster envelopes that the arrival mark
        # covers (contiguous ones) — consistent with the saved counters.
        for env in runtime.matching.unexpected:
            key = (env.comm_id, env.src)
            if (
                self.clusters.is_intercluster(env.src, env.dst)
                and env.seqnum <= arrived_snapshot.get(key, 0)
            ):
                unexpected.append(env)

        # Checkpoint size: application state plus the log records not yet
        # carried by an earlier commit (resident bytes — an incremental-
        # log model: each record is charged to exactly one checkpoint
        # write, the first one after it was logged or restored).  Apps
        # that don't report "nbytes" fall back to the harness-derived
        # config.state_nbytes (the write-locality profile's full size).
        state_bytes = app_state.get("nbytes", 0) or self.config.state_nbytes
        log_bytes = st.log.resident_bytes
        payload = None
        if self._plane is not None:
            payload = self._plane.build_payload(
                runtime.rank,
                st.ckpt_round,
                iters_since_prev=max(1, st.ckpt_calls - st.calls_at_last_ckpt),
                log_bytes=log_bytes,
                durable_round=self.storage.durable_tier_scheduled(st.ckpt_round),
                state_bytes=state_bytes or None,
            )
            nbytes = payload.full_bytes + log_bytes
        else:
            nbytes = state_bytes + log_bytes
        st.calls_at_last_ckpt = st.ckpt_calls
        if (
            nbytes == 0
            and not self._warned_zero_bytes
            and not isinstance(self.storage, InMemoryBackend)
        ):
            # A cost-modeled backend charging for zero bytes silently
            # models free checkpoints — almost always a harness bug
            # (an app registered without a payload size).
            self._warned_zero_bytes = True
            warnings.warn(
                f"rank {runtime.rank} committed a zero-byte checkpoint "
                f"(round {st.ckpt_round}) against a cost-modeled storage "
                "backend; set SPBCConfig.state_nbytes or give the app a "
                "write-locality profile so write costs are not modeled "
                "as free",
                RuntimeWarning,
                stacklevel=2,
            )
        ckpt = Checkpoint(
            rank=runtime.rank,
            round_no=st.ckpt_round,
            taken_at_ns=runtime.engine.now,
            app_state=app_state,
            chan_seq=dict(runtime.chan_seq),
            lr=dict(st.lr),
            arrived=arrived_snapshot,
            ls=dict(st.ls),
            pattern_state=runtime.pattern_state(),
            unexpected=list(unexpected),
            log_snapshot=st.log.snapshot(),
            coll_seq=dict(runtime._coll_seq),
            nbytes=nbytes,
            payload=payload,
        )
        return ckpt

    # ------------------------------------------------------------------
    # Restart side (lines 16-20) — called by the RecoveryManager
    # ------------------------------------------------------------------
    def restore_rank(self, runtime, ckpt: Checkpoint, broadcast: bool = False) -> None:
        """Reset a restarted rank's library + protocol state from its
        checkpoint.  The caller has already called ``runtime.restart()``.

        ``broadcast`` forces Rollback announcements to every inter-cluster
        rank — required when restarting from the initial state (a fresh
        state knows no channels yet) and available via
        ``rollback_scope="all"`` for apps whose communication graph grows
        between checkpoint and failure."""
        prev = self.state.get(runtime.rank)
        st = _RankState(runtime.rank, self.clusters.cluster(runtime.rank))
        self.state[runtime.rank] = st
        runtime.spbc_state = st
        st.recovering = True
        # Rounds above the restore point are being re-executed: a stale
        # background flush still draining one of them must never land
        # (it would register a dead incarnation's cut as restorable).
        self.storage.cancel_inflight_above(runtime.rank, ckpt.round_no)
        if prev is not None:
            # Receiver-certified GC floors are facts about the peers'
            # restart guarantees, not about this incarnation: keep them,
            # so restore() re-collects snapshot records below them.
            st.log.inherit_floors(prev.log)
        # A restarted cluster recalibrates its auto cadence: its call
        # counter restarts at 0, and the epoch anchor must be "now" or
        # the first post-restart interval estimate would span the crash.
        if self.config.checkpoint_every == "auto":
            self._cadences[st.cluster] = _AutoCadence(
                anchor_ns=runtime.engine.now
            )
        st.broadcast_rollback = broadcast or self.config.rollback_scope == "all"
        runtime.chan_seq = dict(ckpt.chan_seq)
        runtime._coll_seq = dict(ckpt.coll_seq)
        runtime.restore_pattern_state(ckpt.pattern_state)
        st.lr = dict(ckpt.lr)
        st.ls = dict(ckpt.ls)
        st.log.restore(ckpt.log_snapshot)
        st.ckpt_round = ckpt.round_no
        st.ckpt_calls = 0
        st.calls_at_last_ckpt = 0
        if self._plane is not None:
            # A delta must never span a rollback: the base the
            # re-execution would diff against was never committed.
            self._plane.note_restore(runtime.rank, ckpt.round_no)
        for key, mark in ckpt.arrived.items():
            st.chan_in(key).arrived = mark
        for env in ckpt.unexpected:
            runtime.matching.unexpected.append(env)
        # Gate every known inter-cluster outgoing channel until the peer
        # tells us (lastMessage/Rollback) what it already received.
        for key in self._known_out_channels(runtime, st):
            st.gated.add(key)

    def _known_out_channels(self, runtime, st: _RankState) -> Set[ChannelOut]:
        if self.config.rollback_scope == "all" or st.broadcast_rollback:
            out: Set[ChannelOut] = set()
            wcid = self._world.comm_world.comm_id
            for r in range(self._world.nranks):
                if self.clusters.is_intercluster(runtime.rank, r):
                    out.add((wcid, r))
            return out
        keys = set(runtime.chan_seq) | st.log.channel_keys() | set(st.ls)
        return {
            (cid, dst)
            for cid, dst in keys
            if self.clusters.is_intercluster(runtime.rank, dst)
        }

    def send_rollbacks(self, runtime) -> None:
        """Announce the rollback on every known inter-cluster channel
        (line 20), carrying our restored LR per incoming channel."""
        st = self.state[runtime.rank]
        peers: Set[int] = {dst for _cid, dst in st.gated}
        for cid, src in list(st.lr) + list(st.inbound):
            if self.clusters.is_intercluster(runtime.rank, src):
                peers.add(src)
        if st.broadcast_rollback:
            peers |= {
                r
                for r in range(self._world.nranks)
                if self.clusters.is_intercluster(runtime.rank, r)
            }
        for peer in sorted(peers):
            self._send_rollback_to(runtime, st, peer)
        st.rollbacks_handled += 1

    def _send_rollback_to(self, runtime, st: _RankState, peer: int) -> None:
        if peer in st.rollback_sent:
            return
        st.rollback_sent.add(peer)
        lr_map = {
            cid: st.lr.get((cid, peer), 0)
            for cid in self._comm_ids_with(st, peer)
        }
        runtime.control_send(peer, ROLLBACK, {"lr": lr_map}, nbytes=64)

    def notify_failure(self, runtime, failed_ranks: Set[int]) -> None:
        """Failure notification at a surviving rank (paper line 16:
        'Upon failure of process Pj' reaches every process).

        A survivor may know channels to the failed cluster that the
        restarted rank's checkpoint predates (e.g. the restarted side
        only ever *received* on them).  Pinging the restarted members
        makes them extend their Rollback handshake to this survivor, so
        the survivor's log replay is never skipped."""
        st = self.state[runtime.rank]
        known: Set[int] = set()
        for cid, peer in list(st.lr) + list(st.inbound) + list(
            st.log.channel_keys()
        ) + list(runtime.chan_seq):
            if peer in failed_ranks:
                known.add(peer)
        for peer in sorted(known):
            runtime.control_send(peer, PEER_HELLO, {}, nbytes=16)

    def _comm_ids_with(self, st: _RankState, peer: int) -> Set[int]:
        cids = {cid for cid, p in st.lr if p == peer}
        cids |= {cid for cid, p in st.inbound if p == peer}
        cids |= {cid for cid, p in st.log.channel_keys() if p == peer}
        cids |= {cid for cid, p in st.ls if p == peer}
        cids |= {cid for cid, p in st.gated if p == peer}
        cids.add(self._world.comm_world.comm_id)
        return cids

    @staticmethod
    def _record_to_env(rec: LogRecord, src: int, dst: int) -> Envelope:
        return Envelope(
            src=src,
            dst=dst,
            tag=rec.tag,
            comm_id=rec.comm_id,
            seqnum=rec.seqnum,
            nbytes=rec.nbytes,
            payload=rec.payload,
            ident=rec.ident,
        )

    # ------------------------------------------------------------------
    # Peer side (lines 21-24) + lastMessage handling on the restarted side
    # ------------------------------------------------------------------
    def on_control(self, runtime, msg: ControlMsg) -> None:
        if msg.kind == ROLLBACK:
            self._handle_rollback(runtime, msg.src, msg.data["lr"])
        elif msg.kind == LASTMESSAGE:
            self._handle_lastmessage(runtime, msg.src, msg.data["received"])
        elif msg.kind == PEER_HELLO:
            st = self.state[runtime.rank]
            if st.recovering:
                self._send_rollback_to(runtime, st, msg.src)
        elif msg.kind == LOG_GC:
            # The peer durably checkpointed its deliveries on these
            # channels: records at or below its LR can never be replayed
            # to it again — free them from both log areas.
            st = self.state[runtime.rank]
            for cid, lr_val in msg.data["lr"].items():
                st.log.collect(cid, msg.src, lr_val)

    def _handle_rollback(self, runtime, peer: int, peer_lr: Dict[int, int]) -> None:
        st = self.state[runtime.rank]
        st.rollbacks_handled += 1

        # 1. Scrub state tied to the peer's dead incarnation: inbound
        #    dedup/reorder (computing the complete prefix we can honestly
        #    acknowledge) and our own rendezvous sends stuck waiting for a
        #    CTS that will never come (replay carries their payload).
        received: Dict[int, int] = {}
        for cid in self._comm_ids_with(st, peer) | set(peer_lr):
            key = (cid, peer)
            prefix = self._scrub_inbound(runtime, key)
            received[cid] = prefix
            runtime.cancel_pending_rvz_to(peer, cid)

        # 2. Reply lastMessage (line 22).
        runtime.control_send(peer, LASTMESSAGE, {"received": received}, nbytes=64)

        # 3. Replay logged messages the peer is missing (lines 23-24),
        #    in sequence-number order, independently per channel.
        for cid, lr_val in peer_lr.items():
            for rec in st.log.replay_after(cid, peer, lr_val, include_stable=True):
                runtime.isend_raw(self._record_to_env(rec, runtime.rank, peer))
                st.replayed_records += 1

        # 4. Concurrent failure: if we are recovering too, the peer's
        #    Rollback doubles as its lastMessage for our direction.
        if st.recovering:
            for cid, lr_val in peer_lr.items():
                self._fix_ls(runtime, st, (cid, peer), lr_val)

    def _scrub_inbound(self, runtime, key: ChannelIn) -> int:
        """Reset one inbound channel around the sender's restart; returns
        the complete prefix to acknowledge."""
        st = self.state[runtime.rank]
        ch = st.chan_in(key)
        cid, peer = key
        delivered_floor = st.lr.get(key, 0)
        prefix = ch.complete_prefix(delivered_floor)

        # Drop incomplete/held state above the prefix; the restarted peer
        # re-sends all of it (seq > prefix).
        removed = runtime.scrub_peer_rendezvous(peer, cid)
        held: Set[int] = set()
        kept = []
        for env in runtime.matching.unexpected:
            if env.src == peer and env.comm_id == cid and env.seqnum > prefix:
                held.add(env.seqnum)
            else:
                kept.append(env)
        runtime.matching.unexpected[:] = kept

        # Messages delivered above the prefix will be re-sent: swallow them.
        drop = set()
        for s in range(prefix + 1, ch.arrived + 1):
            if s not in ch.pending_data and s not in held:
                drop.add(s)
        ch.drop_set = drop
        ch.pending_data.clear()
        ch.buffer.clear()
        ch.arrived = prefix
        return prefix

    def _handle_lastmessage(self, runtime, peer: int, received: Dict[int, int]) -> None:
        st = self.state[runtime.rank]
        for cid, value in received.items():
            self._fix_ls(runtime, st, (cid, peer), value)

    def _fix_ls(self, runtime, st: _RankState, key: ChannelOut, value: int) -> None:
        """Line 25-26: set LS, replay our own logged backlog the peer is
        missing (possible when in-flight messages died with our crash),
        then release sends deferred on this channel."""
        cid, peer = key
        st.ls[key] = value
        if key in st.gated:
            st.gated.discard(key)
            for rec in st.log.replay_after(cid, peer, value, include_stable=True):
                runtime.isend_raw(self._record_to_env(rec, runtime.rank, peer))
                st.replayed_records += 1
            runtime.release_deferred(cid, peer)

    # ------------------------------------------------------------------
    # Reporting helpers (benchmarks)
    # ------------------------------------------------------------------
    def log_growth_rates_mb_s(self, duration_ns: int) -> List[float]:
        """Per-rank log growth rates — Table 1's raw data."""
        return [
            self.state[r].log.growth_rate_mb_s(duration_ns)
            for r in sorted(self.state)
        ]

    def total_bytes_logged(self) -> int:
        return sum(s.log.bytes_logged for s in self.state.values())

    def total_resident_log_bytes(self) -> int:
        """Live sender-log memory right now (bounded by truncation at
        durable commits plus receiver-driven GC)."""
        return sum(s.log.resident_bytes for s in self.state.values())

    def total_collected_log_bytes(self) -> int:
        """Bytes freed by receiver-driven GC across all ranks."""
        return sum(s.log.collected_bytes for s in self.state.values())

    def auto_cadence_report(self) -> Dict[int, dict]:
        """Per-cluster view of the 'auto' checkpoint cadence: the chosen
        interval, the measured iteration time, and the Young/Daly target
        it was derived from."""
        return {
            cluster: {
                "every": cad.every,
                "iter_ns": cad.iter_ns_est,
                "ckpt_cost_ns": cad.ckpt_cost_ns,
                "t_opt_ns": cad.t_opt_ns,
                "commits": cad.commits,
            }
            for cluster, cad in sorted(self._cadences.items())
        }

    def peak_concurrent_pfs_writers(self) -> int:
        """Maximum number of ranks with overlapping shared-tier write
        bursts — what cross-cluster staggering is meant to flatten.

        Sync bursts come from the closed-form window bookkeeping; async
        bursts are the backend's *measured* flow windows (start/finish
        of the actual background transfers), so under async flush the
        stagger's effect is observed, not assumed."""
        events: List[Tuple[int, int]] = []
        for start, end, _cluster in self.pfs_write_windows:
            events.append((start, 1))
            events.append((end, -1))
        for start, end, _rank, _round in self.storage.shared_flow_windows():
            events.append((start, 1))
            events.append((end, -1))
        events.sort()  # (t, -1) sorts before (t, +1): touching != overlap
        peak = current = 0
        for _t, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    def total_checkpoint_stall_ns(self) -> int:
        """Time ranks spent stalled inside coordinated checkpoints,
        summed over all ranks — the quantity async flushing shrinks
        (the background PFS drain no longer blocks the app)."""
        return sum(self.ckpt_stall_ns.values())

    def data_plane_report(self) -> Optional[dict]:
        """The data plane's payload/byte accounting (None when off)."""
        return self._plane.stats() if self._plane is not None else None

    def total_overhead_ns(self) -> int:
        return sum(rt.overhead_total_ns for rt in self._world.runtimes)
