"""Emulated recovery — the paper's own measurement methodology (§6.4).

Quoting the paper: *"We first execute the application with the chosen
clustering configuration once to generate the logs ...  Then we restart
the application and simulate the recovery of one cluster (the cluster
including rank 0).  It means that only the processes of this cluster are
really executed.  Other processes simply read the log files at the
beginning of the execution, compute the lists of logged messages to be
replayed and then start replaying them."*

Concretely:

* phase 1 (done by the harness): a failure-free run under SPBC fills the
  sender-side logs; :meth:`ReplayPlan.from_run` harvests them;
* phase 2: a fresh world where the recovering cluster's ranks run the
  real application (re-executing the lost segment — the *rework*), every
  other rank runs :func:`replayer_process`, and the SPBC hooks run in
  ``emulated_recovering`` mode so the recovering ranks' inter-cluster
  sends are skipped (their destinations already received them).

Replay flow control follows section 5.2.2: a replayer pre-posts up to
``window`` (default 50) send requests before waiting for the oldest to
complete, so recovering processes never wait for a small message while
rendezvous transfers cannot deadlock the replayer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from repro.core.logstore import LogRecord
from repro.core.protocol import SPBC
from repro.mpi.context import RankContext
from repro.mpi.message import Envelope

DEFAULT_PREPOST_WINDOW = 50


@dataclass
class ReplayPlan:
    """Everything phase 2 needs, harvested from a phase-1 run."""

    recovering_cluster: int
    recovering_ranks: Set[int]
    # per non-failed sender: its logged records destined to the recovering
    # cluster, in original send order (per-sender total order preserves
    # per-channel sequence order).
    records_by_sender: Dict[int, List[LogRecord]]
    failure_free_ns: int
    total_records: int = 0
    total_bytes: int = 0

    def __post_init__(self) -> None:
        self.total_records = sum(len(v) for v in self.records_by_sender.values())
        self.total_bytes = sum(
            r.nbytes for v in self.records_by_sender.values() for r in v
        )

    @classmethod
    def from_run(
        cls,
        spbc: SPBC,
        failure_free_ns: int,
        cluster_id: Optional[int] = None,
        clusters=None,
    ) -> "ReplayPlan":
        """Harvest the plan from a completed failure-free SPBC run.

        ``cluster_id`` defaults to the cluster containing rank 0 (the
        paper's choice).  ``clusters`` overrides the cluster map the plan
        is derived for: a phase-1 run with singleton clusters logs *every*
        channel, so one logging run can serve any clustering configuration
        (the per-channel log content does not depend on the map) — the
        overriding map selects which records count as inter-cluster.
        """
        cmap = clusters if clusters is not None else spbc.clusters
        cid = cmap.cluster(0) if cluster_id is None else cluster_id
        recovering = set(cmap.members(cid))
        by_sender: Dict[int, List[LogRecord]] = {}
        for rank, st in spbc.state.items():
            if rank in recovering:
                continue
            recs: List[LogRecord] = []
            for (comm_id, dst), channel in st.log.merged_channels().items():
                if dst in recovering:
                    recs.extend(channel)
            if recs:
                recs.sort(key=lambda r: (r.send_time_ns, r.comm_id, r.dst, r.seqnum))
                by_sender[rank] = recs
        return cls(
            recovering_cluster=cid,
            recovering_ranks=recovering,
            records_by_sender=by_sender,
            failure_free_ns=failure_free_ns,
        )


def replayer_process(
    ctx: RankContext,
    records: List[LogRecord],
    window: int = DEFAULT_PREPOST_WINDOW,
    log_read_ns_per_record: int = 0,
) -> Generator:
    """One non-failed rank during emulated recovery.

    Re-sends its logged messages in original send order, keeping at most
    ``window`` send requests outstanding (pre-posted) at a time.
    """
    if window < 1:
        raise ValueError("pre-post window must be >= 1")
    if log_read_ns_per_record:
        # Model for reading the log from node-local storage up front.
        yield from ctx.compute(log_read_ns_per_record * len(records))
    inflight: deque = deque()
    sent = 0
    for rec in records:
        env = Envelope(
            src=ctx.world_rank,
            dst=rec.dst,
            tag=rec.tag,
            comm_id=rec.comm_id,
            seqnum=rec.seqnum,
            nbytes=rec.nbytes,
            payload=rec.payload,
            ident=rec.ident,
        )
        inflight.append(ctx.rt.isend_raw(env))
        sent += 1
        while len(inflight) >= window:
            oldest = inflight.popleft()
            yield from ctx.wait(oldest)
    while inflight:
        yield from ctx.wait(inflight.popleft())
    return sent
