"""Checkpoint content and stable storage.

A checkpoint of one rank bundles (Algorithm 1 line 15):

* the application state (whatever the app's ``state_fn`` returns — it
  must include everything needed to resume, e.g. the iteration index);
* the MPI library state that survives a rollback: per-channel outgoing
  sequence numbers, delivered LR per incoming channel, arrival-dedup
  counters, the unexpected-message queue, pattern-API counters;
* the sender-side message ``Logs``.

Where checkpoints *live* is pluggable: :mod:`repro.storage.backend`
defines the ``StorageBackend`` layer.  ``StableStorage`` — the free
in-memory medium the paper's experiments assume — is an alias of
:class:`~repro.storage.backend.InMemoryBackend` and remains the default;
``TieredBackend`` executes a multi-level plan with modeled write/read
costs and per-tier survivability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ckptdata.plane import CkptPayload
from repro.storage.backend import InMemoryBackend


@dataclass
class Checkpoint:
    """Everything rank ``rank`` needs to restart consistently."""

    rank: int
    round_no: int
    taken_at_ns: int
    app_state: dict
    chan_seq: Dict[Tuple[int, int], int]
    lr: Dict[Tuple[int, int], int]
    arrived: Dict[Tuple[int, int], int]
    ls: Dict[Tuple[int, int], int]
    pattern_state: dict
    unexpected: List[Any]  # envelopes buffered in the library at the cut
    log_snapshot: dict
    # Per-communicator collective instance counters: a restarted rank must
    # resume the collective tag sequence where the checkpoint left it, or
    # its re-executed collectives can never match live peers' messages.
    coll_seq: Dict[int, int] = field(default_factory=dict)
    nbytes: int = 0  # modeled logical size (app state + logs)
    # What this round actually writes when the incremental data plane is
    # on: a full or delta payload with compressed size and chain link.
    # None (the default) keeps the seed's opaque-blob model: the backends
    # charge ``nbytes`` and every round stands alone.
    payload: Optional[CkptPayload] = None

    @property
    def stored_bytes(self) -> int:
        """Bytes the storage tiers are charged for this round."""
        return self.payload.stored_bytes if self.payload is not None else self.nbytes


# Reliable, cost-free checkpoint store (survives any failure) — the
# historical name for the in-memory backend, kept as the public alias.
StableStorage = InMemoryBackend
