"""Checkpoint content and stable storage.

A checkpoint of one rank bundles (Algorithm 1 line 15):

* the application state (whatever the app's ``state_fn`` returns — it
  must include everything needed to resume, e.g. the iteration index);
* the MPI library state that survives a rollback: per-channel outgoing
  sequence numbers, delivered LR per incoming channel, arrival-dedup
  counters, the unexpected-message queue, pattern-API counters;
* the sender-side message ``Logs``.

``StableStorage`` is the reliable medium: an in-memory map (indexed by
rank, versioned per checkpoint round) with an optional write/read cost
model from :mod:`repro.storage` — the paper's experiments exclude
checkpoint I/O time and so do ours by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Checkpoint:
    """Everything rank ``rank`` needs to restart consistently."""

    rank: int
    round_no: int
    taken_at_ns: int
    app_state: dict
    chan_seq: Dict[Tuple[int, int], int]
    lr: Dict[Tuple[int, int], int]
    arrived: Dict[Tuple[int, int], int]
    ls: Dict[Tuple[int, int], int]
    pattern_state: dict
    unexpected: List[Any]  # envelopes buffered in the library at the cut
    log_snapshot: dict
    # Per-communicator collective instance counters: a restarted rank must
    # resume the collective tag sequence where the checkpoint left it, or
    # its re-executed collectives can never match live peers' messages.
    coll_seq: Dict[int, int] = field(default_factory=dict)
    nbytes: int = 0  # modeled size (app state + logs), for storage costs


class StableStorage:
    """Reliable checkpoint store (survives any process failure)."""

    def __init__(self) -> None:
        self._latest: Dict[int, Checkpoint] = {}
        self._history: Dict[int, List[Checkpoint]] = {}
        self.writes = 0
        self.bytes_written = 0

    def save(self, ckpt: Checkpoint) -> None:
        self._latest[ckpt.rank] = ckpt
        self._history.setdefault(ckpt.rank, []).append(ckpt)
        self.writes += 1
        self.bytes_written += ckpt.nbytes

    def load_latest(self, rank: int) -> Optional[Checkpoint]:
        return self._latest.get(rank)

    def rounds_of(self, rank: int) -> List[int]:
        return [c.round_no for c in self._history.get(rank, [])]

    def has_checkpoint(self, rank: int) -> bool:
        return rank in self._latest
