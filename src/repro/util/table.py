"""Plain-text table formatting for benchmark harness output.

The benchmark drivers print rows shaped like the paper's tables; keeping
the formatter here avoids each bench hand-rolling column alignment.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
