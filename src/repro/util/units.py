"""Unit constants and conversions.

All virtual time in the simulator is kept in integer nanoseconds to make
executions byte-for-byte reproducible (no floating point accumulation).
All sizes are plain integer bytes.
"""

from __future__ import annotations

# Sizes (bytes)
KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024

# Durations (nanoseconds)
US: int = 1_000
MS: int = 1_000_000
SEC: int = 1_000_000_000


def ns_to_s(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / 1e9


def mb_per_s(nbytes: int, duration_ns: int) -> float:
    """Throughput in MB/s (MB = 2**20 bytes) over a virtual-time interval.

    Returns 0.0 for an empty interval so callers can fold it into tables
    without special-casing zero-length runs.
    """
    if duration_ns <= 0:
        return 0.0
    return (nbytes / MB) / (duration_ns / SEC)
