"""Small shared utilities: units, statistics, table formatting, counters."""

from repro.util.units import KB, MB, GB, US, MS, SEC, ns_to_s, mb_per_s
from repro.util.stats import SummaryStats, summarize
from repro.util.table import format_table

__all__ = [
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "SEC",
    "ns_to_s",
    "mb_per_s",
    "SummaryStats",
    "summarize",
    "format_table",
]
