"""Summary statistics over per-process metrics.

The paper's Table 1 reports average and maximum log growth rates over all
MPI processes; this module provides the small container used everywhere a
per-rank metric is aggregated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SummaryStats:
    """Aggregate view of a sequence of per-rank values."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    total: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.3g} min={self.minimum:.3g} "
            f"max={self.maximum:.3g} sd={self.stddev:.3g}"
        )


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` for ``values``.

    Raises ``ValueError`` on an empty input: an empty per-rank metric is
    always a harness bug, never a legitimate result.
    """
    vals: Sequence[float] = list(values)
    if not vals:
        raise ValueError("summarize() requires at least one value")
    n = len(vals)
    total = float(sum(vals))
    lo, hi = float(min(vals)), float(max(vals))
    # Variance is computed around the true arithmetic mean; only the
    # *reported* mean is clamped.  total/n can exceed max(vals) by an
    # ULP (e.g. [0.05]*3) and the clamp keeps the min <= mean <= max
    # invariant exact — but centering the squared deviations on the
    # clamped value would bias stddev whenever the clamp engages.
    true_mean = total / n
    var = sum((v - true_mean) ** 2 for v in vals) / n
    mean = min(hi, max(lo, true_mean))
    return SummaryStats(
        count=n,
        mean=mean,
        minimum=lo,
        maximum=hi,
        stddev=math.sqrt(var),
        total=total,
    )
