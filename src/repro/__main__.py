"""Command-line entry point: regenerate paper experiments from a shell.

Usage::

    python -m repro table1 [--ranks 128] [--apps amg,milc]
    python -m repro table2
    python -m repro fig5
    python -m repro fig6
    python -m repro ckptcost [--storage tiered:ram@1,pfs@4]
    python -m repro apps            # list registered workloads

Equivalent to the pytest benchmarks but without the harness — handy for
quick sweeps at custom scales.
"""

from __future__ import annotations

import argparse
import os
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SPBC paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "fig5", "fig6", "ckptcost", "apps"],
        help="which artifact to regenerate",
    )
    parser.add_argument("--ranks", type=int, default=None, help="simulated ranks")
    parser.add_argument("--rpn", type=int, default=None, help="ranks per node")
    parser.add_argument(
        "--apps", type=str, default=None, help="comma-separated app subset"
    )
    parser.add_argument(
        "--storage",
        type=str,
        default=None,
        help="storage backend spec for ckptcost: memory, tiered, or "
        "tiered:ram@1,ssd@4,pfs@16 (default: the built-in plan sweep)",
    )
    args = parser.parse_args(argv)

    if args.ranks:
        os.environ["REPRO_BENCH_RANKS"] = str(args.ranks)
    if args.rpn:
        os.environ["REPRO_BENCH_RPN"] = str(args.rpn)

    if args.experiment == "apps":
        from repro.apps.base import list_apps

        for spec in list_apps():
            tags = []
            if spec.paper_app:
                tags.append("paper")
            if spec.nas_app:
                tags.append("nas")
            if spec.uses_anysource:
                tags.append("ANY_SOURCE")
            print(f"{spec.name:14s} {spec.description}"
                  + (f"  [{', '.join(tags)}]" if tags else ""))
        return 0

    from repro.harness import experiments as ex

    subset = args.apps.split(",") if args.apps else None
    if args.experiment == "table1":
        rows = ex.table1_log_growth(apps=subset or ex.PAPER_APPS)
        print(ex.format_table1(rows))
    elif args.experiment == "table2":
        rows = ex.table2_failure_free_overhead(apps=subset or ex.PAPER_APPS)
        print(ex.format_table2(rows))
    elif args.experiment == "fig5":
        rows = ex.fig5_recovery(apps=subset or ex.PAPER_APPS)
        print(ex.format_fig5(rows))
    elif args.experiment == "fig6":
        rows = ex.fig6_hydee_vs_spbc(apps=subset or ex.NAS_APPS)
        print(ex.format_fig6(rows))
    elif args.experiment == "ckptcost":
        plans = None
        if args.storage:
            from repro.storage.backend import make_backend

            try:
                make_backend(args.storage)
            except ValueError as e:
                print(f"error: --storage {args.storage!r}: {e}", file=sys.stderr)
                return 2
            plans = {"memory": "memory", args.storage: args.storage}
        rows = ex.checkpoint_cost(apps=subset or ("minighost",), plans=plans)
        print(ex.format_checkpoint_cost(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
