"""Command-line entry point: regenerate paper experiments from a shell.

Usage::

    python -m repro table1 [--ranks 128] [--apps amg,milc]
    python -m repro table2
    python -m repro fig5
    python -m repro fig6
    python -m repro ckptcost [--storage tiered:ram@1,pfs@4]
    python -m repro blastradius [--storage partner:ram@1,partner@1,pfs@4]
                                [--checkpoint-every 2|auto] [--mtbf 0.5]
    python -m repro deltachain [--ckpt-data incr:4:zlib-like]
                               [--storage tiered:ram@1,pfs@4]
    python -m repro ioverlap [--storage tiered:ram@1,pfs@4]
    python -m repro apps            # list registered workloads
    python -m repro journal out.journal --record [--app ring] [--ranks 32]
                                    [--schedule 3:2:process,9:9:node]
    python -m repro journal out.journal            # inspect / project
    python -m repro replay out.journal [--shards N] [--resume]
                                       [--metrics] [--trace-out t.json]
    python -m repro trace out.journal [--trace-out t.json] [--run]

Equivalent to the pytest benchmarks but without the harness — handy for
quick sweeps at custom scales.
"""

from __future__ import annotations

import argparse
import os
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SPBC paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "fig5", "fig6", "ckptcost", "blastradius",
            "deltachain", "ioverlap", "simperf", "apps", "journal", "replay",
            "trace",
        ],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="journal/replay/trace: the journal file to record, inspect, "
        "replay, or render as a timeline",
    )
    parser.add_argument("--ranks", type=int, default=None, help="simulated ranks")
    parser.add_argument("--rpn", type=int, default=None, help="ranks per node")
    parser.add_argument(
        "--apps", type=str, default=None, help="comma-separated app subset"
    )
    parser.add_argument(
        "--storage",
        type=str,
        default=None,
        help="storage backend spec for ckptcost/blastradius/ioverlap: "
        "memory, tiered, partner, or tiered:ram@1,ssd@4,pfs@16; append "
        ":async for the background-flush mode (ioverlap takes the base "
        "plan and derives the async variant itself) "
        "(default: the built-in plan sweep)",
    )
    parser.add_argument(
        "--ckpt-data",
        type=str,
        default=None,
        help="deltachain: checkpoint data-plane spec for the incremental "
        "mode — full | incr[:period][:compression], e.g. "
        "incr:4:zlib-like (default: the built-in full-vs-incr pair)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=str,
        default=None,
        help="blastradius: iterations between coordinated checkpoints "
        "(a positive integer, or 'auto' for the Young/Daly cadence)",
    )
    parser.add_argument(
        "--mtbf",
        type=float,
        default=0.5,
        help="blastradius: node MTBF in (simulated) seconds driving the "
        "'auto' cadence (default 0.5)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="simperf: run the CI perf-smoke subset instead of the full "
        "matrix (and gate against the committed baseline if present)",
    )
    parser.add_argument(
        "--warp",
        action="store_true",
        help="simperf: include the steady-state warp pair at the largest "
        "scale (on by default for the full matrix; this flag forces it "
        "for reduced --ranks runs too)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="simperf: run the sharded pair (single-process vs N "
        "conservative PDES worker shards at --ranks or 4096 ranks) and "
        "gate the wall-clock speedup on multi-core hosts; for the full "
        "matrix this overrides the default shard count (8)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=1,
        metavar="N",
        help="simperf: run the full matrix N times and report per-"
        "scenario medians (the baseline-recording protocol as one "
        "invocation; rows carry a 'samples' field)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="simperf: also dump the results as JSON to PATH",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default="benchmarks/results/simperf.json",
        metavar="PATH",
        help="simperf: committed baseline to compare/gate against",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="journal: record a fresh run to PATH instead of inspecting it",
    )
    parser.add_argument(
        "--app",
        type=str,
        default="ring",
        help="journal --record: registered app to run (default ring)",
    )
    parser.add_argument(
        "--iters",
        type=int,
        default=12,
        help="journal --record: app iterations (default 12)",
    )
    parser.add_argument(
        "--clusters",
        type=int,
        default=8,
        metavar="SIZE",
        help="journal --record: ranks per cluster (default 8)",
    )
    parser.add_argument(
        "--schedule",
        type=str,
        default=None,
        help="journal --record: failure schedule as MS:RANK:KIND[,...] "
        "(KIND is process or node), e.g. 3:2:process,9:9:node",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay: complete a torn journal in place (verified re-run) "
        "instead of strict replay",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON file (load it in Perfetto "
        "or chrome://tracing); for 'trace' defaults to "
        "<journal>.trace.json, for 'journal --record'/'replay' it turns "
        "on live telemetry during the run",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="journal --record / replay / trace: print the run's metrics "
        "snapshot as tables (counters, gauges, timing spans)",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="trace: re-simulate the journal under strict replay with "
        "live telemetry (full compute/MPI-wait/storage lanes) instead of "
        "projecting the coarse timeline from the journal events",
    )
    args = parser.parse_args(argv)
    if args.path is not None and args.experiment not in (
        "journal", "replay", "trace",
    ):
        parser.error(f"{args.experiment} takes no journal path argument")

    if args.ranks:
        os.environ["REPRO_BENCH_RANKS"] = str(args.ranks)
    if args.rpn:
        os.environ["REPRO_BENCH_RPN"] = str(args.rpn)

    if args.experiment == "apps":
        from repro.apps.base import list_apps

        for spec in list_apps():
            tags = []
            if spec.paper_app:
                tags.append("paper")
            if spec.nas_app:
                tags.append("nas")
            if spec.uses_anysource:
                tags.append("ANY_SOURCE")
            print(f"{spec.name:14s} {spec.description}"
                  + (f"  [{', '.join(tags)}]" if tags else ""))
        return 0

    if args.experiment in ("journal", "replay", "trace"):
        return _journal_command(args)

    from repro.harness import experiments as ex

    subset = args.apps.split(",") if args.apps else None
    if args.experiment == "table1":
        rows = ex.table1_log_growth(apps=subset or ex.PAPER_APPS)
        print(ex.format_table1(rows))
    elif args.experiment == "table2":
        rows = ex.table2_failure_free_overhead(apps=subset or ex.PAPER_APPS)
        print(ex.format_table2(rows))
    elif args.experiment == "fig5":
        rows = ex.fig5_recovery(apps=subset or ex.PAPER_APPS)
        print(ex.format_fig5(rows))
    elif args.experiment == "fig6":
        rows = ex.fig6_hydee_vs_spbc(apps=subset or ex.NAS_APPS)
        print(ex.format_fig6(rows))
    elif args.experiment == "ckptcost":
        plans = None
        if args.storage:
            from repro.storage.backend import make_backend

            try:
                make_backend(args.storage)
            except ValueError as e:
                print(f"error: --storage {args.storage!r}: {e}", file=sys.stderr)
                return 2
            plans = {"memory": "memory", args.storage: args.storage}
        rows = ex.checkpoint_cost(apps=subset or ("minighost",), plans=plans)
        print(ex.format_checkpoint_cost(rows))
    elif args.experiment == "deltachain":
        from repro.ckptdata.plane import parse_ckpt_data
        from repro.storage.backend import make_backend

        modes = None
        if args.ckpt_data:
            try:
                parse_ckpt_data(args.ckpt_data)
            except ValueError as e:
                print(f"error: --ckpt-data {args.ckpt_data!r}: {e}", file=sys.stderr)
                return 2
            modes = {"full": "full", args.ckpt_data: args.ckpt_data}
        kwargs = {}
        if args.storage:
            try:
                make_backend(args.storage)
            except ValueError as e:
                print(f"error: --storage {args.storage!r}: {e}", file=sys.stderr)
                return 2
            kwargs["plan"] = args.storage
        rows = ex.deltachain(
            apps=subset or ex.DELTACHAIN_APPS, modes=modes, **kwargs
        )
        print(ex.format_deltachain(rows))
    elif args.experiment == "simperf":
        import json as _json

        from repro.harness import simperf as sp

        baseline = sp.load_baseline(args.baseline)
        if args.quick:
            result = sp.simperf_quick()
        else:
            ranks = (args.ranks,) if args.ranks else sp.SIMPERF_RANKS
            result = sp.simperf(
                ranks=ranks,
                include_warp_pair=not args.ranks or args.warp,
                include_shard_pair=not args.ranks or bool(args.shards),
                shard_ranks=args.ranks or sp.SHARD_RANKS,
                shard_nshards=args.shards or sp.SHARD_NSHARDS,
                samples=args.samples,
            )
        print(sp.format_simperf(result, baseline))
        # The event-queue microbenchmark rides along on every simperf
        # run: both backends adjacent in this process, so the recorded
        # wheel-vs-heap events/s ratios are host-independent evidence.
        micro = sp.queue_microbench()
        result["queue_microbench"] = micro
        print()
        print(sp.format_queue_microbench(micro))
        if args.json:
            with open(args.json, "w") as fh:
                _json.dump(result, fh, indent=1)
            print(f"(wrote {args.json})")
        rc = 0
        if args.quick:
            # Event-queue crossover gate: the wheel must keep its
            # deep-queue events/s lead over the heap reference.
            problems = sp.check_queue_microbench(micro)
            if problems:
                for p in problems:
                    print(f"PERF REGRESSION: {p}", file=sys.stderr)
                rc = 1
            else:
                print("eventq microbenchmark: crossover gate passed")
        if args.quick and baseline is not None:
            problems = sp.check_regression(result, baseline)
            if problems:
                for p in problems:
                    print(f"PERF REGRESSION: {p}", file=sys.stderr)
                rc = 1
            else:
                print("perf-smoke: no regression vs committed baseline")
        if args.quick:
            # Telemetry-off fast path: a run with telemetry wired but
            # disabled must cost the same as the default entry path.
            pair = sp.telemetry_overhead()
            print(sp.format_telemetry_overhead(pair))
            problems = sp.check_telemetry_overhead(pair)
            if problems:
                for p in problems:
                    print(f"PERF REGRESSION: {p}", file=sys.stderr)
                rc = 1
        if args.quick and args.shards:
            # The sharded 4096-rank smoke: one calibrated pair per flush
            # mode (sync, then async with mirrored flows), wall-clock
            # speedup gated on hosts that have the cores.
            for flush_mode in ("sync", "async"):
                pair = sp.shard_pair(
                    nranks=args.ranks or sp.SHARD_RANKS,
                    nshards=args.shards,
                    flush_mode=flush_mode,
                )
                print()
                print(sp.format_shard_pair(pair))
                problems = sp.check_shard_speedup(pair)
                if problems:
                    for p in problems:
                        print(f"PERF REGRESSION: {p}", file=sys.stderr)
                    rc = 1
                elif pair["host_cpus"] < 2:
                    print(
                        f"shard pair ({flush_mode}): single-core host, "
                        "speedup gate skipped"
                    )
                else:
                    print(f"shard pair ({flush_mode}): speedup gate passed")
        if rc:
            return rc
    elif args.experiment == "ioverlap":
        kwargs = {}
        if args.storage:
            from repro.storage.backend import make_backend

            if args.storage.endswith(":async"):
                print(
                    f"error: --storage {args.storage!r}: pass the base "
                    "(sync) plan; ioverlap derives the async variant "
                    "itself",
                    file=sys.stderr,
                )
                return 2
            try:
                make_backend(args.storage)
            except ValueError as e:
                print(f"error: --storage {args.storage!r}: {e}", file=sys.stderr)
                return 2
            kwargs["plan"] = args.storage
        rows = ex.ioverlap(apps=subset or ex.IOVERLAP_APPS, **kwargs)
        print(ex.format_ioverlap(rows))
    elif args.experiment == "blastradius":
        from repro.storage.backend import make_backend
        from repro.util.units import SEC

        plans = None
        if args.storage:
            try:
                make_backend(args.storage)
            except ValueError as e:
                print(f"error: --storage {args.storage!r}: {e}", file=sys.stderr)
                return 2
            plans = {args.storage: args.storage}
        every = 2
        if args.checkpoint_every == "auto":
            every = "auto"
        elif args.checkpoint_every:
            try:
                every = int(args.checkpoint_every)
            except ValueError:
                print(
                    f"error: --checkpoint-every {args.checkpoint_every!r}: "
                    "expected a positive integer or 'auto'",
                    file=sys.stderr,
                )
                return 2
            if every < 1:
                print(
                    f"error: --checkpoint-every {every}: must be >= 1",
                    file=sys.stderr,
                )
                return 2
        if args.mtbf <= 0:
            print(
                f"error: --mtbf {args.mtbf}: MTBF must be positive seconds",
                file=sys.stderr,
            )
            return 2
        try:
            rows = ex.blastradius(
                apps=subset or ("minighost",),
                plans=plans,
                checkpoint_every=every,
                mtbf_ns=int(args.mtbf * SEC),
            )
        except ValueError as e:
            # e.g. --storage memory with --checkpoint-every auto
            print(f"error: blastradius: {e}", file=sys.stderr)
            return 2
        print(ex.format_blastradius(rows))
        # The Young/Daly cadence report rides along: it shares the
        # failure model's tier costs and shows the 'auto' interval next
        # to the analytic optimum.
        auto_plan = (
            args.storage if args.storage else ex.BLAST_PLANS["no-partner"]
        )
        try:
            arows = ex.auto_interval(
                apps=subset or ("minighost",),
                plan=auto_plan,
                mtbf_ns=int(args.mtbf * SEC),
            )
        except ValueError as e:
            # e.g. --storage memory: the free store has no write cost for
            # the Young/Daly controller to optimize against.  The blast
            # table above is still the requested artifact — skip the
            # ride-along report instead of failing the command.
            print()
            print(f"(auto-interval report skipped for {auto_plan!r}: {e})")
        else:
            print()
            print(ex.format_auto_interval(arows))
    return 0


def _parse_schedule(spec):
    """Parse ``MS:RANK:KIND[,...]`` into (time_ns, rank, kind) triples."""
    from repro.util.units import MS

    out = []
    for part in spec.split(","):
        fields = part.split(":")
        if len(fields) != 3:
            raise ValueError(
                f"bad schedule entry {part!r}: expected MS:RANK:KIND"
            )
        t_ms, rank, kind = fields
        if kind not in ("process", "node"):
            raise ValueError(
                f"bad failure kind {kind!r} in {part!r}: "
                "expected 'process' or 'node'"
            )
        out.append((int(float(t_ms) * MS), int(rank), kind))
    return out


def _journal_command(args) -> int:
    import json as _json

    from repro.journal import (
        DivergenceError,
        Journal,
        JournalError,
        project,
        replay_strict,
        resume,
    )
    from repro.journal.project import summary

    if args.path is None:
        print(f"error: {args.experiment} requires a journal PATH",
              file=sys.stderr)
        return 2

    if args.experiment == "journal" and args.record:
        from repro.core.clusters import ClusterMap
        from repro.core.protocol import SPBCConfig
        from repro.harness.runner import run_failure_schedule, run_spbc
        from repro.journal.recorder import journaled_app

        nranks = args.ranks or 32
        rpn = args.rpn or 8
        try:
            app = journaled_app(args.app, iters=args.iters)
            schedule = _parse_schedule(args.schedule) if args.schedule else []
        except (KeyError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        clusters = ClusterMap.block(nranks, args.clusters)
        cfg = SPBCConfig(clusters=clusters, checkpoint_every=3,
                         state_nbytes=1 << 12)
        storage = args.storage or "tiered:ram@1,pfs@4"
        tele = _make_telemetry(args)
        common = dict(ranks_per_node=rpn, storage=storage, config=cfg,
                      shards=args.shards, journal=args.path, telemetry=tele)
        if schedule:
            run_failure_schedule(app, nranks, clusters, schedule, **common)
        else:
            run_spbc(app, nranks, clusters, **common)
        jr = Journal.load(args.path)
        print(f"recorded {len(jr.events)} events to {args.path}")
        print(_json.dumps(summary(jr), indent=1, default=str))
        _emit_telemetry(args, tele)
        return 0

    try:
        journal = Journal.load(args.path)
    except (OSError, JournalError) as e:
        print(f"error: cannot load {args.path!r}: {e}", file=sys.stderr)
        return 2

    if args.experiment == "trace":
        return _trace_command(args, journal)

    if args.experiment == "journal":
        print(_json.dumps(summary(journal), indent=1, default=str))
        if journal.complete:
            from repro.journal.project import (
                commit_intervals_ns,
                committed_bytes,
                downtime_ns,
                gc_notice_count,
                rework_ns,
            )

            projections = {
                "committed_bytes": project(journal, committed_bytes),
                "gc_notices": project(journal, gc_notice_count),
                "downtime_ns": project(journal, downtime_ns),
                "rework_ns": project(journal, rework_ns),
                "commit_interval_count": len(
                    project(journal, commit_intervals_ns)
                ),
            }
            print(_json.dumps({"projections": projections}, indent=1))
        return 0

    # replay
    if args.resume:
        try:
            res = resume(args.path, shards=args.shards)
        except JournalError as e:
            print(f"error: resume failed: {e}", file=sys.stderr)
            return 1
        verb = "re-simulated" if res.resimulated else "already complete"
        print(f"resume: {verb}; makespan {res.makespan_ns} ns, "
              f"{len(res.finish_ns)} ranks finished")
        return 0
    tele = _make_telemetry(args)
    try:
        res = replay_strict(args.path, shards=args.shards, telemetry=tele)
    except DivergenceError as e:
        print(f"REPLAY DIVERGED at LSN {e.lsn}:", file=sys.stderr)
        print(f"  recorded: {e.recorded}", file=sys.stderr)
        print(f"  replayed: {e.replayed}", file=sys.stderr)
        return 1
    except JournalError as e:
        print(f"error: replay failed: {e}", file=sys.stderr)
        return 1
    print(f"replay-strict: OK ({len(journal.events)} events bit-identical; "
          f"makespan {res.makespan_ns} ns)")
    _emit_telemetry(args, tele)
    return 0


def _make_telemetry(args):
    """A live telemetry sink when ``--metrics``/``--trace-out`` ask for
    one, else None (the zero-overhead default)."""
    if not (args.metrics or args.trace_out):
        return None
    from repro.obs import Telemetry

    return Telemetry()


def _emit_telemetry(args, tele) -> None:
    """Write ``--trace-out`` and print ``--metrics`` for a live run."""
    import json as _json

    if tele is None:
        return
    if args.trace_out:
        doc = tele.to_chrome()
        with open(args.trace_out, "w") as fh:
            _json.dump(doc, fh)
        print(f"wrote {len(doc['traceEvents'])} trace events "
              f"to {args.trace_out}")
    if args.metrics:
        from repro.obs import format_metrics

        print()
        print(format_metrics(tele.metrics_snapshot()))


def _trace_command(args, journal) -> int:
    """Render a journal as a Chrome trace-event file.

    Default: project the coarse timeline straight from the journal's
    events (milliseconds, no simulation).  ``--run``: re-execute under
    strict replay with live telemetry for the full-fidelity lanes."""
    import json as _json

    from repro.obs.schema import trace_lane_counts
    from repro.util.table import format_table

    if args.run:
        from repro.journal import DivergenceError, JournalError, replay_strict
        from repro.obs import Telemetry

        tele = Telemetry()
        try:
            replay_strict(journal, shards=args.shards, telemetry=tele)
        except DivergenceError as e:
            print(f"REPLAY DIVERGED at LSN {e.lsn}:", file=sys.stderr)
            return 1
        except JournalError as e:
            print(f"error: trace --run failed: {e}", file=sys.stderr)
            return 1
        source = "strict replay"
    else:
        from repro.obs.convert import timeline_from_journal

        tele = timeline_from_journal(journal)
        source = "journal projection"
    doc = tele.to_chrome()
    out = args.trace_out or f"{args.path}.trace.json"
    with open(out, "w") as fh:
        _json.dump(doc, fh)
    counts = trace_lane_counts(doc)
    print(format_table(
        ["lane group", "events"],
        [[k, counts[k]] for k in sorted(counts)],
        title=f"Timeline of {args.path} ({source})",
    ))
    print(f"wrote {len(doc['traceEvents'])} trace events to {out}")
    if args.metrics:
        from repro.obs import format_metrics

        print()
        print(format_metrics(tele.metrics_snapshot()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
