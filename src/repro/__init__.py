"""Reproduction of SPBC (Ropars et al., SC 2013): Scalable Pattern-Based
Checkpointing for MPI HPC applications.

Public API tour
---------------
* :mod:`repro.sim`  — deterministic discrete-event substrate;
* :mod:`repro.mpi`  — the simulated MPI library (``World``, ``RankContext``);
* :mod:`repro.core` — the SPBC protocol: clustering-aware sender-side
  logging, pattern identifiers, coordinated checkpointing, recovery;
* :mod:`repro.baselines` — HydEE and classical baselines;
* :mod:`repro.clustering` — the communication-driven clustering tool;
* :mod:`repro.apps` — the paper's workloads as communication skeletons;
* :mod:`repro.harness` — runners and the Table/Figure experiment drivers.

Quickstart::

    from repro import ClusterMap, run_spbc
    from repro.apps import get_app

    app = get_app("minighost").factory(nx=64, iters=10)
    clusters = ClusterMap.block(32, 4)
    result = run_spbc(app, nranks=32, clusters=clusters)
    print(result.makespan_ns, result.hooks.total_bytes_logged())
"""

from repro.core import (
    SPBC,
    SPBCConfig,
    ClusterMap,
    LogCostModel,
    RecoveryManager,
    ReplayPlan,
    StableStorage,
)
from repro.harness import (
    run_app,
    run_native,
    run_spbc,
    run_emulated_recovery,
    run_online_failure,
)
from repro.mpi import ANY_SOURCE, ANY_TAG, RankContext, World
from repro.storage import (
    InMemoryBackend,
    MultiLevelPlan,
    StorageBackend,
    TieredBackend,
    make_backend,
)

__version__ = "1.0.0"

__all__ = [
    "SPBC",
    "SPBCConfig",
    "ClusterMap",
    "LogCostModel",
    "RecoveryManager",
    "ReplayPlan",
    "StableStorage",
    "run_app",
    "run_native",
    "run_spbc",
    "run_emulated_recovery",
    "run_online_failure",
    "ANY_SOURCE",
    "ANY_TAG",
    "RankContext",
    "World",
    "StorageBackend",
    "InMemoryBackend",
    "TieredBackend",
    "MultiLevelPlan",
    "make_backend",
    "__version__",
]
