"""Sharded parallel simulation: conservative PDES across worker processes.

Exact-mode simulations of 4096-16384 ranks are bottlenecked by one
Python interpreter churning through one global event heap.  This module
splits a run into *shards* — each a worker process simulating the full
world topology but executing application processes only for its assigned
clusters — and synchronizes them conservatively, so the merged outcome
is bit-identical to the single-process run (same makespan, results, log
counters, commit history, and communication matrix).

The synchronization is window-based (YAWNS):

1.  Every shard reports its next local event time, its earliest pending
    restart milestone (*hold*), and the cross-shard packets it produced.
2.  The coordinator computes the global floor ``T`` — the minimum over
    next-event times, undelivered packet arrivals, and unscheduled
    mirror actions — and grants the horizon ``H = T + L``, where ``L``
    is the network lookahead: any send issued at ``t >= T`` arrives no
    earlier than ``t + L >= H``, so nothing a shard does inside the
    window can affect another shard within the same window.
3.  Shards inject the relayed packets (arrival times were fixed by the
    sending shard's channel state, so delivery is exact), run up to but
    excluding ``H``, and report again.

Failure schedules are mirrored: every shard executes the crash side of
each failure locally (the schedule is static), while the shard owning a
rolled-back cluster drives the restart and publishes its completion as a
milestone the coordinator rebroadcasts, so remote survivors deliver
their failure notifications at the same instant.  Holds and a
``failure time + restart delay`` horizon cap keep windows from skipping
over these same-instant interactions.

Async-flush storage (``--storage ...:async``) is decomposed by
mirroring the shared-tier flow model: each shard runs its owned flows
(background flushes, restart-read pipelines, partner rebuilds) on a
local bandwidth-resource replica, exports start/cancel records for
flows on *shared* lanes, and replays the other shards' records as
mirror flows at the exported absolute instants — so every shard
recomputes identical piecewise-constant bandwidth shares and identical
completion times (see :mod:`repro.sim.resources`).  Two extra horizon
rules keep the replay exact: the lookahead is capped by the smallest
shared-tier latency (a flow started inside a window cannot be admitted
before the next window's grant has delivered its record), and a window
containing a failure ends right after it (the failure's flush
cancellations must reach the mirrors before any shard advances past
the crash instant).  Unshared lanes (per-node RAM/SSD, partner links)
drain flows independently and need no mirroring; synchronous storage
decomposes exactly with no flow traffic at all.

Sharding still refuses configurations it cannot reproduce exactly:
network jitter (seeded per-packet draws diverge across event orders)
and warp mode (the detector needs the global event stream).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ckptdata.regions import WriteLocalityProfile
from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.core.recovery import FAILURE_KINDS, FailureEvent
from repro.harness.runner import (
    AppFactory,
    CkptDataSpec,
    FailureSpec,
    StorageSpec,
    _resolve_ckpt_data,
    _resolve_storage,
)
from repro.obs import NULL_TELEMETRY, Telemetry, resolve_telemetry
from repro.sim.network import NetworkParams, Topology
from repro.sim.shard import lookahead_ns, shard_worker_main
from repro.util.units import mb_per_s


@dataclass
class ShardPlan:
    """Everything one worker needs to build and run its shard.

    Workers are forked, so the (unpicklable) application factory and the
    shared config object travel by address-space inheritance; only the
    window-protocol messages cross the pipes."""

    shard_id: int
    nshards: int
    owned_clusters: frozenset
    owned_ranks: frozenset
    nranks: int
    ranks_per_node: int
    seed: int
    net_params: Optional[NetworkParams]
    trace: bool
    config: SPBCConfig
    app_factory: AppFactory
    schedule: Tuple[FailureSpec, ...] = ()
    restart_delay_ns: int = 2_000_000
    restart_stagger_ns: int = 0
    # Collect owned-rank journal events (commits, gc, restarts) into a
    # ListSink and ship them back in the worker summary.
    journal: bool = False
    # Record per-shard telemetry (metrics + timeline) and ship the
    # snapshot back in the worker summary for the coordinator's merge.
    telemetry: bool = False


def partition_shards(
    clusters: ClusterMap,
    nshards: int,
    weights: Optional[np.ndarray] = None,
) -> List[List[int]]:
    """Assign whole clusters to shards (clusters never span shards — the
    protocol's barriers, drains, and restarts are cluster-collective).

    Default: contiguous cluster ranges balanced by rank count, which
    preserves any node alignment of the cluster map.  With a rank-level
    communication-weight matrix (e.g. from a traced run), clusters are
    instead placed to keep heavy traffic shard-internal: a greedy k-way
    seed when shard count divides cluster count (balanced refinement
    otherwise) followed by Kernighan-Lin swaps on the cluster-contracted
    matrix."""
    ncl = clusters.nclusters
    if not 1 <= nshards <= ncl:
        raise ValueError(
            f"need 1 <= shards <= {ncl} clusters, got {nshards}"
        )
    sizes = clusters.sizes()
    if weights is None:
        assignment = _contiguous_assignment(sizes, nshards)
    else:
        assignment = _weighted_assignment(clusters, sizes, nshards, weights)
    out: List[List[int]] = [[] for _ in range(nshards)]
    for c, s in enumerate(assignment):
        out[s].append(c)
    if any(not part for part in out):
        raise ValueError("partition left an empty shard")
    return out


def _contiguous_assignment(sizes: Sequence[int], nshards: int) -> List[int]:
    """Greedy contiguous split balanced by rank count: close the open
    shard once it reached its proportional share (or when the remaining
    clusters are only just enough to give every later shard one)."""
    n = len(sizes)
    total = sum(sizes)
    assignment: List[int] = []
    shard = 0
    acc = 0  # ranks in the open shard
    done = 0  # ranks in closed shards
    for c, size in enumerate(sizes):
        remaining_shards = nshards - shard
        must_close = acc > 0 and remaining_shards > 1 and n - c == remaining_shards
        met_share = (
            acc > 0
            and remaining_shards > 1
            and acc >= (total - done) / remaining_shards
        )
        if must_close or met_share:
            shard += 1
            done += acc
            acc = 0
        assignment.append(shard)
        acc += size
    return assignment


def _weighted_assignment(
    clusters: ClusterMap,
    sizes: Sequence[int],
    nshards: int,
    weights: np.ndarray,
) -> List[int]:
    from repro.clustering.partition import greedy_kway, refine_kl

    ncl = clusters.nclusters
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (clusters.nranks, clusters.nranks):
        raise ValueError(
            f"weights must be a {clusters.nranks}x{clusters.nranks} "
            f"rank matrix, got {w.shape}"
        )
    # Contract the rank matrix to clusters (symmetrized: the cut does
    # not care about direction).
    cw = np.zeros((ncl, ncl))
    for a in range(clusters.nranks):
        ca = clusters.cluster(a)
        for b in range(clusters.nranks):
            cb = clusters.cluster(b)
            if ca != cb:
                cw[ca, cb] += w[a, b] + w[b, a]
    if ncl % nshards == 0:
        seed = greedy_kway(cw, nshards)
    else:
        seed = _contiguous_assignment(sizes, nshards)
    return refine_kl(cw, seed)


class _LogShim:
    """Duck-type of a rank's sender-log counters (Table 1 views)."""

    __slots__ = ("bytes_logged", "records_logged")

    def __init__(self, bytes_logged: int, records_logged: int) -> None:
        self.bytes_logged = bytes_logged
        self.records_logged = records_logged

    def growth_rate_mb_s(self, duration_ns: int) -> float:
        return mb_per_s(self.bytes_logged, duration_ns)


class _StateShim:
    __slots__ = ("log",)

    def __init__(self, log: _LogShim) -> None:
        self.log = log


class _HooksShim:
    """The slice of :class:`~repro.core.protocol.SPBC` reporting that a
    merged sharded run can reconstruct from per-shard summaries."""

    def __init__(
        self,
        log: Dict[int, Tuple[int, int]],
        pfs_write_windows: List[Tuple[int, int, int]],
        shared_flow_windows: List[Tuple[int, int, int, int]],
        ckpt_stall_ns: int,
    ) -> None:
        self.state = {
            r: _StateShim(_LogShim(b, n)) for r, (b, n) in sorted(log.items())
        }
        self.pfs_write_windows = pfs_write_windows
        self._shared_flow_windows = shared_flow_windows
        self._ckpt_stall_ns = ckpt_stall_ns

    def total_bytes_logged(self) -> int:
        return sum(s.log.bytes_logged for s in self.state.values())

    def log_growth_rates_mb_s(self, duration_ns: int) -> List[float]:
        return [
            self.state[r].log.growth_rate_mb_s(duration_ns)
            for r in sorted(self.state)
        ]

    def peak_concurrent_pfs_writers(self) -> int:
        events: List[Tuple[int, int]] = []
        for start, end, _cluster in self.pfs_write_windows:
            events.append((start, 1))
            events.append((end, -1))
        for start, end, _rank, _round in self._shared_flow_windows:
            events.append((start, 1))
            events.append((end, -1))
        events.sort()
        peak = current = 0
        for _t, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    def total_checkpoint_stall_ns(self) -> int:
        return self._ckpt_stall_ns


class _TraceShim:
    __slots__ = ("enabled", "_matrix")

    def __init__(self, matrix: Optional[np.ndarray]) -> None:
        self.enabled = matrix is not None
        self._matrix = matrix

    def comm_bytes_matrix(self, nranks: int) -> np.ndarray:
        if self._matrix is None:
            raise RuntimeError("run was traced with trace=False")
        return self._matrix


@dataclass
class ShardedRunResult:
    """Merged outcome of a sharded run — the sequential
    :class:`~repro.harness.runner.RunResult` observables plus recovery
    and engine accounting (``world`` is gone; each shard's world died
    with its worker)."""

    nranks: int
    nshards: int
    makespan_ns: int
    finish_ns: Dict[int, int]
    results: Dict[int, object]
    hooks: _HooksShim
    trace: _TraceShim
    #: rank -> [(round_no, taken_at_ns)] for every committed round.
    commit_history: Dict[int, List[Tuple[int, int]]]
    failures: List[FailureEvent] = field(default_factory=list)
    restarts: Dict[int, int] = field(default_factory=dict)
    packets_sent: int = 0
    bytes_sent: int = 0
    events_executed: int = 0
    overhead_ns: int = 0
    compute_ns: int = 0
    windows: int = 0
    lookahead_ns: int = 0
    #: Background-flow accounting summed across shards (async storage;
    #: zeros for synchronous specs) — matches the sequential backend's
    #: flush_flows_*/rebuild_flows_* counters.
    storage_counters: Dict[str, int] = field(default_factory=dict)
    #: rank -> rounds restorable at the end of the run (the "drained
    #: rounds" view: an in-flight flush that never landed is absent).
    drained_rounds: Dict[int, List[int]] = field(default_factory=dict)
    #: Coordinator-side merged telemetry (None unless requested): every
    #: worker's metrics and timeline folded into one view, plus the
    #: coordinator's own per-shard window/barrier-wait lanes.
    telemetry: Optional[Telemetry] = None

    @property
    def restarted_ranks(self) -> set:
        return set(self.restarts)


def _validate(cfg: SPBCConfig, params: NetworkParams, warp) -> None:
    if warp is not None:
        raise ValueError(
            "warp and shards are mutually exclusive: the steady-state "
            "detector needs the globally ordered event stream"
        )
    if params.jitter_max_ns > 0:
        raise ValueError(
            "sharded runs require jitter_max_ns=0: per-packet jitter "
            "draws depend on global event order and would diverge"
        )


def _flow_lookahead_cap_ns(cfg: SPBCConfig) -> Optional[int]:
    """Horizon cap for mirrored shared-lane flows, or None when the
    storage runs no flows.

    A flow started at ``t`` inside a window is admitted at
    ``t + delay + latency >= t + latency``; its start record reaches the
    other shards with the *next* window's grant, by which time they sit
    at the previous horizon.  Capping the lookahead at the smallest
    shared-tier latency guarantees the record always arrives before its
    admission instant.  (Cancellations are delivered in time by the
    failure and hold caps — they only happen at crash and restart
    milestones.)"""
    storage = cfg.storage
    if storage is None or not getattr(storage, "async_flush", False):
        return None
    shared = [t.latency_ns for t in storage.plan.tiers if t.shared]
    if not shared:
        return None
    return max(1, min(shared))


def run_spbc_sharded(
    app_factory: AppFactory,
    nranks: int,
    clusters: ClusterMap,
    shards: int,
    config: Optional[SPBCConfig] = None,
    storage: StorageSpec = None,
    ckpt_data: CkptDataSpec = None,
    profile: Optional[WriteLocalityProfile] = None,
    schedule: Sequence[FailureSpec] = (),
    restart_delay_ns: int = 2_000_000,
    restart_stagger_ns: int = 0,
    ranks_per_node: int = 8,
    seed: int = 0,
    net_params: Optional[NetworkParams] = None,
    trace: bool = True,
    warp=None,
    shard_weights: Optional[np.ndarray] = None,
    journal=None,
    telemetry=None,
) -> ShardedRunResult:
    """Run an SPBC simulation split across ``shards`` worker processes.

    Accepts the union of :func:`~repro.harness.runner.run_spbc` and
    :func:`~repro.harness.runner.run_failure_schedule` arguments (an
    empty ``schedule`` is a failure-free run) and produces bit-identical
    observables.  Requires a platform with ``fork`` (the application
    factory is inherited, not pickled).

    ``journal`` records the run (see :mod:`repro.journal`): workers
    stream their owned ranks' events back in the summaries and the
    coordinator writes one journal whose canonical event stream is
    identical to the sequential recording's."""
    cfg = config or SPBCConfig(clusters=clusters)
    if cfg.clusters is not clusters and cfg.clusters != clusters:
        raise ValueError("config.clusters disagrees with the clusters argument")
    writer = None
    if journal is not None:
        from repro.journal.recorder import prepare_writer

        # Before the spec strings are resolved into live objects: the
        # header records the specs themselves.
        writer = prepare_writer(
            journal,
            app_factory=app_factory,
            nranks=nranks,
            clusters=clusters,
            config=cfg,
            schedule=schedule,
            storage=storage,
            ckpt_data=ckpt_data,
            profile=profile,
            warp=warp,
            restart_delay_ns=restart_delay_ns,
            restart_stagger_ns=restart_stagger_ns,
            ranks_per_node=ranks_per_node,
            seed=seed,
            net_params=net_params,
            trace=trace,
            recorded_shards=shards,
        )
    _resolve_storage(cfg, storage)
    _resolve_ckpt_data(cfg, ckpt_data, profile)
    params = net_params or NetworkParams()
    _validate(cfg, params, warp)
    # The coordinator's sink: workers record shard-locally and ship
    # snapshots back; the coordinator adds its own window/barrier lanes
    # and merges everything here.  Its queue sampler never runs (no
    # engine on the coordinator side).
    tele = resolve_telemetry(telemetry)
    for _at, _rank, kind in schedule:
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")

    parts = partition_shards(clusters, shards, weights=shard_weights)
    shard_of_cluster: Dict[int, int] = {}
    shard_of_rank = [0] * nranks
    for sid, part in enumerate(parts):
        for c in part:
            shard_of_cluster[c] = sid
            for r in clusters.members(c):
                shard_of_rank[r] = sid
    topology = Topology(nranks=nranks, ranks_per_node=ranks_per_node)
    lookahead = lookahead_ns(params, topology, shard_of_rank)
    flow_cap = _flow_lookahead_cap_ns(cfg)
    if flow_cap is not None:
        # Mirrored shared-lane flows: a start record must reach the
        # other shards before its admission instant (see
        # _flow_lookahead_cap_ns).  The PFS latency (milliseconds)
        # dwarfs the network lookahead (microseconds), so in practice
        # this never bites.
        lookahead = min(lookahead, flow_cap)

    plans = [
        ShardPlan(
            shard_id=sid,
            nshards=shards,
            owned_clusters=frozenset(part),
            owned_ranks=frozenset(
                r for c in part for r in clusters.members(c)
            ),
            nranks=nranks,
            ranks_per_node=ranks_per_node,
            seed=seed,
            net_params=params,
            trace=trace,
            config=cfg,
            app_factory=app_factory,
            schedule=tuple(schedule),
            restart_delay_ns=restart_delay_ns,
            restart_stagger_ns=restart_stagger_ns,
            journal=writer is not None,
            telemetry=tele.enabled,
        )
        for sid, part in enumerate(parts)
    ]

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - platform dependent
        raise RuntimeError(
            "sharded simulation requires the fork start method "
            "(application factories are closures and cannot be pickled)"
        ) from exc

    conns = []
    workers = []
    try:
        for plan in plans:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=shard_worker_main,
                args=(child, plan),
                daemon=True,
                name=f"shard-{plan.shard_id}",
            )
            proc.start()
            child.close()
            conns.append(parent)
            workers.append(proc)
        summaries, windows = _coordinate(
            conns,
            shard_of_rank,
            shard_of_cluster,
            lookahead,
            restart_delay_ns,
            sorted(at for at, _r, _k in schedule),
            tele,
            flows_mirrored=flow_cap is not None,
        )
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in workers:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hang safety net
                proc.terminate()
                proc.join()

    result = _merge(
        summaries,
        shard_of_cluster,
        nranks,
        shards,
        trace,
        windows,
        lookahead,
        tele,
    )
    if writer is not None:
        from repro.journal.recorder import finalize_run, log_counters_of

        finalize_run(
            writer,
            failures=result.failures,
            finish_ns=result.finish_ns,
            makespan_ns=result.makespan_ns,
            results=result.results,
            log=log_counters_of(result.hooks),
            restarts=result.restarts,
            commit_history=result.commit_history,
            worker_events=[
                ev for summ in summaries for ev in summ.get("journal_events", ())
            ],
        )
    return result


def _recv(conn, sid: int):
    """One protocol message from shard ``sid`` (raises on worker death
    or reported error)."""
    try:
        msg = conn.recv()
    except EOFError:
        raise RuntimeError(f"shard worker {sid} died unexpectedly") from None
    if msg[0] == "error":
        raise RuntimeError(f"shard worker {sid} failed:\n{msg[1]}")
    return msg[1]


def _coordinate(
    conns,
    shard_of_rank: List[int],
    shard_of_cluster: Dict[int, int],
    lookahead: int,
    restart_delay_ns: int,
    failure_times: List[int],
    tele=NULL_TELEMETRY,
    flows_mirrored: bool = False,
):
    """Drive the report/grant windows until every shard drains.

    Returns the per-shard summaries and the number of windows granted."""
    k = len(conns)
    reports = [_recv(conns[i], i) for i in range(k)]
    pending_imports: List[list] = [[] for _ in range(k)]
    pending_actions: List[list] = [[] for _ in range(k)]
    pending_flows: List[list] = [[] for _ in range(k)]
    windows = 0
    while True:
        # Harvest: route packets to their destination shard, rebroadcast
        # restart milestones and shared-lane flow records to every
        # *other* shard (the originator already ran the real thing).
        for sid, rep in enumerate(reports):
            for export in rep["exports"]:
                pending_imports[shard_of_rank[export[1]]].append(export)
            for at_ns, cluster, members, node in rep["milestones"]:
                for other in range(k):
                    if other != sid:
                        pending_actions[other].append(
                            (at_ns, cluster, members, node)
                        )
            for rec in rep.get("flows", ()):
                for other in range(k):
                    if other != sid:
                        pending_flows[other].append(rec)
        candidates = [
            rep["next_ns"] for rep in reports if rep["next_ns"] is not None
        ]
        candidates += [e[6] for imp in pending_imports for e in imp]
        candidates += [a[0] for act in pending_actions for a in act]
        # Flow-record application instants (admit time for starts,
        # cancel time for cancels): already bounded below by the floor,
        # but fold them in so the window math never has to assume it.
        candidates += [
            rec[4] if rec[0] == "start" else rec[3]
            for flows in pending_flows
            for rec in flows
        ]
        if not candidates:
            if all(rep["done"] for rep in reports):
                break
            blocked = [
                name for rep in reports for name in rep["blocked"]
            ]
            raise RuntimeError(
                "sharded run deadlocked with no pending events; "
                f"blocked processes: {', '.join(blocked)}"
            )
        floor = min(candidates)
        # Failures already executed (the window floor moved past them)
        # no longer constrain the horizon: their holds are now reported.
        failure_times = [t for t in failure_times if t >= floor]
        horizon = floor + lookahead
        for rep in reports:
            if rep["hold_ns"] is not None:
                horizon = min(horizon, rep["hold_ns"] + 1)
        if failure_times and failure_times[0] < horizon:
            # A crash inside this window schedules a restart the other
            # shards have not seen as a hold yet; its earliest possible
            # completion is failure + restart delay.
            horizon = min(horizon, failure_times[0] + restart_delay_ns + 1)
            if flows_mirrored:
                # Async storage: the crash cancels in-flight flushes on
                # the owning shards at the failure instant; end the
                # window right after it so the cancel records reach the
                # mirrors while they still sit at that instant.
                horizon = min(horizon, failure_times[0] + 1)
        horizon = max(horizon, floor + 1)
        if tele.enabled:
            # Per-shard YAWNS lanes: the granted window, and (when a
            # shard had already drained up to the floor) the stretch it
            # spent waiting on the global barrier before this grant.
            tele.inc("shard.windows")
            for sid, rep in enumerate(reports):
                if rep["now_ns"] < floor:
                    tele.shard_span("barrier-wait", sid, rep["now_ns"], floor)
                tele.shard_span(
                    "window", sid, floor, horizon, args={"lookahead": lookahead}
                )
        for sid in range(k):
            conns[sid].send(
                (
                    "grant",
                    horizon,
                    pending_imports[sid],
                    pending_actions[sid],
                    pending_flows[sid],
                )
            )
            pending_imports[sid] = []
            pending_actions[sid] = []
            pending_flows[sid] = []
        reports = [_recv(conns[i], i) for i in range(k)]
        windows += 1
    for sid in range(k):
        conns[sid].send(("finalize",))
    summaries = [_recv(conns[i], i) for i in range(k)]
    return summaries, windows


def _merge(
    summaries,
    shard_of_cluster: Dict[int, int],
    nranks: int,
    nshards: int,
    trace: bool,
    windows: int,
    lookahead: int,
    tele=NULL_TELEMETRY,
) -> ShardedRunResult:
    finish: Dict[int, int] = {}
    results: Dict[int, object] = {}
    log: Dict[int, Tuple[int, int]] = {}
    commits: Dict[int, List[Tuple[int, int]]] = {}
    restarts: Dict[int, int] = {}
    pfs_windows: List[Tuple[int, int, int]] = []
    flow_windows: List[Tuple[int, int, int, int]] = []
    matrix = np.zeros((nranks, nranks), dtype=np.int64) if trace else None
    stall = overhead = compute = packets = nbytes = events = 0
    # Failure events: every shard logs every injection (the crash side
    # runs everywhere), but only the owner of a cluster knows its actual
    # restart round/tier — take the owner's event and fold in the
    # shard-local purge/invalidation counts.
    owner_events: Dict[Tuple[int, int], dict] = {}
    count_sums: Dict[Tuple[int, int], List[int]] = {}
    storage_counters: Dict[str, int] = {}
    drained: Dict[int, List[int]] = {}
    for sid, summ in enumerate(summaries):
        finish.update(summ["finish_ns"])
        results.update(summ["results"])
        log.update(summ["log"])
        commits.update(summ["commits"])
        restarts.update(summ["restarts"])
        pfs_windows.extend(summ["pfs_write_windows"])
        flow_windows.extend(summ["shared_flow_windows"])
        stall += summ["ckpt_stall_ns"]
        overhead += summ["overhead_ns"]
        compute += summ["compute_ns"]
        packets += summ["packets_sent"]
        nbytes += summ["bytes_sent"]
        events += summ["events_executed"]
        if matrix is not None and summ["comm_matrix"] is not None:
            matrix += summ["comm_matrix"]
        if tele.enabled:
            tele.merge_snapshot(summ.get("telemetry"))
        for name, value in summ.get("storage_counters", {}).items():
            storage_counters[name] = storage_counters.get(name, 0) + value
        drained.update(summ.get("drained_rounds", {}))
        for ev in summ["failures"]:
            key = (ev["time_ns"], ev["cluster"])
            sums = count_sums.setdefault(key, [0, 0, 0, 0])
            sums[0] += ev["purged_packets"]
            sums[1] += ev["invalidated_copies"]
            sums[2] += ev["cancelled_flushes"]
            # Partner rebuilds are started shard-locally on every shard
            # (each re-mirrors its own ranks' copies onto the returned
            # node), so the global count is a sum like the others.
            sums[3] += ev["partner_rebuilds"]
            if shard_of_cluster[ev["cluster"]] == sid:
                owner_events[key] = dict(ev)
    failures = []
    for key in sorted(owner_events):
        ev = owner_events[key]
        (
            ev["purged_packets"],
            ev["invalidated_copies"],
            ev["cancelled_flushes"],
            ev["partner_rebuilds"],
        ) = count_sums[key]
        ev["killed_ranks"] = tuple(ev["killed_ranks"])
        failures.append(FailureEvent(**ev))
    return ShardedRunResult(
        nranks=nranks,
        nshards=nshards,
        makespan_ns=max(finish.values()),
        finish_ns=finish,
        results=results,
        hooks=_HooksShim(log, pfs_windows, flow_windows, stall),
        trace=_TraceShim(matrix),
        commit_history=commits,
        failures=failures,
        restarts=restarts,
        packets_sent=packets,
        bytes_sent=nbytes,
        events_executed=events,
        overhead_ns=overhead,
        compute_ns=compute,
        windows=windows,
        lookahead_ns=lookahead,
        storage_counters=storage_counters,
        drained_rounds=drained,
        telemetry=tele if tele.enabled else None,
    )
