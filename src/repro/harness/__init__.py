"""Experiment harness: run apps under a protocol, measure, reproduce the
paper's tables and figures."""

from repro.harness.runner import (
    RunResult,
    RecoveryResult,
    run_app,
    run_native,
    run_spbc,
    run_emulated_recovery,
    run_online_failure,
)

__all__ = [
    "RunResult",
    "RecoveryResult",
    "run_app",
    "run_native",
    "run_spbc",
    "run_emulated_recovery",
    "run_online_failure",
]
