"""simperf — wall-clock performance benchmark of the simulator itself.

Every other experiment in this repository measures *simulated* quantities
(log growth, overhead, recovery time).  ``simperf`` measures the
*simulator*: how many engine events per wall-clock second it executes on
a standard scenario matrix, and how long the Tier-1-shaped workloads
take end to end.  Its committed results (``benchmarks/results/
simperf.json``) are the perf baseline the CI perf-smoke job gates
against, and its before/after columns document the hot-path overhaul.

Scenario matrix
---------------
``{16, 128, 512, 1024} ranks × {sync, async, incr}`` on the ring
kernel with paper-like parameters (4 KB messages, 200 µs compute,
8 ranks/node, one cluster per node, 40 iterations with coordinated
checkpoints every 8 — five rounds per run, a cadence in the realistic
Young/Daly range — against a ram+pfs plan):

* ``sync``  — blocking multi-level checkpoints (closed-form PFS burst);
* ``async`` — background PFS flush on the event-driven I/O scheduler;
* ``incr``  — incremental delta-chain payloads with zlib-like
  compression on top of the sync plan.

Plus the warp pair: the failure-free 1024-rank long ring run in exact
mode vs ``--warp`` (steady-state fast-forward, ``repro.sim.warp``).

Plus the shard pairs: the 4096-rank scenario single-process vs
``shards=8`` (conservative PDES across worker processes,
``repro.sim.shard``), in both the sync flush mode and — with the
``shard8-async`` row — the async-flush mode, where every background
PFS flow is mirrored across the shards (the coordination cost of the
mirrored-flow protocol is exactly what that row watches).  The sharded
rows' wall-clock only improves when the host actually has cores to run
the workers on, so each result records ``host_cpus`` and
:func:`check_shard_speedup` gates the speedup only on capable hosts
(single-core containers record the pairs as an overhead reference and
report instead of failing).

``samples=N`` (CLI ``--samples N``) reruns the whole matrix N times
and reports per-scenario medians — the committed-baseline recording
protocol in one invocation (:func:`median_of_samples`).

Plus the event-queue microbenchmark (:func:`queue_microbench`): the
classic hold model run head-to-head on both queue backends
(``repro.sim.eventq``), whose deep-queue wheel-vs-heap events/s ratio
is the crossover evidence for the calendar-queue default and a CI gate
(:func:`check_queue_microbench`).

Hardware normalization
----------------------
Raw wall-clock is machine-dependent, so each run also times a fixed
pure-Python calibration loop (tuple/dict/heap churn — the same kind of
work the simulator does, but *not* the simulator).  The gated metric is
``wall / calibration_wall``: a dimensionless cost that cancels host
speed but still moves when the simulator's per-event cost regresses.
"""

from __future__ import annotations

import gc
import heapq
import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.synthetic import ring_app
from repro.ckptdata.regions import TEST_PROFILE
from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_spbc
from repro.util.table import format_table

#: The standard matrix (ISSUE 5): ranks × checkpoint modes.
SIMPERF_RANKS = (16, 128, 512, 1024)
SIMPERF_MODES = ("sync", "async", "incr")

#: Ring-kernel parameters shared by every matrix cell.
MSG_BYTES = 4096
COMPUTE_NS = 200_000
ITERS = 40
CHECKPOINT_EVERY = 8
STATE_NBYTES = 1 << 20

#: The warp pair: failure-free long run at the largest scale.
WARP_RANKS = 1024
WARP_ITERS = 600

#: The shard pair (ISSUE 6): the sync scenario at cluster-machine
#: scale, single-process exact vs conservative PDES shards.
SHARD_RANKS = 4096
SHARD_NSHARDS = 8
#: Required sharded-vs-exact wall-clock speedup when the host has at
#: least SHARD_NSHARDS cores (scaled down to 2x on smaller multi-core
#: hosts, skipped on single-core ones — process parallelism cannot
#: beat one core).
SHARD_SPEEDUP_TARGET = 3.0

#: Quick subset run by the CI perf-smoke job (same scenario ids as the
#: committed full matrix, so normalized costs are directly comparable).
QUICK_SCENARIOS = (
    "16:sync", "128:sync", "128:async", "128:incr",
    f"{WARP_RANKS}:warp",
)

#: Perf-smoke regression threshold on the normalized cost.
REGRESSION_THRESHOLD = 0.30

#: Queue microbenchmark (the event-queue swap's evidence): the classic
#: hold model — steady queue depth, every pop reschedules itself an
#: exponential increment ahead — at these depths.  The smallest depth
#: brackets the Tier-1 workloads (hundreds of pending events), the
#: middle one the 4096-rank shard scenarios (~5k), and the deepest is
#: where the heap's O(log n) sift + cache misses separate decisively
#: from the wheel's O(1) buckets.
QUEUE_BENCH_DEPTHS = (1_000, 16_000, 260_000)
QUEUE_BENCH_OPS = 200_000
QUEUE_BENCH_MEAN_GAP_NS = 1_000
#: The gate: at the deepest configured depth the wheel must beat the
#: heap by this events/s factor (measured ~2.9-3.3x on dev hosts; the
#: two backends run adjacently in one process, so the ratio cancels
#: host speed).  A drop below means the calendar queue's hot path or
#: its calibration triggers regressed.
QUEUE_CROSSOVER_RATIO = 1.5


@dataclass
class SimPerfRow:
    scenario: str  # "<ranks>:<mode>"
    nranks: int
    mode: str
    iters: int
    wall_s: float
    events: int
    events_per_sec: float
    makespan_ns: int
    #: Simulated nanoseconds advanced per wall-clock second.
    sim_ns_per_wall_s: float
    #: wall / calibration-wall: the machine-normalized, gated metric.
    norm_cost: float = 0.0
    warps: int = 0
    warped_iterations: int = 0
    #: Deepest the engine's event heap got (from a metrics-only telemetry
    #: run of the same cell — never from the timed repetitions).  0 for
    #: the warp/shard pairs, which skip the metrics pass.
    peak_queue_depth: int = 0


def calibrate(target_items: int = 200_000) -> float:
    """Fixed pure-Python workload timing the *host*, not the simulator.

    Tuple construction, dict churn, and heap traffic — the same
    primitive mix the engine's hot path uses — so the scenario/calib
    ratio is stable across CPU generations and load levels."""
    gc.collect()
    t0 = time.perf_counter()
    heap: list = []
    d: dict = {}
    push = heapq.heappush
    pop = heapq.heappop
    for i in range(target_items):
        push(heap, (i ^ 0x2A5, i, None, int, ()))
        d[(i & 1023, i & 63)] = i
        if i & 3 == 3:
            pop(heap)
    while heap:
        pop(heap)
    t1 = time.perf_counter()
    return t1 - t0


def _scenario_config(nranks: int, mode: str) -> dict:
    cm = ClusterMap.block(nranks, max(2, nranks // 8))
    cfg = SPBCConfig(
        clusters=cm,
        checkpoint_every=CHECKPOINT_EVERY,
        state_nbytes=STATE_NBYTES,
    )
    kw: dict = {"config": cfg}
    spec = "tiered:ram@1,pfs@4"
    if mode == "async":
        spec += ":async"
    kw["storage"] = spec
    if mode == "incr":
        kw["ckpt_data"] = "incr:4:zlib-like"
        kw["profile"] = TEST_PROFILE
    return {"cm": cm, "kw": kw}


def run_scenario(
    nranks: int, mode: str, iters: int = ITERS, warp: bool = False,
    warp_iters: int = WARP_ITERS,
) -> SimPerfRow:
    """Run one matrix cell and measure it."""
    if mode == "shard-exact" or mode.startswith("shard"):
        # The shard pair: single-process ("shard-exact") or split over
        # N worker shards ("shardN"), on the sync scenario — or with an
        # "-async" suffix ("shard8-async"), the async-flush scenario
        # with its background PFS flows mirrored across the shards.
        base = mode
        flush_mode = "sync"
        if base.endswith("-async"):
            base = base[: -len("-async")]
            flush_mode = "async"
        nshards = None if base == "shard-exact" else int(base[len("shard"):])
        sc = _scenario_config(nranks, flush_mode)
        factory = ring_app(
            iters=iters, msg_bytes=MSG_BYTES, compute_ns=COMPUTE_NS
        )
        gc.collect()
        t0 = time.perf_counter()
        res = run_spbc(
            factory, nranks, sc["cm"], trace=False, shards=nshards,
            **sc["kw"],
        )
        wall = time.perf_counter() - t0
        iters_run = iters
    elif mode == "warp":
        # Failure-free long ring; warp flag decides exact vs fast-forward.
        cm = ClusterMap.block(nranks, max(2, nranks // 8))
        factory = ring_app(
            iters=warp_iters, msg_bytes=MSG_BYTES, compute_ns=COMPUTE_NS
        )
        gc.collect()
        t0 = time.perf_counter()
        res = run_spbc(
            factory, nranks, cm, trace=False,
            warp=warp_iters if warp else None,
        )
        wall = time.perf_counter() - t0
        iters_run = warp_iters
    else:
        sc = _scenario_config(nranks, mode)
        factory = ring_app(
            iters=iters, msg_bytes=MSG_BYTES, compute_ns=COMPUTE_NS
        )
        gc.collect()
        t0 = time.perf_counter()
        res = run_spbc(factory, nranks, sc["cm"], trace=False, **sc["kw"])
        wall = time.perf_counter() - t0
        iters_run = iters
    if hasattr(res, "world"):
        events = res.world.engine.events_executed
        wctl = res.world.warp
    else:
        # ShardedRunResult: events summed over the worker shards.
        events = res.events_executed
        wctl = None
    return SimPerfRow(
        scenario=f"{nranks}:{mode}",
        nranks=nranks,
        mode=mode,
        iters=iters_run,
        wall_s=wall,
        events=events,
        events_per_sec=events / wall if wall > 0 else 0.0,
        makespan_ns=res.makespan_ns,
        sim_ns_per_wall_s=res.makespan_ns / wall if wall > 0 else 0.0,
        warps=wctl.warps if wctl is not None else 0,
        warped_iterations=wctl.warped_iterations if wctl is not None else 0,
    )


def scenario_metrics(nranks: int, mode: str, iters: int = ITERS) -> Dict:
    """One extra, untimed run of a standard matrix cell with metrics-only
    telemetry; returns the metrics overview (``peak_queue_depth``).

    Kept separate from the timed repetitions so the committed wall-clock
    numbers always measure the telemetry-off fast path."""
    from repro.obs import Telemetry, snapshot_overview

    tele = Telemetry(timeline=False)
    sc = _scenario_config(nranks, mode)
    factory = ring_app(
        iters=iters, msg_bytes=MSG_BYTES, compute_ns=COMPUTE_NS
    )
    run_spbc(
        factory, nranks, sc["cm"], trace=False, telemetry=tele, **sc["kw"]
    )
    return snapshot_overview(tele.metrics_snapshot())


#: Interleaved pairs measured by :func:`telemetry_overhead` and the
#: one-sided gate :func:`check_telemetry_overhead` applies (<2%).
TELEMETRY_OVERHEAD_PAIRS = 25
TELEMETRY_OVERHEAD_LIMIT = 0.02


def telemetry_overhead(
    nranks: int = 16,
    mode: str = "sync",
    iters: int = ITERS,
    pairs: int = TELEMETRY_OVERHEAD_PAIRS,
) -> Dict:
    """Measure the telemetry-off fast path against the default path.

    Runs ``pairs`` back-to-back pairs of the scenario: exactly as the
    committed baseline measures it (no ``telemetry`` argument) vs with
    telemetry explicitly wired but disabled (``telemetry=None`` resolved
    to the null object).  Both sides hit the same guarded call sites, so
    the measured ratio is the empirical "wired-but-off costs nothing"
    check that backs the structural zero-invocation guarantee
    (tests/obs/test_telemetry_off.py).

    The estimator is the *median of the per-pair wall-clock ratios*:
    the two runs of a pair are adjacent in time (same instantaneous host
    load, order alternating pair to pair), so bursty load cancels inside
    each ratio and the median rejects the pairs a burst split.  Raw
    minima or calibration-normalized costs of sub-second runs both swing
    far more than the 2% gate on a loaded host; this estimator holds it
    to well under 1% in ~1.5 s of measurement."""
    def once(**extra) -> float:
        # Fresh config per run: storage resolution binds to the config.
        sc = _scenario_config(nranks, mode)
        factory = ring_app(
            iters=iters, msg_bytes=MSG_BYTES, compute_ns=COMPUTE_NS
        )
        gc.collect()
        t0 = time.perf_counter()
        run_spbc(factory, nranks, sc["cm"], trace=False, **sc["kw"], **extra)
        return time.perf_counter() - t0

    once()  # warm-up, discarded: first run pays import/allocator costs
    ratios: List[float] = []
    base: List[float] = []
    wired: List[float] = []
    for i in range(pairs):
        if i % 2 == 0:
            b = once()
            w = once(telemetry=None)
        else:
            w = once(telemetry=None)
            b = once()
        base.append(b)
        wired.append(w)
        ratios.append(w / b)
    ratios.sort()
    median = ratios[len(ratios) // 2]
    return {
        "scenario": f"{nranks}:{mode}",
        "pairs": pairs,
        "baseline_wall_s": sorted(base)[len(base) // 2],
        "wired_off_wall_s": sorted(wired)[len(wired) // 2],
        "overhead": median - 1.0,
    }


def check_telemetry_overhead(
    pair: Dict, limit: float = TELEMETRY_OVERHEAD_LIMIT
) -> List[str]:
    """Gate the telemetry-off overhead pair (<2% by default)."""
    if pair["overhead"] > limit:
        return [
            f"{pair['scenario']}: telemetry-off median wall clock "
            f"{pair['wired_off_wall_s'] * 1e3:.1f} ms is "
            f"{pair['overhead'] * 100:.1f}% over the baseline "
            f"{pair['baseline_wall_s'] * 1e3:.1f} ms "
            f"(limit {limit * 100:.0f}%)"
        ]
    return []


def format_telemetry_overhead(pair: Dict) -> str:
    return (
        f"telemetry-off overhead ({pair['scenario']}, "
        f"{pair['pairs']} interleaved pairs): baseline "
        f"{pair['baseline_wall_s'] * 1e3:.1f} ms, wired-but-off "
        f"{pair['wired_off_wall_s'] * 1e3:.1f} ms, median pair ratio "
        f"{pair['overhead'] * 100:+.1f}%"
    )


def _hold_once(queue, depth: int, nops: int, seed: int) -> float:
    """One hold-model run: fill to ``depth``, then ``nops`` pop+push
    pairs, each pop rescheduling itself ``+Exp(mean gap)`` ahead.  The
    rng is reseeded per run so every backend replays the identical
    event stream.  Returns the wall seconds for the timed pairs."""
    import random

    rng = random.Random(seed)
    expo = rng.expovariate
    rate = 1.0 / QUEUE_BENCH_MEAN_GAP_NS
    push = queue.push
    pop = queue.pop
    seq = 0
    for _ in range(depth):
        seq += 1
        push((int(expo(rate)) + 1, seq, None, None, ()))
    gc.collect()
    t0 = time.perf_counter()
    for _ in range(nops):
        item = pop()
        seq += 1
        push((item[0] + int(expo(rate)) + 1, seq, None, None, ()))
    return time.perf_counter() - t0


def queue_microbench(
    depths: Sequence[int] = QUEUE_BENCH_DEPTHS,
    nops: int = QUEUE_BENCH_OPS,
    rounds: int = 2,
    seed: int = 42,
) -> Dict:
    """Head-to-head event-queue benchmark: the hold model on each
    backend, adjacent in one process so the per-depth events/s ratio
    cancels host speed.  This is the crossover evidence for the
    calendar-queue tentpole: the heap pays O(log n) sifts that grow
    with depth, the wheel's bucket ops stay flat — and
    :func:`check_queue_microbench` gates that the separation at the
    deepest depth stays above :data:`QUEUE_CROSSOVER_RATIO`."""
    from repro.sim.eventq import BACKENDS

    rows: List[Dict] = []
    for depth in depths:
        walls = {name: [] for name in BACKENDS}
        for r in range(rounds):
            # Alternate order round to round so drift favors neither.
            order = list(BACKENDS) if r % 2 == 0 else list(BACKENDS)[::-1]
            for name in order:
                walls[name].append(
                    _hold_once(BACKENDS[name](), depth, nops, seed)
                )
        best = {name: min(w) for name, w in walls.items()}
        row = {"depth": depth, "ops": nops}
        for name, wall in best.items():
            row[name] = {
                "wall_s": wall,
                "ns_per_op": wall / nops * 1e9,
                "events_per_sec": nops / wall if wall > 0 else 0.0,
            }
        row["wheel_speedup"] = (
            best["heap"] / best["wheel"] if best.get("wheel") else 0.0
        )
        rows.append(row)
    return {"mean_gap_ns": QUEUE_BENCH_MEAN_GAP_NS, "rows": rows}


def check_queue_microbench(
    result: Dict, min_ratio: float = QUEUE_CROSSOVER_RATIO
) -> List[str]:
    """Gate the deepest hold-model depth's wheel-vs-heap events/s."""
    deepest = max(result["rows"], key=lambda r: r["depth"])
    if deepest["wheel_speedup"] < min_ratio:
        return [
            f"eventq hold model at depth {deepest['depth']}: wheel "
            f"{deepest['wheel']['events_per_sec'] / 1e3:.0f} kev/s is only "
            f"{deepest['wheel_speedup']:.2f}x the heap's "
            f"{deepest['heap']['events_per_sec'] / 1e3:.0f} kev/s "
            f"(required {min_ratio:.2f}x)"
        ]
    return []


def format_queue_microbench(result: Dict) -> str:
    headers = [
        "depth", "heap ns/op", "wheel ns/op", "heap kev/s", "wheel kev/s",
        "wheel speedup",
    ]
    body = [
        [
            r["depth"],
            r["heap"]["ns_per_op"],
            r["wheel"]["ns_per_op"],
            r["heap"]["events_per_sec"] / 1e3,
            r["wheel"]["events_per_sec"] / 1e3,
            f"{r['wheel_speedup']:.2f}x",
        ]
        for r in result["rows"]
    ]
    return format_table(
        headers,
        body,
        title="eventq microbenchmark: hold model, pop+reschedule "
        f"(+Exp mean {result['mean_gap_ns']} ns)",
        float_fmt="{:.1f}",
    )


def _host_cpus() -> int:
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        import os

        return os.cpu_count() or 1


def median_of_samples(runs: Sequence[Dict]) -> Dict:
    """Merge ``N`` independent :func:`simperf` results into the
    committed-baseline form: per scenario, the median ``norm_cost`` and
    median ``wall_s`` across the runs (rates re-derived from the median
    wall), each row stamped with ``"samples": N``.

    This is the protocol the baseline note used to describe as a manual
    step ("several runs; take medians") — ``--samples N`` automates it.
    Deterministic per-run facts (event counts, makespan, peak queue
    depth) are asserted identical across samples rather than averaged."""
    from statistics import median

    by_scenario: Dict[str, List[Dict]] = {}
    for run in runs:
        for row in run["rows"]:
            by_scenario.setdefault(row["scenario"], []).append(row)
    rows = []
    for sid, samples in by_scenario.items():
        first = samples[0]
        for row in samples[1:]:
            for key in ("events", "makespan_ns", "peak_queue_depth"):
                assert row[key] == first[key], (sid, key)
        wall = median(r["wall_s"] for r in samples)
        merged = dict(first)
        merged.update(
            wall_s=wall,
            events_per_sec=first["events"] / wall if wall > 0 else 0.0,
            sim_ns_per_wall_s=(
                first["makespan_ns"] / wall if wall > 0 else 0.0
            ),
            norm_cost=median(r["norm_cost"] for r in samples),
            samples=len(samples),
        )
        rows.append(merged)
    return {
        "calibration_wall_s": median(
            run["calibration_wall_s"] for run in runs
        ),
        "host_cpus": runs[0]["host_cpus"],
        "rows": rows,
    }


def simperf(
    ranks: Sequence[int] = SIMPERF_RANKS,
    modes: Sequence[str] = SIMPERF_MODES,
    iters: int = ITERS,
    include_warp_pair: bool = True,
    warp_iters: int = WARP_ITERS,
    repeats: int = 3,
    include_shard_pair: bool = True,
    shard_ranks: int = SHARD_RANKS,
    shard_nshards: int = SHARD_NSHARDS,
    samples: int = 1,
) -> Dict:
    """Run the matrix; returns {"calibration_wall_s", "rows": [...]}.

    Each cell is run ``repeats`` times and the fastest wall kept (the
    standard way to suppress scheduler noise in wall-clock benches).
    The calibration loop runs immediately before every repetition and
    the cell's ``norm_cost`` is the *minimum per-repetition ratio* —
    pairing scenario and calibration under the same instantaneous
    machine state makes the gated metric robust to host-speed drift
    within and across runs.

    ``samples > 1`` repeats the whole matrix that many times and merges
    with :func:`median_of_samples` — the baseline-recording protocol as
    one invocation."""
    if samples > 1:
        return median_of_samples([
            simperf(
                ranks=ranks, modes=modes, iters=iters,
                include_warp_pair=include_warp_pair,
                warp_iters=warp_iters, repeats=repeats,
                include_shard_pair=include_shard_pair,
                shard_ranks=shard_ranks, shard_nshards=shard_nshards,
            )
            for _ in range(samples)
        ])
    calib = min(calibrate() for _ in range(3))
    rows: List[SimPerfRow] = []

    def best(fn) -> SimPerfRow:
        out = None
        norm = None
        for _ in range(repeats):
            c = calibrate()
            row = fn()
            r = row.wall_s / c
            if norm is None or r < norm:
                norm = r
            if out is None or row.wall_s < out.wall_s:
                out = row
        out.norm_cost = norm
        return out

    for n in ranks:
        for mode in modes:
            row = best(lambda n=n, m=mode: run_scenario(n, m, iters))
            row.peak_queue_depth = scenario_metrics(
                n, mode, iters
            )["peak_queue_depth"]
            rows.append(row)
    if include_warp_pair:
        rows.append(best(lambda: run_scenario(
            WARP_RANKS, "warp", warp=False, warp_iters=warp_iters)))
        rows[-1] = SimPerfRow(**{**asdict(rows[-1]), "scenario":
                                 f"{WARP_RANKS}:warp-exact",
                                 "mode": "warp-exact"})
        rows.append(best(lambda: run_scenario(
            WARP_RANKS, "warp", warp=True, warp_iters=warp_iters)))
    if include_shard_pair:
        for mode in (
            "shard-exact",
            f"shard{shard_nshards}",
            f"shard{shard_nshards}-async",
        ):
            rows.append(best(
                lambda m=mode: run_scenario(shard_ranks, m, iters)
            ))
    return {
        "calibration_wall_s": calib,
        "host_cpus": _host_cpus(),
        "rows": [asdict(r) for r in rows],
    }


def simperf_quick(scenarios: Sequence[str] = QUICK_SCENARIOS) -> Dict:
    """The CI perf-smoke subset (same scenario ids as the full matrix,
    same per-repetition calibration pairing as the full run)."""
    calib = min(calibrate() for _ in range(3))
    rows: List[SimPerfRow] = []
    for sid in scenarios:
        n_s, mode = sid.split(":")
        n = int(n_s)
        out = None
        norm = None
        for _ in range(3):
            c = calibrate()
            if mode == "warp":
                row = run_scenario(n, "warp", warp=True)
            else:
                row = run_scenario(n, mode)
            r = row.wall_s / c
            if norm is None or r < norm:
                norm = r
            if out is None or row.wall_s < out.wall_s:
                out = row
        out.norm_cost = norm
        if mode in SIMPERF_MODES:
            out.peak_queue_depth = scenario_metrics(
                n, mode
            )["peak_queue_depth"]
        rows.append(out)
    return {
        "calibration_wall_s": calib,
        "host_cpus": _host_cpus(),
        "rows": [asdict(r) for r in rows],
    }


def shard_pair(
    nranks: int = SHARD_RANKS,
    nshards: int = SHARD_NSHARDS,
    iters: int = ITERS,
    repeats: int = 1,
    flush_mode: str = "sync",
) -> Dict:
    """Run the sharded speedup pair: the ``nranks`` scenario
    single-process vs ``shards=nshards``, one calibration-paired
    measurement each (the pair is the CI shard smoke — it must fit the
    perf-smoke budget, so no triple repetition at this scale).

    ``flush_mode="async"`` runs the async-flush variant of both sides:
    the sharded run then exercises the mirrored-flow protocol (every
    background PFS flush visible to all shards), so its speedup gates
    that the coordination cost does not eat the parallelism."""
    suffix = "-async" if flush_mode == "async" else ""
    calib = min(calibrate() for _ in range(2))
    rows: List[SimPerfRow] = []
    for mode in (f"shard-exact{suffix}", f"shard{nshards}{suffix}"):
        out = None
        norm = None
        for _ in range(repeats):
            c = calibrate()
            row = run_scenario(nranks, mode, iters)
            r = row.wall_s / c
            if norm is None or r < norm:
                norm = r
            if out is None or row.wall_s < out.wall_s:
                out = row
        out.norm_cost = norm
        rows.append(out)
    exact, sharded = rows
    return {
        "calibration_wall_s": calib,
        "host_cpus": _host_cpus(),
        "nshards": nshards,
        "speedup": (
            exact.norm_cost / sharded.norm_cost
            if sharded.norm_cost > 0 else 0.0
        ),
        "rows": [asdict(r) for r in rows],
    }


def check_shard_speedup(
    pair: Dict, target: float = SHARD_SPEEDUP_TARGET
) -> List[str]:
    """Gate the shard pair's wall-clock speedup, scaled to the host.

    ``target`` (3x) applies when the host has at least as many cores as
    shards; smaller multi-core hosts are held to 2x; a single-core host
    cannot run worker processes in parallel at all, so the pair is
    informational there (empty problem list — the exactness tests, not
    wall-clock, carry the correctness guarantee)."""
    cpus = pair["host_cpus"]
    nshards = pair["nshards"]
    if cpus < 2:
        return []
    required = target if cpus >= nshards else min(target, 2.0)
    if pair["speedup"] < required:
        return [
            f"{pair['rows'][1]['scenario']}: sharded speedup "
            f"{pair['speedup']:.2f}x < required {required:.2f}x "
            f"(host has {cpus} cpus for {nshards} shards)"
        ]
    return []


def format_shard_pair(pair: Dict) -> str:
    body = format_simperf(pair)
    return (
        body
        + f"\nsharded speedup: {pair['speedup']:.2f}x "
        f"({pair['nshards']} shards on {pair['host_cpus']} cpus)"
    )


def check_regression(
    current: Dict, baseline: Dict, threshold: float = REGRESSION_THRESHOLD
) -> List[str]:
    """Compare normalized costs against the committed baseline.

    Returns a list of human-readable violations (empty = pass).  A
    scenario regresses when its machine-normalized cost exceeds the
    baseline's by more than ``threshold``."""
    base_by = {r["scenario"]: r for r in baseline["rows"]}
    problems: List[str] = []
    for row in current["rows"]:
        base = base_by.get(row["scenario"])
        if base is None or base.get("norm_cost", 0) <= 0:
            continue
        ratio = row["norm_cost"] / base["norm_cost"]
        if ratio > 1.0 + threshold:
            problems.append(
                f"{row['scenario']}: normalized cost {row['norm_cost']:.2f} "
                f"is {ratio:.2f}x the committed baseline "
                f"{base['norm_cost']:.2f} (threshold {1 + threshold:.2f}x)"
            )
    return problems


def format_simperf(result: Dict, baseline: Optional[Dict] = None) -> str:
    base_by = (
        {r["scenario"]: r for r in baseline["rows"]} if baseline else {}
    )
    headers = [
        "scenario", "iters", "wall (s)", "events", "kev/s",
        "sim s/wall s", "norm cost", "peak q", "warped",
    ]
    if base_by:
        headers.append("vs baseline")
    out = []
    for r in result["rows"]:
        line = [
            r["scenario"], r["iters"], r["wall_s"], r["events"],
            r["events_per_sec"] / 1e3, r["sim_ns_per_wall_s"] / 1e9,
            r["norm_cost"],
            r.get("peak_queue_depth", 0) or "-",
            r["warped_iterations"] or "-",
        ]
        if base_by:
            b = base_by.get(r["scenario"])
            line.append(
                f"{r['norm_cost'] / b['norm_cost']:.2f}x" if b else "-"
            )
        out.append(line)
    return format_table(
        headers,
        out,
        title="simperf: simulator wall-clock performance "
        f"(calibration {result['calibration_wall_s'] * 1e3:.1f} ms)",
        float_fmt="{:.3f}",
    )


def load_baseline(path: str) -> Optional[Dict]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
