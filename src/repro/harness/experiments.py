"""Experiment drivers for every table and figure in the paper's evaluation.

Scale model: the paper runs 512 ranks on 64 nodes (8 ranks/node).  The
drivers default to ``REPRO_BENCH_RANKS`` (128) ranks with 8 ranks/node;
the cluster-count sweeps scale accordingly (…, nnodes = "log all
inter-node", nranks = "pure message logging").  Set
``REPRO_BENCH_RANKS=512`` for paper scale.

Efficiency note: Table 1 and Figure 5 derive *all* clustering
configurations from a single logging run per application — log content
per channel is independent of the cluster map, only the inter-cluster
predicate changes — exactly mirroring how the paper collects
communication statistics once and clusters offline ([30], section 6.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import get_app
from repro.apps.calibration import PAPER_NET
from repro.ckptdata.regions import WriteLocalityProfile
from repro.baselines.hydee import HydEEPlan, run_hydee_recovery
from repro.clustering.partition import cluster_by_communication, cut_bytes
from repro.core.clusters import ClusterMap
from repro.core.emulated import ReplayPlan
from repro.core.protocol import SPBC, SPBCConfig
from repro.harness.runner import (
    RunResult,
    run_emulated_recovery,
    run_native,
    run_online_failure,
    run_spbc,
)
from repro.sim.network import Topology
from repro.storage.backend import StorageBackend, TieredBackend, make_backend
from repro.storage.model import pfs_tier, ram_tier
from repro.storage.multilevel import MultiLevelPlan, optimal_interval_rounds
from repro.util.stats import summarize
from repro.util.table import format_table
from repro.util.units import SEC, mb_per_s

PAPER_APPS = ["amg", "cm1", "gtc", "milc", "minife", "minighost"]
NAS_APPS = ["bt", "lu", "mg", "sp"]

#: Per-app factory arguments used by the benchmark drivers (paper-
#: calibrated defaults; see repro/apps/calibration.py for the targets).
BENCH_PARAMS: Dict[str, dict] = {
    "amg": dict(cycles=6),
    "cm1": dict(iters=6),
    "gtc": dict(iters=8),
    "milc": dict(iters=10),
    "minife": dict(iters=16),
    "minighost": dict(iters=4),
    "bt": dict(iters=30),
    "lu": dict(iters=20),
    "mg": dict(cycles=15),
    "sp": dict(iters=30),
}


def bench_nranks(default: int = 128) -> int:
    return int(os.environ.get("REPRO_BENCH_RANKS", default))


def bench_ranks_per_node() -> int:
    return int(os.environ.get("REPRO_BENCH_RPN", 8))


def cluster_counts(nranks: int, ranks_per_node: int) -> List[int]:
    """The Table 1 sweep scaled to the current world size: the paper's
    {2, 4, 8, 16, 64 (= nodes), 512 (= ranks)} at 512/64."""
    nnodes = nranks // ranks_per_node
    counts = [k for k in (2, 4, 8, 16) if k < nnodes]
    counts += [nnodes, nranks]
    return sorted(set(counts))


def app_factory(name: str, overrides: Optional[dict] = None):
    params = dict(BENCH_PARAMS.get(name, {}))
    if overrides:
        params.update(overrides)
    return get_app(name).factory(**params)


def app_profile(name: str) -> WriteLocalityProfile:
    """The app's write-locality profile (synthetic default when the app
    module didn't calibrate one) — guarantees every registered app has a
    *nonzero* modeled checkpoint payload, so cost-modeled backends never
    silently charge for zero bytes."""
    return get_app(name).profile


# ----------------------------------------------------------------------
# Shared: one logging run per app + clustering maps for every k
# ----------------------------------------------------------------------

@dataclass
class LoggingRun:
    """A failure-free run that logged every channel (singleton clusters),
    from which any clustering configuration can be analyzed."""

    name: str
    nranks: int
    ranks_per_node: int
    result: RunResult
    bytes_matrix: np.ndarray  # directed bytes, from the trace
    maps: Dict[int, ClusterMap] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.result.makespan_ns

    def clustering_for(self, k: int) -> ClusterMap:
        """The paper's pipeline: node-constrained partition minimizing
        logged volume; k == nranks means pure message logging."""
        cm = self.maps.get(k)
        if cm is None:
            nnodes = self.nranks // self.ranks_per_node
            sym = self.bytes_matrix + self.bytes_matrix.T
            if k >= self.nranks:
                cm = ClusterMap.singletons(self.nranks)
            elif k <= nnodes:
                topo = Topology(self.nranks, self.ranks_per_node)
                cm = cluster_by_communication(sym, k, topology=topo)
            else:
                # More clusters than nodes: node alignment is impossible
                # (like the paper's pure-logging column); partition ranks.
                cm = cluster_by_communication(sym, k, topology=None)
            self.maps[k] = cm
        return cm

    def per_rank_logged_bytes(self, cm: ClusterMap) -> np.ndarray:
        """Bytes each rank would log under cluster map ``cm``."""
        assign = np.asarray(cm.cluster_of)
        cross = assign[:, None] != assign[None, :]
        return (self.bytes_matrix * cross).sum(axis=1)


def make_logging_run(
    name: str,
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[dict] = None,
    seed: int = 0,
) -> LoggingRun:
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    app = app_factory(name, overrides)
    res = run_spbc(
        app,
        n,
        ClusterMap.singletons(n),
        ranks_per_node=rpn,
        net_params=PAPER_NET,
        seed=seed,
    )
    return LoggingRun(
        name=name,
        nranks=n,
        ranks_per_node=rpn,
        result=res,
        bytes_matrix=res.trace.comm_bytes_matrix(n).astype(np.float64),
    )


# ----------------------------------------------------------------------
# Table 1 — log growth rate per process (MB/s), Avg and Max
# ----------------------------------------------------------------------

@dataclass
class Table1Row:
    app: str
    k: int
    avg_mb_s: float
    max_mb_s: float
    min_mb_s: float


def table1_log_growth(
    apps: Sequence[str] = PAPER_APPS,
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    counts: Optional[Sequence[int]] = None,
    overrides: Optional[Dict[str, dict]] = None,
) -> List[Table1Row]:
    rows: List[Table1Row] = []
    for name in apps:
        run = make_logging_run(
            name, nranks, ranks_per_node, (overrides or {}).get(name)
        )
        ks = counts or cluster_counts(run.nranks, run.ranks_per_node)
        for k in ks:
            cm = run.clustering_for(k)
            logged = run.per_rank_logged_bytes(cm)
            rates = [mb_per_s(int(b), run.duration_ns) for b in logged]
            stats = summarize(rates)
            rows.append(
                Table1Row(
                    app=name,
                    k=k,
                    avg_mb_s=stats.mean,
                    max_mb_s=stats.maximum,
                    min_mb_s=stats.minimum,
                )
            )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    ks = sorted({r.k for r in rows})
    apps = sorted({r.app for r in rows})
    by = {(r.app, r.k): r for r in rows}
    out_rows = []
    for k in ks:
        row: List[object] = [k]
        for a in apps:
            r = by.get((a, k))
            row += [r.avg_mb_s if r else float("nan"), r.max_mb_s if r else float("nan")]
        out_rows.append(row)
    headers = ["clusters"]
    for a in apps:
        headers += [f"{a}.avg", f"{a}.max"]
    return format_table(
        headers,
        out_rows,
        title="Table 1: log growth rate per process (MB/s)",
    )


# ----------------------------------------------------------------------
# Table 2 — failure-free overhead of SPBC vs native MPI
# ----------------------------------------------------------------------

@dataclass
class Table2Row:
    app: str
    k: int
    native_ns: int
    spbc_ns: int

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.spbc_ns - self.native_ns) / self.native_ns


def table2_failure_free_overhead(
    apps: Sequence[str] = PAPER_APPS,
    ks: Sequence[int] = (16,),
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
) -> List[Table2Row]:
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    rows: List[Table2Row] = []
    for name in apps:
        ov = (overrides or {}).get(name)
        app = app_factory(name, ov)
        native = run_native(app, n, ranks_per_node=rpn, net_params=PAPER_NET, trace=False)
        run = make_logging_run(name, n, rpn, ov)
        for k in ks:
            cm = run.clustering_for(k)
            spbc = run_spbc(
                app, n, cm, ranks_per_node=rpn, net_params=PAPER_NET, trace=False
            )
            rows.append(
                Table2Row(
                    app=name, k=k, native_ns=native.makespan_ns, spbc_ns=spbc.makespan_ns
                )
            )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    return format_table(
        ["app", "clusters", "native (ms)", "SPBC (ms)", "overhead %"],
        [
            [r.app, r.k, r.native_ns / 1e6, r.spbc_ns / 1e6, r.overhead_pct]
            for r in rows
        ],
        title="Table 2: failure-free overhead of SPBC",
        float_fmt="{:.3f}",
    )


# ----------------------------------------------------------------------
# Checkpoint cost — what the paper excludes: write time per tier plan
# ----------------------------------------------------------------------

#: Tier plans swept by the checkpoint-cost experiment.  "memory" is the
#: paper's free store; the others execute multi-level plans with modeled
#: costs (the PFS's aggregate bandwidth is shared by every writer).
CKPT_PLANS: Dict[str, str] = {
    "memory": "memory",
    "local": "tiered:ram@1,ssd@2",
    "multilevel": "tiered:ram@1,ssd@2,pfs@4",
    "pfs-only": "tiered:pfs@1",
    "partner": "partner:ram@1,partner@1,pfs@4",
}


@dataclass
class CkptCostRow:
    app: str
    k: int
    plan: str
    nranks: int
    rounds: int
    ckpt_mb_avg: float  # modeled checkpoint size per rank (state + logs)
    write_ms_per_rank: float  # modeled write time charged per rank
    makespan_ns: int
    baseline_ns: int  # same run on the free in-memory backend

    @property
    def slowdown_pct(self) -> float:
        return 100.0 * (self.makespan_ns - self.baseline_ns) / self.baseline_ns


def checkpoint_cost(
    apps: Sequence[str] = ("minighost",),
    ks: Sequence[int] = (4, 16),
    plans: Optional[Dict[str, str]] = None,
    checkpoint_every: int = 2,
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
) -> List[CkptCostRow]:
    """Sweep tier plans × cluster counts with checkpointing enabled.

    Every configuration runs the same app; the in-memory backend is the
    per-k baseline (identical to a run without any storage model), so a
    row's slowdown is purely the modeled checkpoint write time."""
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    plans = plans or CKPT_PLANS
    rows: List[CkptCostRow] = []
    for name in apps:
        app = app_factory(name, (overrides or {}).get(name))
        for k in ks:
            if k > n:
                continue
            cm = ClusterMap.block(n, k)
            results: Dict[str, Tuple[RunResult, StorageBackend]] = {}
            for plan_name, spec in plans.items():
                backend = make_backend(spec)
                cfg = SPBCConfig(
                    clusters=cm,
                    checkpoint_every=checkpoint_every,
                    storage=backend,
                    # Every registered app has a nonzero modeled payload
                    # (write-locality profile or synthetic default), so
                    # tiered plans never charge for zero-byte checkpoints.
                    state_nbytes=app_profile(name).total_bytes,
                )
                res = run_spbc(
                    app, n, cm, config=cfg,
                    ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
                )
                results[plan_name] = (res, backend)
            free = [
                res.makespan_ns
                for res, b in results.values()
                if not isinstance(b, TieredBackend)
            ]
            base_ns = min(free) if free else min(
                res.makespan_ns for res, _ in results.values()
            )
            for plan_name, (res, backend) in results.items():
                rounds = max(
                    (len(backend.rounds_of(r)) for r in range(n)), default=0
                )
                rows.append(
                    CkptCostRow(
                        app=name,
                        k=k,
                        plan=plan_name,
                        nranks=n,
                        rounds=rounds,
                        ckpt_mb_avg=(
                            backend.bytes_written / max(1, backend.writes) / 1e6
                        ),
                        write_ms_per_rank=backend.write_ns_total / n / 1e6,
                        makespan_ns=res.makespan_ns,
                        baseline_ns=base_ns,
                    )
                )
    return rows


def format_checkpoint_cost(rows: List[CkptCostRow]) -> str:
    return format_table(
        ["app", "clusters", "plan", "rounds", "ckpt MB (avg)",
         "write ms/rank", "makespan (ms)", "slowdown %"],
        [
            [r.app, r.k, r.plan, r.rounds, r.ckpt_mb_avg,
             r.write_ms_per_rank, r.makespan_ns / 1e6, r.slowdown_pct]
            for r in rows
        ],
        title="Checkpoint cost: tier plans x cluster counts "
        "(write time charged to the simulation clock)",
        float_fmt="{:.3f}",
    )


# ----------------------------------------------------------------------
# Figure 5 — recovery (rework) time normalized to failure-free
# ----------------------------------------------------------------------

@dataclass
class Fig5Row:
    app: str
    k: int
    rework_ns: int
    native_ns: int
    replayed_records: int
    replayed_bytes: int

    @property
    def normalized(self) -> float:
        return self.rework_ns / self.native_ns


def fig5_recovery(
    apps: Sequence[str] = PAPER_APPS,
    ks: Sequence[int] = (2, 4, 8, 16),
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
    window: int = 50,
) -> List[Fig5Row]:
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    rows: List[Fig5Row] = []
    for name in apps:
        ov = (overrides or {}).get(name)
        app = app_factory(name, ov)
        native = run_native(app, n, ranks_per_node=rpn, net_params=PAPER_NET, trace=False)
        run = make_logging_run(name, n, rpn, ov)
        for k in ks:
            if k > run.nranks:
                continue
            cm = run.clustering_for(k)
            plan = ReplayPlan.from_run(
                run.result.hooks, run.duration_ns, clusters=cm
            )
            rec = run_emulated_recovery(
                app,
                n,
                cm,
                plan,
                reference_ns=native.makespan_ns,
                window=window,
                ranks_per_node=rpn,
                net_params=PAPER_NET,
            )
            rows.append(
                Fig5Row(
                    app=name,
                    k=k,
                    rework_ns=rec.rework_ns,
                    native_ns=native.makespan_ns,
                    replayed_records=plan.total_records,
                    replayed_bytes=plan.total_bytes,
                )
            )
    return rows


def format_fig5(rows: List[Fig5Row]) -> str:
    ks = sorted({r.k for r in rows})
    apps = sorted({r.app for r in rows})
    by = {(r.app, r.k): r for r in rows}
    out = []
    for a in apps:
        line: List[object] = [a]
        for k in ks:
            r = by.get((a, k))
            line.append(r.normalized if r else float("nan"))
        out.append(line)
    return format_table(
        ["app"] + [f"{k} clusters" for k in ks],
        out,
        title="Figure 5: recovery time normalized to failure-free execution "
        "(MPICH native = 1.0)",
        float_fmt="{:.3f}",
    )


# ----------------------------------------------------------------------
# Figure 6 — SPBC vs HydEE recovery on the NAS benchmarks
# ----------------------------------------------------------------------

@dataclass
class Fig6Row:
    app: str
    spbc_normalized: float
    hydee_normalized: float
    hydee_grants: int
    records: int


def fig6_hydee_vs_spbc(
    apps: Sequence[str] = NAS_APPS,
    k: int = 8,
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
) -> List[Fig6Row]:
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    rows: List[Fig6Row] = []
    for name in apps:
        ov = (overrides or {}).get(name)
        app = app_factory(name, ov)
        native = run_native(app, n, ranks_per_node=rpn, net_params=PAPER_NET, trace=False)
        # Phase 1 with the actual k-cluster map (the trace also yields the
        # causal levels HydEE needs).
        run = make_logging_run(name, n, rpn, ov)
        cm = run.clustering_for(k)
        plan = ReplayPlan.from_run(run.result.hooks, run.duration_ns, clusters=cm)
        # The HydEE plan (dependency vectors + tracked set) is derived
        # against the same k-cluster map from the same phase-1 trace.
        hplan = HydEEPlan.from_run(
            run.result.hooks, run.result.trace, run.duration_ns, clusters=cm
        )
        spbc_rec = run_emulated_recovery(
            app, n, cm, plan,
            reference_ns=native.makespan_ns, ranks_per_node=rpn, net_params=PAPER_NET,
        )
        hydee_rec = run_hydee_recovery(
            app, n, cm, hplan,
            reference_ns=native.makespan_ns, ranks_per_node=rpn, net_params=PAPER_NET,
        )
        rows.append(
            Fig6Row(
                app=name,
                spbc_normalized=spbc_rec.normalized,
                hydee_normalized=hydee_rec.normalized,
                hydee_grants=hydee_rec.grants,
                records=plan.total_records,
            )
        )
    return rows


def format_fig6(rows: List[Fig6Row]) -> str:
    return format_table(
        ["app", "SPBC", "HydEE", "HydEE/SPBC", "replayed msgs"],
        [
            [r.app, r.spbc_normalized, r.hydee_normalized,
             r.hydee_normalized / r.spbc_normalized, r.records]
            for r in rows
        ],
        title="Figure 6: recovery time normalized to failure-free "
        "(8 clusters, NAS benchmarks)",
        float_fmt="{:.3f}",
    )


# ----------------------------------------------------------------------
# Blast radius — per-node failures across storage plans (what PR 1's
# whole-cluster model hid: partner copies survive a single-node loss)
# ----------------------------------------------------------------------

#: Storage plans compared by the blast-radius experiment.  Same levels
#: and periods, with and without the buddy-node mirror, so the only
#: difference is where the volatile copies live.
BLAST_PLANS: Dict[str, str] = {
    "no-partner": "tiered:ram@1,pfs@4",
    "partner": "partner:ram@1,partner@1,pfs@4",
}


@dataclass
class BlastRadiusRow:
    app: str
    plan: str
    kind: str  # "process" | "node"
    nranks: int
    nnodes: int
    failed_node: Optional[int]
    restarted_ranks: int
    rounds_at_failure: int  # rounds committed before the crash
    restarted_from_round: int
    restored_tier: Optional[str]
    invalidated_copies: int
    makespan_ns: int
    baseline_ns: int  # failure-free run on the same plan

    @property
    def lost_rounds(self) -> int:
        return self.rounds_at_failure - self.restarted_from_round

    @property
    def recovery_overhead_pct(self) -> float:
        return 100.0 * (self.makespan_ns - self.baseline_ns) / self.baseline_ns


def blastradius(
    apps: Sequence[str] = ("minighost",),
    k: Optional[int] = None,
    plans: Optional[Dict[str, str]] = None,
    checkpoint_every: "int | str" = 2,
    frac: float = 0.6,
    fail_rank: int = 0,
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
    mtbf_ns: int = int(0.5 * SEC),
) -> List[BlastRadiusRow]:
    """Inject one process and one node failure per storage plan and
    report how far each configuration rolls back.

    The probe run (failure-free, same plan) times the injection at
    ``frac`` of the makespan and tells us how many rounds had committed
    by then; the failure runs report the restart round, the tier it was
    read from, and the copies the node loss invalidated."""
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    k = k or max(2, n // rpn)
    plans = plans or BLAST_PLANS
    rows: List[BlastRadiusRow] = []
    for name in apps:
        app = app_factory(name, (overrides or {}).get(name))
        cm = ClusterMap.block(n, k)
        for plan_name, spec in plans.items():
            cfg = lambda: SPBCConfig(
                clusters=cm,
                checkpoint_every=checkpoint_every,
                mtbf_ns=mtbf_ns,
                storage=make_backend(spec),
                state_nbytes=app_profile(name).total_bytes,
            )
            probe = run_spbc(
                app, n, cm, config=cfg(),
                ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
            )
            fail_at = max(1, int(probe.makespan_ns * frac))
            backend = probe.hooks.storage
            # A round is committed only once its write burst finished
            # (taken_at_ns stamps the burst's *start*): count rounds the
            # failure run could actually have restored.
            rounds_before = []
            for rnd in backend.rounds_of(fail_rank):
                ckpt = backend.retrieve(fail_rank, rnd).ckpt
                committed_at = ckpt.taken_at_ns + backend.write_cost_ns(
                    ckpt, concurrent_writers=n
                )
                if committed_at < fail_at:
                    rounds_before.append(rnd)
            rounds_at_failure = max(rounds_before, default=0)
            for kind in ("process", "node"):
                out = run_online_failure(
                    app, n, cm,
                    fail_at_ns=fail_at, fail_rank=fail_rank,
                    config=cfg(), failure_kind=kind,
                    ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
                )
                ev = out.manager.failures[0]
                rows.append(
                    BlastRadiusRow(
                        app=name,
                        plan=plan_name,
                        kind=kind,
                        nranks=n,
                        nnodes=out.world.topology.nnodes,
                        failed_node=ev.node,
                        restarted_ranks=len(out.restarted_ranks),
                        rounds_at_failure=rounds_at_failure,
                        restarted_from_round=ev.restarted_from_round,
                        restored_tier=ev.restored_tier,
                        invalidated_copies=ev.invalidated_copies,
                        makespan_ns=out.makespan_ns,
                        baseline_ns=probe.makespan_ns,
                    )
                )
    return rows


def format_blastradius(rows: List[BlastRadiusRow]) -> str:
    return format_table(
        ["app", "plan", "kind", "node", "restarted", "rounds", "from",
         "lost", "tier", "invalidated", "recovery %"],
        [
            [r.app, r.plan, r.kind,
             "-" if r.failed_node is None else r.failed_node,
             r.restarted_ranks, r.rounds_at_failure,
             r.restarted_from_round, r.lost_rounds,
             r.restored_tier or "scratch", r.invalidated_copies,
             r.recovery_overhead_pct]
            for r in rows
        ],
        title="Blast radius: per-node failures vs storage plans "
        "(partner copies survive a single-node loss)",
        float_fmt="{:.2f}",
    )


# ----------------------------------------------------------------------
# Auto checkpoint interval — Young/Daly cadence vs the analytic optimum
# ----------------------------------------------------------------------

@dataclass
class AutoIntervalRow:
    app: str
    plan: str
    cluster: int
    every: int  # interval the cadence settled on (iterations)
    iter_ns: float  # measured iteration time
    ckpt_cost_ns: int  # modeled write cost per checkpoint
    t_opt_ns: int  # Young's sqrt(2*C*MTBF)
    commits: int
    mtbf_ns: int  # the MTBF the cadence was configured with

    @property
    def predicted_every(self) -> int:
        """The analytic interval in iterations, for comparison."""
        if self.iter_ns <= 0 or self.ckpt_cost_ns <= 0:
            return 1
        return optimal_interval_rounds(
            self.ckpt_cost_ns, self.mtbf_ns, self.iter_ns
        )


def auto_interval(
    apps: Sequence[str] = ("minighost",),
    k: Optional[int] = None,
    plan: str = "tiered:ram@1,pfs@4",
    mtbf_ns: int = int(0.5 * SEC),
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
) -> List[AutoIntervalRow]:
    """Run with ``checkpoint_every="auto"`` and report, per cluster, the
    cadence the Young/Daly controller settled on next to the analytic
    optimum it was chasing."""
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    k = k or max(2, n // rpn)
    rows: List[AutoIntervalRow] = []
    for name in apps:
        app = app_factory(name, (overrides or {}).get(name))
        cm = ClusterMap.block(n, k)
        cfg = SPBCConfig(
            clusters=cm,
            checkpoint_every="auto",
            mtbf_ns=mtbf_ns,
            storage=make_backend(plan),
            state_nbytes=app_profile(name).total_bytes,
        )
        res = run_spbc(
            app, n, cm, config=cfg,
            ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
        )
        for cluster, rep in res.hooks.auto_cadence_report().items():
            rows.append(
                AutoIntervalRow(
                    app=name,
                    plan=plan,
                    cluster=cluster,
                    every=rep["every"],
                    iter_ns=rep["iter_ns"],
                    ckpt_cost_ns=rep["ckpt_cost_ns"],
                    t_opt_ns=rep["t_opt_ns"],
                    commits=rep["commits"],
                    mtbf_ns=mtbf_ns,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Delta chains — incremental vs full checkpoint plans (bytes written,
# recovery cost with chain-aware restarts)
# ----------------------------------------------------------------------

#: Data-plane modes compared by the deltachain experiment: full payloads
#: every round vs deltas with periodic fulls and deflate-class
#: compression.
DELTACHAIN_MODES: Dict[str, str] = {
    "full": "full",
    "incr": "incr:4:zlib-like",
}

#: Default app pair: both have large read-mostly regions (the assembled
#: stiffness matrix; the gauge links), the regime where incremental
#: checkpoints pay.
DELTACHAIN_APPS = ("minife", "milc")


@dataclass
class DeltaChainRow:
    app: str
    mode: str  # key into DELTACHAIN_MODES
    nranks: int
    rounds: int  # checkpoint rounds committed in the probe run
    full_payloads: int
    delta_payloads: int
    raw_mb: float  # uncompressed bytes handed to the data plane
    written_mb: float  # bytes actually written across all tiers
    compress_ms_per_rank: float
    write_ms_per_rank: float
    makespan_ns: int  # failure-free makespan under this mode
    fail_makespan_ns: int  # makespan of the node-failure run
    restarted_from_round: int
    restored_tier: Optional[str]
    restore_read_ns: int  # chain-aware restart read burst


def deltachain(
    apps: Sequence[str] = DELTACHAIN_APPS,
    k: Optional[int] = None,
    plan: str = "tiered:ram@1,pfs@4",
    modes: Optional[Dict[str, str]] = None,
    checkpoint_every: int = 2,
    frac: float = 0.85,
    fail_rank: int = 0,
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
) -> List[DeltaChainRow]:
    """Compare checkpoint data-plane modes on the same app + storage plan.

    Per mode: a failure-free probe run reports the bytes the plan wrote
    (the scalability axis SPBC cares about), then a node failure at
    ``frac`` of the makespan exercises the chain-aware restart — a lost
    delta base must fall back to the newest round with a complete chain.
    """
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    k = k or max(2, n // rpn)
    modes = modes or DELTACHAIN_MODES
    rows: List[DeltaChainRow] = []
    for name in apps:
        app = app_factory(name, (overrides or {}).get(name))
        profile = app_profile(name)
        cm = ClusterMap.block(n, k)
        for mode_name, spec in modes.items():
            def cfg() -> SPBCConfig:
                return SPBCConfig(
                    clusters=cm,
                    checkpoint_every=checkpoint_every,
                    storage=make_backend(plan),
                    state_nbytes=profile.total_bytes,
                )
            probe = run_spbc(
                app, n, cm, config=cfg(), ckpt_data=spec, profile=profile,
                ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
            )
            backend = probe.hooks.storage
            stats = probe.hooks.data_plane_report()
            rounds = max((len(backend.rounds_of(r)) for r in range(n)), default=0)
            fail_at = max(1, int(probe.makespan_ns * frac))
            out = run_online_failure(
                app, n, cm,
                fail_at_ns=fail_at, fail_rank=fail_rank,
                config=cfg(), ckpt_data=spec, profile=profile,
                failure_kind="node",
                ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
            )
            ev = out.manager.failures[0]
            rows.append(
                DeltaChainRow(
                    app=name,
                    mode=mode_name,
                    nranks=n,
                    rounds=rounds,
                    full_payloads=stats["full_payloads"],
                    delta_payloads=stats["delta_payloads"],
                    raw_mb=stats["raw_bytes"] / 1e6,
                    written_mb=backend.bytes_written / 1e6,
                    compress_ms_per_rank=stats["compress_ns"] / n / 1e6,
                    write_ms_per_rank=backend.write_ns_total / n / 1e6,
                    makespan_ns=probe.makespan_ns,
                    fail_makespan_ns=out.makespan_ns,
                    restarted_from_round=ev.restarted_from_round,
                    restored_tier=ev.restored_tier,
                    restore_read_ns=ev.restore_read_ns,
                )
            )
    return rows


def format_deltachain(rows: List[DeltaChainRow]) -> str:
    return format_table(
        ["app", "mode", "rounds", "full", "delta", "raw MB", "written MB",
         "compress ms/rk", "write ms/rk", "makespan (ms)", "from",
         "tier", "restore read (ms)"],
        [
            [r.app, r.mode, r.rounds, r.full_payloads, r.delta_payloads,
             r.raw_mb, r.written_mb, r.compress_ms_per_rank,
             r.write_ms_per_rank, r.makespan_ns / 1e6,
             r.restarted_from_round, r.restored_tier or "scratch",
             r.restore_read_ns / 1e6]
            for r in rows
        ],
        title="Delta chains: incremental vs full checkpoint payloads "
        "(bytes written, chain-aware restart)",
        float_fmt="{:.3f}",
    )


# ----------------------------------------------------------------------
# I/O overlap — sync vs async checkpoint flush on the event-driven
# scheduler: how much app stall the background PFS drain hides, and
# that a crash mid-flush restarts from the last fully drained round
# ----------------------------------------------------------------------

#: Apps with sizable modeled checkpoints (the regime where hiding the
#: PFS burst pays); both must show a strict stall reduction.
IOVERLAP_APPS = ("minife", "milc")


@dataclass
class IOverlapRow:
    app: str
    mode: str  # "sync" | "async"
    nranks: int
    rounds: int  # checkpoint rounds committed (max over ranks)
    stall_ms_per_rank: float  # time stalled inside coordinated ckpts
    write_ms_per_rank: float  # write time charged to the app clock
    bg_write_ms_per_rank: float  # background drain time (async only)
    peak_pfs_writers: int
    makespan_ns: int
    # Mid-flush node-failure run (async mode only; 0/None on sync rows).
    fail_at_ns: int = 0
    inflight_round: int = 0  # PFS round still draining at the crash
    last_drained_round: int = 0  # newest fully drained round before it
    restarted_from_round: int = 0
    cancelled_flushes: int = 0
    restored_tier: Optional[str] = None
    fail_makespan_ns: int = 0


def _ioverlap_backend(
    async_flush: bool, pfs_period: int, pfs_read_gb_s: Optional[float]
) -> TieredBackend:
    """RAM every round + PFS every ``pfs_period``-th, with a realistic
    asymmetric PFS read side for the restart path."""
    plan = MultiLevelPlan(
        tiers=[ram_tier(), pfs_tier(read_gb_s=pfs_read_gb_s)],
        periods=[1, pfs_period],
    )
    return TieredBackend(plan, async_flush=async_flush)


def ioverlap(
    apps: Sequence[str] = IOVERLAP_APPS,
    k: Optional[int] = None,
    checkpoint_every: int = 1,
    pfs_period: int = 4,
    pfs_read_gb_s: Optional[float] = 24.0,
    plan: Optional[str] = None,
    fail_rank: int = 0,
    nranks: Optional[int] = None,
    ranks_per_node: Optional[int] = None,
    overrides: Optional[Dict[str, dict]] = None,
) -> List[IOverlapRow]:
    """Sync vs async checkpoint flush per app.

    Per app: a failure-free probe in each mode measures the per-rank
    checkpoint *stall* (async must shrink it — the PFS burst drains in
    the background overlapping compute), then a node failure injected
    mid-flush exercises the commit semantics: the in-flight PFS copy is
    cancelled with the node and recovery restarts from the last *fully
    drained* round, read back as overlapping flows.

    ``plan`` overrides the built-in ram+pfs plan with a spec string (the
    async variant is derived by appending ``:async``)."""
    n = nranks or bench_nranks()
    rpn = ranks_per_node or bench_ranks_per_node()
    k = k or max(2, n // rpn)
    rows: List[IOverlapRow] = []

    def backend(async_flush: bool) -> StorageBackend:
        if plan is not None:
            return make_backend(plan + ":async" if async_flush else plan)
        return _ioverlap_backend(async_flush, pfs_period, pfs_read_gb_s)

    for name in apps:
        app = app_factory(name, (overrides or {}).get(name))
        cm = ClusterMap.block(n, k)

        def cfg(async_flush: bool) -> SPBCConfig:
            return SPBCConfig(
                clusters=cm,
                checkpoint_every=checkpoint_every,
                storage=backend(async_flush),
                state_nbytes=app_profile(name).total_bytes,
            )

        probes: Dict[str, RunResult] = {}
        for mode, async_flush in (("sync", False), ("async", True)):
            res = run_spbc(
                app, n, cm, config=cfg(async_flush),
                ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
            )
            probes[mode] = res
            b = res.hooks.storage
            rows.append(
                IOverlapRow(
                    app=name,
                    mode=mode,
                    nranks=n,
                    rounds=max(
                        (len(b.rounds_of(r)) for r in range(n)), default=0
                    ),
                    stall_ms_per_rank=(
                        res.hooks.total_checkpoint_stall_ns() / n / 1e6
                    ),
                    write_ms_per_rank=b.write_ns_total / n / 1e6,
                    bg_write_ms_per_rank=(
                        getattr(b, "background_write_ns_total", 0) / n / 1e6
                    ),
                    peak_pfs_writers=res.hooks.peak_concurrent_pfs_writers(),
                    makespan_ns=res.makespan_ns,
                )
            )

        # Mid-flush failure against the async timeline: pick the latest
        # in-flight PFS window of the failing cluster that (a) starts
        # while the app is still running and (b) has a fully drained PFS
        # round before it to fall back to.
        arow = rows[-1]
        ab = probes["async"].hooks.storage
        members = set(cm.members(cm.cluster(fail_rank)))
        windows = [
            w for w in ab.shared_flow_windows() if w[2] in members
        ]
        # Per PFS round, when the cluster's *last* member finished.
        drained_at: Dict[int, int] = {}
        for _s, e, _r, rnd in windows:
            drained_at[rnd] = max(drained_at.get(rnd, 0), e)
        target = None
        for start, end, _rank, rnd in sorted(windows):
            mid = (start + end) // 2
            if mid >= int(probes["async"].makespan_ns * 0.9):
                continue
            drained = [
                r for r, at in drained_at.items() if at < mid and r != rnd
            ]
            if drained:
                target = (mid, rnd, max(drained))
        if target is None:
            continue  # app too short for a two-PFS-round story
        fail_at, inflight_round, last_drained = target
        out = run_online_failure(
            app, n, cm,
            fail_at_ns=fail_at, fail_rank=fail_rank,
            config=cfg(True), failure_kind="node",
            ranks_per_node=rpn, net_params=PAPER_NET, trace=False,
        )
        ev = out.manager.failures[0]
        arow.fail_at_ns = fail_at
        arow.inflight_round = inflight_round
        arow.last_drained_round = last_drained
        arow.restarted_from_round = ev.restarted_from_round
        arow.cancelled_flushes = ev.cancelled_flushes
        arow.restored_tier = ev.restored_tier
        arow.fail_makespan_ns = out.makespan_ns
    return rows


def format_ioverlap(rows: List[IOverlapRow]) -> str:
    return format_table(
        ["app", "mode", "rounds", "stall ms/rk", "write ms/rk",
         "bg ms/rk", "peak pfs", "makespan (ms)", "inflight",
         "drained", "from", "cancelled", "tier"],
        [
            [r.app, r.mode, r.rounds, r.stall_ms_per_rank,
             r.write_ms_per_rank, r.bg_write_ms_per_rank,
             r.peak_pfs_writers, r.makespan_ns / 1e6,
             r.inflight_round or "-", r.last_drained_round or "-",
             r.restarted_from_round or "-",
             r.cancelled_flushes or "-", r.restored_tier or "-"]
            for r in rows
        ],
        title="I/O overlap: sync vs async checkpoint flush "
        "(background PFS drain; crash mid-flush restarts from the "
        "last drained round)",
        float_fmt="{:.3f}",
    )


def format_auto_interval(rows: List[AutoIntervalRow]) -> str:
    return format_table(
        ["app", "cluster", "every", "predicted", "iter (ms)",
         "ckpt cost (ms)", "T_opt (ms)", "commits"],
        [
            [r.app, r.cluster, r.every, r.predicted_every, r.iter_ns / 1e6,
             r.ckpt_cost_ns / 1e6, r.t_opt_ns / 1e6, r.commits]
            for r in rows
        ],
        title="Auto checkpoint interval: Young/Daly cadence vs the "
        "analytic optimum (checkpoint_every='auto')",
        float_fmt="{:.3f}",
    )
