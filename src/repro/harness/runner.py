"""Run orchestration: failure-free runs, emulated recovery (paper §6.4),
and online failure injection.

Application factories have the uniform signature

    app_factory(ctx: RankContext, state: dict | None) -> generator

``state=None`` means a fresh start; a dict is a checkpointed application
state to resume from (online recovery path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Set, Tuple

from typing import Union

from repro.ckptdata.plane import CkptDataPlane, parse_ckpt_data
from repro.ckptdata.regions import WriteLocalityProfile
from repro.core.clusters import ClusterMap
from repro.core.emulated import ReplayPlan, replayer_process, DEFAULT_PREPOST_WINDOW
from repro.core.protocol import SPBC, SPBCConfig
from repro.core.recovery import RecoveryManager
from repro.mpi.context import RankContext
from repro.mpi.hooks import NativeHooks, ProtocolHooks
from repro.mpi.runtime import World
from repro.obs import resolve_telemetry
from repro.sim.network import NetworkParams
from repro.sim.process import ProcessStatus
from repro.sim.warp import WarpConfig, WarpController
from repro.storage.backend import StorageBackend, make_backend

AppFactory = Callable[[RankContext, Optional[dict]], Generator]

StorageSpec = Union[str, StorageBackend, None]

CkptDataSpec = Union[str, CkptDataPlane, None]

#: Warp spec accepted by the runners: a WarpConfig, or a plain int
#: meaning WarpConfig(total_iters=<int>).
WarpSpec = Union[WarpConfig, int, None]


def _install_warp(world, warp: WarpSpec) -> None:
    if warp is None:
        return
    cfg = warp if isinstance(warp, WarpConfig) else WarpConfig(total_iters=warp)
    world.warp = WarpController(world, cfg)


def _resolve_run_telemetry(telemetry, warp: WarpSpec):
    """Resolve a runner's ``telemetry=`` spec, reconciled with warp.

    The steady-state detector refuses to jump while any non-sleep event
    is pending, so a live queue-depth sampler would pin a warp run in
    exact mode forever; sampling is dropped rather than warp."""
    tele = resolve_telemetry(telemetry)
    if tele.enabled and warp is not None and tele.sample_queue:
        tele.sample_queue = False
    return tele


def _resolve_storage(cfg: SPBCConfig, storage: StorageSpec) -> None:
    """Install a storage backend into ``cfg`` (spec strings go through
    the registry)."""
    if storage is None:
        return
    if cfg.storage is not None:
        raise ValueError(
            "storage backend supplied both via config.storage and the "
            "storage argument"
        )
    cfg.storage = make_backend(storage) if isinstance(storage, str) else storage


def _resolve_ckpt_data(
    cfg: SPBCConfig,
    ckpt_data: CkptDataSpec,
    profile: Optional[WriteLocalityProfile] = None,
) -> None:
    """Install a checkpoint data plane into ``cfg`` (spec strings like
    ``"incr:4:zlib-like"`` go through :func:`parse_ckpt_data`;
    ``profile`` supplies the app's write-locality regions)."""
    if ckpt_data is None:
        return
    if cfg.ckpt_data is not None:
        raise ValueError(
            "checkpoint data plane supplied both via config.ckpt_data and "
            "the ckpt_data argument"
        )
    cfg.ckpt_data = (
        parse_ckpt_data(ckpt_data, profile=profile)
        if isinstance(ckpt_data, str)
        else ckpt_data
    )


@dataclass
class RunResult:
    """Outcome of a (failure-free) run."""

    world: World
    hooks: ProtocolHooks
    makespan_ns: int
    finish_ns: Dict[int, int]
    results: Dict[int, object]

    @property
    def trace(self):
        return self.world.trace

    @property
    def telemetry(self):
        """The run's telemetry sink (None when not requested) — same
        shape as ``ShardedRunResult.telemetry``."""
        tele = self.world.telemetry
        return tele if tele.enabled else None


@dataclass
class RecoveryResult:
    """Outcome of an emulated-recovery run (paper §6.4).

    ``rework_ns`` is the time for the recovering cluster to re-execute the
    lost segment; ``normalized`` divides by the reference failure-free
    time (the quantity plotted in Figures 5 and 6)."""

    world: World
    plan: ReplayPlan
    rework_ns: int
    reference_ns: int
    results: Dict[int, object]

    @property
    def normalized(self) -> float:
        return self.rework_ns / self.reference_ns


def _check_world(world: World, allow_killed: bool = False) -> None:
    for r, proc in world.processes.items():
        if proc.exception is not None:
            raise RuntimeError(f"rank {r} raised: {proc.exception!r}") from proc.exception
        if proc.status is not ProcessStatus.DONE and not allow_killed:
            raise RuntimeError(f"rank {r} ended as {proc.status}")


def run_app(
    app_factory: AppFactory,
    nranks: int,
    hooks: Optional[ProtocolHooks] = None,
    ranks_per_node: int = 8,
    seed: int = 0,
    net_params: Optional[NetworkParams] = None,
    trace: bool = True,
    until_ns: Optional[int] = None,
    warp: WarpSpec = None,
    telemetry=None,
) -> RunResult:
    """Launch ``app_factory`` on every rank and run to completion.

    ``warp`` opts into steady-state fast-forward (see
    :mod:`repro.sim.warp`): pass the app's total iteration count (or a
    :class:`WarpConfig`).  Default None = exact mode.

    ``telemetry`` opts into metrics/timeline recording (see
    :mod:`repro.obs`); the default None costs nothing."""
    world = World(
        nranks,
        ranks_per_node=ranks_per_node,
        hooks=hooks,
        seed=seed,
        net_params=net_params,
        trace=trace,
        telemetry=_resolve_run_telemetry(telemetry, warp),
    )
    _install_warp(world, warp)
    for r in range(nranks):
        world.launch(r, app_factory(RankContext(world, r), None))
    world.run(until_ns=until_ns)
    _check_world(world)
    finish = {r: p.finish_time for r, p in world.processes.items()}
    return RunResult(
        world=world,
        hooks=world.hooks,
        makespan_ns=max(finish.values()),
        finish_ns=finish,
        results={r: p.result for r, p in world.processes.items()},
    )


def run_native(app_factory: AppFactory, nranks: int, **kw) -> RunResult:
    """Reference run with unmodified MPI (the paper's normalization base)."""
    return run_app(app_factory, nranks, hooks=NativeHooks(), **kw)


def run_spbc(
    app_factory: AppFactory,
    nranks: int,
    clusters: ClusterMap,
    config: Optional[SPBCConfig] = None,
    storage: StorageSpec = None,
    ckpt_data: CkptDataSpec = None,
    profile: Optional[WriteLocalityProfile] = None,
    warp: WarpSpec = None,
    shards: Optional[int] = None,
    journal=None,
    telemetry=None,
    **kw,
):
    """Failure-free run under SPBC (logging + identifiers active).

    ``storage`` selects the checkpoint backend (a spec string like
    ``"tiered:ram@1,pfs@4"`` or a ``StorageBackend``); ``ckpt_data``
    selects the incremental data plane (``"full"``/``"incr:4:zlib-like"``
    or a ``CkptDataPlane``) with ``profile`` as the app's write-locality
    regions.  Both only matter when ``config.checkpoint_every`` is set.

    ``shards=N`` (N > 1) splits the run over N conservative PDES worker
    processes (see :mod:`repro.harness.parallel`) and returns the merged
    :class:`~repro.harness.parallel.ShardedRunResult` — observables are
    bit-identical to the single-process run.

    ``journal`` (a path, or a :class:`repro.journal.JournalWriter`)
    records the run as an LSN-stamped event journal for strict replay,
    crash-resume, and metric projection (see :mod:`repro.journal`);
    it requires spec-string ``storage``/``ckpt_data`` (live backend
    objects are not serializable into the header)."""
    cfg = config or SPBCConfig(clusters=clusters)
    # Validate *before* the shard dispatch: a mismatched config must
    # fail identically whichever engine runs it.
    if cfg.clusters is not clusters and cfg.clusters != clusters:
        raise ValueError("config.clusters disagrees with the clusters argument")
    if shards is not None and shards > 1:
        from repro.harness.parallel import run_spbc_sharded

        return run_spbc_sharded(
            app_factory,
            nranks,
            clusters,
            shards,
            config=cfg,
            storage=storage,
            ckpt_data=ckpt_data,
            profile=profile,
            warp=warp,
            journal=journal,
            telemetry=telemetry,
            **kw,
        )
    writer = None
    if journal is not None:
        from repro.journal.recorder import prepare_writer

        writer = prepare_writer(
            journal,
            app_factory=app_factory,
            nranks=nranks,
            clusters=clusters,
            config=cfg,
            storage=storage,
            ckpt_data=ckpt_data,
            profile=profile,
            warp=warp,
            ranks_per_node=kw.get("ranks_per_node", 8),
            seed=kw.get("seed", 0),
            net_params=kw.get("net_params"),
            trace=kw.get("trace", True),
        )
    _resolve_storage(cfg, storage)
    _resolve_ckpt_data(cfg, ckpt_data, profile)
    hooks = SPBC(cfg)
    hooks.journal = writer
    result = run_app(
        app_factory, nranks, hooks=hooks, warp=warp, telemetry=telemetry, **kw
    )
    if writer is not None:
        from repro.journal.recorder import (
            commit_history_of,
            finalize_run,
            log_counters_of,
        )

        finalize_run(
            writer,
            failures=(),
            finish_ns=result.finish_ns,
            makespan_ns=result.makespan_ns,
            results=result.results,
            log=log_counters_of(hooks),
            restarts={},
            commit_history=commit_history_of(hooks),
        )
    return result


def run_emulated_recovery(
    app_factory: AppFactory,
    nranks: int,
    clusters: ClusterMap,
    plan: ReplayPlan,
    reference_ns: Optional[int] = None,
    window: int = DEFAULT_PREPOST_WINDOW,
    hooks: Optional[SPBC] = None,
    ranks_per_node: int = 8,
    seed: int = 0,
    net_params: Optional[NetworkParams] = None,
    trace: bool = False,
) -> RecoveryResult:
    """Phase 2 of the paper's recovery methodology.

    Ranks of the recovering cluster re-execute the application; all other
    ranks replay their logged messages (pre-post window per §5.2.2).
    ``reference_ns`` defaults to the plan's failure-free time.
    """
    if window < 1:
        raise ValueError("pre-post window must be >= 1")
    if hooks is None:
        hooks = SPBC(
            SPBCConfig(
                clusters=clusters, emulated_recovering=set(plan.recovering_ranks)
            )
        )
    world = World(
        nranks,
        ranks_per_node=ranks_per_node,
        hooks=hooks,
        seed=seed,
        net_params=net_params,
        trace=trace,
    )
    for r in range(nranks):
        ctx = RankContext(world, r)
        if r in plan.recovering_ranks:
            world.launch(r, app_factory(ctx, None))
        else:
            records = plan.records_by_sender.get(r, [])
            world.launch(r, replayer_process(ctx, records, window=window))
    world.run()
    _check_world(world)
    rework = max(world.processes[r].finish_time for r in plan.recovering_ranks)
    return RecoveryResult(
        world=world,
        plan=plan,
        rework_ns=rework,
        reference_ns=reference_ns or plan.failure_free_ns,
        results={r: p.result for r, p in world.processes.items()},
    )


@dataclass
class OnlineResult:
    """Outcome of an online failure-injection run."""

    world: World
    manager: RecoveryManager
    makespan_ns: int
    results: Dict[int, object]
    restarted_ranks: Set[int]

    @property
    def telemetry(self):
        """The run's telemetry sink (None when not requested)."""
        tele = self.world.telemetry
        return tele if tele.enabled else None


#: One scheduled crash: (time_ns, target rank, failure kind).
FailureSpec = Tuple[int, int, str]


def run_failure_schedule(
    app_factory: AppFactory,
    nranks: int,
    clusters: ClusterMap,
    schedule: Sequence[FailureSpec],
    config: Optional[SPBCConfig] = None,
    restart_delay_ns: int = 2_000_000,
    restart_stagger_ns: int = 0,
    ranks_per_node: int = 8,
    seed: int = 0,
    net_params: Optional[NetworkParams] = None,
    trace: bool = True,
    storage: StorageSpec = None,
    ckpt_data: CkptDataSpec = None,
    profile: Optional[WriteLocalityProfile] = None,
    warp: WarpSpec = None,
    shards: Optional[int] = None,
    journal=None,
    telemetry=None,
):
    """Run with an arbitrary schedule of process/node crashes and full
    online recovery after each (the fuzz harness's entry point).

    ``schedule`` is a sequence of ``(at_ns, rank, kind)`` triples; kinds
    are validated up front so a malformed schedule fails before the run
    starts rather than mid-simulation.

    ``warp`` composes with failure schedules conservatively: pending
    failure events veto the steady-state detector, so fast-forward can
    only engage in the failure-free phase after the last injected crash
    has been fully recovered (and in practice re-executed ranks push the
    iteration horizon down, keeping post-failure warps rare and safe).

    ``shards=N`` (N > 1) runs the schedule under the conservative
    sharded engine (failures mirrored on every shard, restarts driven by
    the owning shard) and returns a
    :class:`~repro.harness.parallel.ShardedRunResult`.

    ``journal`` records the run (path or writer; see
    :mod:`repro.journal`) — sharded and unsharded recordings of the
    same config journal identical canonical event streams."""
    cfg = config or SPBCConfig(clusters=clusters)
    # Same guard as run_spbc, and before the shard dispatch: a config
    # whose cluster map disagrees with the ``clusters`` argument would
    # otherwise silently simulate the config's clustering.
    if cfg.clusters is not clusters and cfg.clusters != clusters:
        raise ValueError("config.clusters disagrees with the clusters argument")
    if shards is not None and shards > 1:
        from repro.harness.parallel import run_spbc_sharded

        return run_spbc_sharded(
            app_factory,
            nranks,
            clusters,
            shards,
            config=cfg,
            storage=storage,
            ckpt_data=ckpt_data,
            profile=profile,
            schedule=schedule,
            restart_delay_ns=restart_delay_ns,
            restart_stagger_ns=restart_stagger_ns,
            ranks_per_node=ranks_per_node,
            seed=seed,
            net_params=net_params,
            trace=trace,
            warp=warp,
            journal=journal,
            telemetry=telemetry,
        )
    writer = None
    if journal is not None:
        from repro.journal.recorder import prepare_writer

        writer = prepare_writer(
            journal,
            app_factory=app_factory,
            nranks=nranks,
            clusters=clusters,
            config=cfg,
            schedule=schedule,
            storage=storage,
            ckpt_data=ckpt_data,
            profile=profile,
            warp=warp,
            restart_delay_ns=restart_delay_ns,
            restart_stagger_ns=restart_stagger_ns,
            ranks_per_node=ranks_per_node,
            seed=seed,
            net_params=net_params,
            trace=trace,
        )
    _resolve_storage(cfg, storage)
    _resolve_ckpt_data(cfg, ckpt_data, profile)
    hooks = SPBC(cfg)
    hooks.journal = writer
    world = World(
        nranks,
        ranks_per_node=ranks_per_node,
        hooks=hooks,
        seed=seed,
        net_params=net_params,
        trace=trace,
        telemetry=_resolve_run_telemetry(telemetry, warp),
    )
    _install_warp(world, warp)
    manager = RecoveryManager(
        world,
        hooks,
        app_factory,
        restart_delay_ns=restart_delay_ns,
        restart_stagger_ns=restart_stagger_ns,
    )
    manager.journal = writer
    for r in range(nranks):
        world.launch(r, app_factory(RankContext(world, r), None))
    for at_ns, rank, kind in schedule:
        manager.inject_failure(at_ns, rank, kind=kind)
    world.run()
    _check_world(world)
    finish = {r: p.finish_time for r, p in world.processes.items()}
    results = {r: p.result for r, p in world.processes.items()}
    if writer is not None:
        from repro.journal.recorder import (
            commit_history_of,
            finalize_run,
            log_counters_of,
        )

        finalize_run(
            writer,
            failures=manager.failures,
            finish_ns=finish,
            makespan_ns=max(finish.values()),
            results=results,
            log=log_counters_of(hooks),
            restarts=dict(manager.restarts),
            commit_history=commit_history_of(hooks),
        )
    return OnlineResult(
        world=world,
        manager=manager,
        makespan_ns=max(finish.values()),
        results=results,
        restarted_ranks=set(manager.restarts),
    )


def run_online_failure(
    app_factory: AppFactory,
    nranks: int,
    clusters: ClusterMap,
    fail_at_ns: int,
    fail_rank: int = 0,
    config: Optional[SPBCConfig] = None,
    restart_delay_ns: int = 2_000_000,
    restart_stagger_ns: int = 0,
    ranks_per_node: int = 8,
    seed: int = 0,
    net_params: Optional[NetworkParams] = None,
    trace: bool = True,
    failure_kind: str = "process",
    storage: StorageSpec = None,
    ckpt_data: CkptDataSpec = None,
    profile: Optional[WriteLocalityProfile] = None,
    warp: WarpSpec = None,
    shards: Optional[int] = None,
    journal=None,
    telemetry=None,
):
    """Run with a single crash at ``fail_at_ns`` and full online recovery
    (Algorithm 1 lines 16-26) — sugar over :func:`run_failure_schedule`,
    forwarding every knob the schedule path has (stagger, warp, shards,
    journal), so single-failure callers are not a feature island.

    ``failure_kind="node"`` kills the physical node hosting
    ``fail_rank``: checkpoint copies hosted there in non-surviving tiers
    are invalidated and the restart falls back to the deepest surviving
    tier (see :class:`~repro.core.recovery.RecoveryManager`)."""
    return run_failure_schedule(
        app_factory,
        nranks,
        clusters,
        [(fail_at_ns, fail_rank, failure_kind)],
        config=config,
        restart_delay_ns=restart_delay_ns,
        restart_stagger_ns=restart_stagger_ns,
        ranks_per_node=ranks_per_node,
        seed=seed,
        net_params=net_params,
        trace=trace,
        storage=storage,
        ckpt_data=ckpt_data,
        profile=profile,
        warp=warp,
        shards=shards,
        journal=journal,
        telemetry=telemetry,
    )
