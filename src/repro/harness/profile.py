"""IPM-style communication profiling.

The paper explains the Figure 5 recovery speedups with IPM profiles
("three of the applications spend less than 10% of their time on
communication ... AMG spends more than 50%", section 6.4).  This module
computes the same breakdown from a run: per-rank time splits into
application compute and everything else (MPI waits, transfers, protocol
work), plus the inter- vs intra-cluster share of the communicated bytes
— the two quantities that predict an application's recovery behaviour
under SPBC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.clusters import ClusterMap
from repro.harness.runner import RunResult
from repro.util.stats import SummaryStats, summarize


@dataclass(frozen=True)
class RankProfile:
    """Time breakdown of one rank over a run."""

    rank: int
    total_ns: int
    compute_ns: int
    protocol_ns: int  # SPBC send-path work (logging, identifiers)

    @property
    def comm_ns(self) -> int:
        """MPI time: waits + transfers (everything that is not local
        compute or protocol work)."""
        return max(self.total_ns - self.compute_ns - self.protocol_ns, 0)

    @property
    def comm_fraction(self) -> float:
        return self.comm_ns / self.total_ns if self.total_ns else 0.0


def profile_run(result: RunResult) -> List[RankProfile]:
    """Per-rank profiles of a completed run."""
    out = []
    for rank, rt in enumerate(result.world.runtimes):
        finish = result.finish_ns.get(rank)
        if finish is None:
            continue
        out.append(
            RankProfile(
                rank=rank,
                total_ns=finish,
                compute_ns=rt.compute_total_ns,
                protocol_ns=rt.overhead_total_ns,
            )
        )
    return out


def comm_fraction_stats(result: RunResult) -> SummaryStats:
    """Distribution of the communication-time fraction over ranks."""
    return summarize([p.comm_fraction for p in profile_run(result)])


@dataclass(frozen=True)
class TrafficSplit:
    """Byte-level split of a run's traffic across a cluster map."""

    total_bytes: int
    intercluster_bytes: int

    @property
    def inter_fraction(self) -> float:
        return (
            self.intercluster_bytes / self.total_bytes if self.total_bytes else 0.0
        )


def traffic_split(result: RunResult, clusters: ClusterMap) -> TrafficSplit:
    """How much of the communicated volume crosses clusters (i.e. would
    be logged, and replayed during a recovery)."""
    total = 0
    inter = 0
    for e in result.trace.sends():
        src, dst, _cid = e.channel
        total += e.nbytes
        if clusters.is_intercluster(src, dst):
            inter += e.nbytes
    return TrafficSplit(total_bytes=total, intercluster_bytes=inter)


def explain_recovery_potential(
    result: RunResult, clusters: ClusterMap
) -> Dict[str, float]:
    """The section-6.4 diagnosis in one call: an app recovers fast when
    (a) it spends real time communicating and (b) that communication
    crosses clusters (so it is replayed from logs / skipped)."""
    frac = comm_fraction_stats(result)
    split = traffic_split(result, clusters)
    return {
        "comm_fraction_mean": frac.mean,
        "comm_fraction_max": frac.maximum,
        "intercluster_byte_share": split.inter_fraction,
        "recovery_gain_bound": frac.mean * split.inter_fraction,
    }
