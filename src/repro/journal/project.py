"""Projection: recompute new metrics from old journals, no simulation.

``project(journal, metric_fn)`` hands the parsed :class:`Journal` to an
arbitrary metric function — the Event Replay pattern: the journal is the
source of truth, derived views are cheap and disposable.  A campaign
recorded last month answers questions nobody thought to ask at record
time, at the cost of a file parse.

The module ships the projections the experiment harness keeps
reinventing; they work on torn journals too (they fold over whatever
events exist), so a killed campaign's partial journal is still
inspectable before deciding to resume it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.journal.format import Journal


def project(journal, metric_fn: Callable[[Journal], Any]) -> Any:
    """Apply ``metric_fn`` to the (loaded) journal."""
    if not isinstance(journal, Journal):
        journal = Journal.load(journal)
    return metric_fn(journal)


# ----------------------------------------------------------------------
# Stock projections
# ----------------------------------------------------------------------

def commit_intervals_ns(journal: Journal) -> Dict[int, List[int]]:
    """Per-rank gaps between consecutive checkpoint commits — the
    realized cadence (interesting under checkpoint_every='auto', where
    the Young/Daly controller retunes it per epoch)."""
    times: Dict[int, List[int]] = {}
    for ev in journal.canonical_events():
        if ev["k"] == "commit":
            times.setdefault(ev["rank"], []).append(ev["t"])
    return {
        r: [b - a for a, b in zip(ts, ts[1:])] for r, ts in times.items()
    }


def committed_bytes(journal: Journal) -> int:
    """Total bytes written by checkpoint commits (double-counts rounds
    re-committed after a rollback — that is the point: it measures what
    storage actually absorbed, not what survived)."""
    return sum(
        ev["nbytes"] for ev in journal.events if ev["k"] == "commit"
    )


def downtime_ns(journal: Journal) -> Dict[int, int]:
    """Per-cluster wall time spent failed (failure -> completed restart,
    summed over incidents; a failure superseded before its restart ran
    extends the window to the restart that finally completed)."""
    down: Dict[int, int] = {}
    fell_at: Dict[int, int] = {}
    for ev in journal.canonical_events():
        if ev["k"] == "failure":
            fell_at.setdefault(ev["cluster"], ev["t"])
        elif ev["k"] == "restart":
            c = ev["cluster"]
            if c in fell_at:
                down[c] = down.get(c, 0) + (ev["t"] - fell_at.pop(c))
    return down


def rework_ns(journal: Journal) -> int:
    """Lost-work bound: for every completed restart, the time between
    the checkpoint round it restored and the failure that forced it
    (the paper's rollback distance, in wall time)."""
    commit_time: Dict[tuple, int] = {}
    fell_at: Dict[int, int] = {}
    total = 0
    for ev in journal.canonical_events():
        if ev["k"] == "commit":
            commit_time[(ev["rank"], ev["round"])] = ev["t"]
        elif ev["k"] == "failure":
            fell_at[ev["cluster"]] = ev["t"]
        elif ev["k"] == "restart":
            t_fail = fell_at.pop(ev["cluster"], None)
            if t_fail is None:
                continue
            anchors = [
                t
                for (_r, rnd), t in commit_time.items()
                if rnd == ev.get("round")
            ]
            base = max(anchors) if anchors and ev.get("round") else 0
            total += max(0, t_fail - base)
    return total


def gc_notice_count(journal: Journal) -> int:
    """Receiver-driven log-GC announcements sent (Table 1's bounded-log
    machinery at work)."""
    return sum(1 for ev in journal.events if ev["k"] == "gc")


def summary(journal: Journal) -> Dict[str, Any]:
    """The CLI's one-screen view of a journal."""
    kinds: Dict[str, int] = {}
    for ev in journal.events:
        kinds[ev["k"]] = kinds.get(ev["k"], 0) + 1
    out: Dict[str, Any] = {
        "path": journal.path,
        "complete": journal.complete,
        "torn_tail": journal.torn_tail,
        "events": len(journal.events),
        "last_lsn": journal.last_lsn,
        "by_kind": kinds,
        "nranks": journal.header["nranks"],
        "app": (journal.header.get("app") or {}).get("name"),
        "schedule": len(journal.header["schedule"]),
        "fingerprint": journal.header["fingerprint"][:12],
    }
    makespan: Optional[int] = None
    if journal.result is not None:
        makespan = journal.result["makespan_ns"]
    out["makespan_ns"] = makespan
    out["committed_bytes"] = committed_bytes(journal)
    out["gc_notices"] = gc_notice_count(journal)
    out["downtime_ns"] = sum(downtime_ns(journal).values())
    return out
