"""Journal file format: LSN-stamped JSON-lines records.

A journal is an append-only text file dogfooding the paper's own idea on
the simulator itself: a send-deterministic execution is fully described
by its inputs plus the stream of observable events, so a run can be
*recorded* once and later *replayed* (bit-identical verification),
*resumed* (crash-restart of a killed campaign), or *projected* (new
metrics from old events, no re-simulation).

Line 1 is the **header** record: the serialized run configuration
(application spec, cluster map, failure schedule, storage/data-plane
specs, seeds, network parameters) plus a SHA-256 ``fingerprint`` over
its canonical JSON — replay refuses a journal whose configuration it
cannot rebuild exactly.  Every following ``ev`` record carries a *log
sequence number* (LSN): a dense append counter stamped by the writer,
so a torn tail (the recording process was killed mid-run) is detected
as a gap/truncation, never as silent corruption.  A complete journal
ends with exactly one ``end`` record holding the run's final
observables (makespan, per-rank results and finish times, the Table 1
log counters, restart counts).

Event records are appended in *emission order* (the order the sinks saw
them), which is deterministic for a given single-process run but not
identical between the sequential engine and the sharded coordinator
(same-instant events interleave differently).  Comparison therefore
happens in **canonical order** — the total order by
:func:`canonical_key` — under which a sequential recording, a sharded
recording, and any strict replay of either produce the *same* sequence.
``replay_strict`` reports the first divergent position of that sequence
by the stored LSN of the recorded event.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

JOURNAL_VERSION = 1

#: Event kinds, in tie-break order for same-instant events.
EVENT_KINDS = ("failure", "restart", "commit", "gc", "finish")

_KIND_ORDER = {k: i for i, k in enumerate(EVENT_KINDS)}


class JournalError(RuntimeError):
    """Malformed journal file or unreplayable configuration."""


class DivergenceError(JournalError):
    """Strict replay produced an observable the journal did not record.

    ``lsn`` is the recorded event's LSN at the first divergent canonical
    position (None when the divergence is in the final observables or
    past the recorded tail); ``recorded``/``replayed`` are the two sides
    of the first mismatch."""

    def __init__(
        self,
        message: str,
        lsn: Optional[int] = None,
        recorded: Any = None,
        replayed: Any = None,
    ) -> None:
        super().__init__(message)
        self.lsn = lsn
        self.recorded = recorded
        self.replayed = replayed


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fingerprint(header: Dict[str, Any]) -> str:
    """SHA-256 over the header's canonical JSON (sans the fingerprint
    field itself)."""
    body = {k: v for k, v in header.items() if k != "fingerprint"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def canonical_key(event: Dict[str, Any]) -> Tuple:
    """Total order on events, identical across recording modes.

    Primary: simulated time.  Ties: kind (failures before the restarts
    and commits they precede causally), then the acting rank/cluster,
    then round, then the full canonical JSON (so any two distinct
    events order deterministically and two equal-keyed events are
    byte-equal)."""
    return (
        event.get("t", 0),
        _KIND_ORDER.get(event.get("k"), len(EVENT_KINDS)),
        event.get("rank", event.get("cluster", -1)),
        event.get("round", -1),
        canonical_json({k: v for k, v in event.items() if k != "lsn"}),
    )


def strip_lsn(event: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in event.items() if k != "lsn"}


@dataclass
class Journal:
    """A parsed journal: header + events (+ final observables, when the
    recording ran to completion)."""

    path: Optional[str]
    header: Dict[str, Any]
    events: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    #: True when the on-disk tail was torn mid-record (the recorder was
    #: killed while appending) and the partial line was dropped.
    torn_tail: bool = False

    @property
    def complete(self) -> bool:
        """A complete journal recorded its ``end`` observables."""
        return self.result is not None

    @property
    def last_lsn(self) -> int:
        return self.events[-1]["lsn"] if self.events else 0

    def canonical_events(self) -> List[Dict[str, Any]]:
        """Events in the mode-independent canonical order (see module
        docstring), LSNs preserved for reporting."""
        return sorted(self.events, key=canonical_key)

    # -- consumers' structured views -----------------------------------
    def commit_history(self) -> Dict[int, List[Tuple[int, int]]]:
        """rank -> [(round, taken_at_ns)], the shard-equivalence
        invariant's shape, rebuilt from commit events."""
        hist: Dict[int, List[Tuple[int, int]]] = {
            r: [] for r in range(self.header["nranks"])
        }
        for ev in self.canonical_events():
            if ev["k"] == "commit":
                hist[ev["rank"]].append((ev["round"], ev["t"]))
        return hist

    def failures(self) -> List[Dict[str, Any]]:
        return [ev for ev in self.canonical_events() if ev["k"] == "failure"]

    def restarts(self) -> List[Dict[str, Any]]:
        return [ev for ev in self.canonical_events() if ev["k"] == "restart"]

    def finish_ns(self) -> Dict[int, int]:
        return {
            ev["rank"]: ev["t"]
            for ev in self.events
            if ev["k"] == "finish"
        }

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "Journal":
        """Parse a journal file, tolerating a torn final line (the
        recorder died mid-append); every structural problem *before* the
        tail raises :class:`JournalError`."""
        path = str(path)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JournalError(f"{path}: empty journal")
        records: List[Dict[str, Any]] = []
        torn = False
        for i, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    torn = True  # killed mid-append: drop the partial line
                    break
                raise JournalError(
                    f"{path}: corrupt record on line {i + 1} "
                    "(not the final line, so not a torn tail)"
                ) from None
        header = records[0]
        if header.get("type") != "header":
            raise JournalError(f"{path}: first record is not a header")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{path}: journal version {header.get('version')!r}, "
                f"this reader speaks {JOURNAL_VERSION}"
            )
        if fingerprint(header) != header.get("fingerprint"):
            raise JournalError(
                f"{path}: header fingerprint mismatch (edited journal?)"
            )
        events: List[Dict[str, Any]] = []
        result: Optional[Dict[str, Any]] = None
        expect_lsn = 1
        for rec in records[1:]:
            kind = rec.get("type")
            if kind == "ev":
                if result is not None:
                    raise JournalError(f"{path}: event after the end record")
                if rec.get("lsn") != expect_lsn:
                    raise JournalError(
                        f"{path}: LSN gap (expected {expect_lsn}, "
                        f"got {rec.get('lsn')})"
                    )
                expect_lsn += 1
                events.append({k: v for k, v in rec.items() if k != "type"})
            elif kind == "end":
                if result is not None:
                    raise JournalError(f"{path}: duplicate end record")
                result = {k: v for k, v in rec.items() if k != "type"}
            else:
                raise JournalError(
                    f"{path}: unknown record type {kind!r}"
                )
        return cls(
            path=path,
            header=header,
            events=events,
            result=result,
            torn_tail=torn,
        )
