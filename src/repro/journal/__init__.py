"""Deterministic run journal: record, strict replay, crash-resume,
metric projection.

The paper's premise — a send-deterministic execution is fully described
by its inputs plus its observable event stream — applied to the
simulator itself.  See docs/journal.md for the format and contracts.

Record::

    from repro.journal import journaled_app
    run_failure_schedule(journaled_app("ring", iters=40), 128, clusters,
                         schedule, journal="campaign.journal", ...)

Consume::

    from repro.journal import replay_strict, resume, project
    replay_strict("campaign.journal")          # determinism oracle
    resume("campaign.journal")                 # finish a killed run
    project("campaign.journal", downtime_ns)   # new metric, no sim
"""

from repro.journal.format import (
    JOURNAL_VERSION,
    DivergenceError,
    Journal,
    JournalError,
    canonical_key,
)
from repro.journal.project import project
from repro.journal.recorder import JournalWriter, ListSink, journaled_app
from repro.journal.replay import ReplayResult, rebuild_kwargs, replay_strict, resume

__all__ = [
    "JOURNAL_VERSION",
    "DivergenceError",
    "Journal",
    "JournalError",
    "JournalWriter",
    "ListSink",
    "ReplayResult",
    "canonical_key",
    "journaled_app",
    "project",
    "rebuild_kwargs",
    "replay_strict",
    "resume",
]
