"""Recording side: journal writers, event sinks, and header building.

The runners (:mod:`repro.harness.runner`, :mod:`repro.harness.parallel`)
own the recording lifecycle: they build the header from the exact
arguments a replay will need, hand the writer to the protocol/recovery
emission points as a *sink* (anything with ``emit``), and stamp the
final observables into the ``end`` record.  Inside shard workers the
sink is a :class:`ListSink` — events ride back to the coordinator in the
worker summary and the coordinator appends them, so a sharded run's
journal holds the same canonical event set as the sequential run's.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.journal.format import (
    JOURNAL_VERSION,
    Journal,
    JournalError,
    canonical_json,
    fingerprint,
)


def jsonable(value: Any) -> Any:
    """Primitives (and containers of them) pass through; anything else
    degrades to ``repr`` — results must compare equal after a JSON
    round-trip, so an opaque object is recorded by its stable face."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return repr(value)


class ListSink:
    """In-process event sink for shard workers: events accumulate as
    plain dicts and travel to the coordinator in the worker summary."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, kind: str, t: int, **fields: Any) -> None:
        ev = {"k": kind, "t": int(t)}
        ev.update(fields)
        self.events.append(json.loads(canonical_json(jsonable(ev))))


class JournalWriter:
    """Append-only journal writer: stamps LSNs, keeps an in-memory copy
    (for replay's in-process recordings), and optionally streams every
    record to ``path`` with a flush per line.

    ``crash_at_lsn`` is fault injection for the resume tests: events up
    to that LSN are written intact, the next event's line is torn
    mid-byte, and nothing further (including the ``end`` record) reaches
    the file — exactly what a ``kill -9`` mid-campaign leaves behind.
    The in-memory view still records everything, so one run yields both
    the torn file and the uninterrupted reference observables."""

    def __init__(
        self, path: Optional[str] = None, crash_at_lsn: Optional[int] = None
    ) -> None:
        self.path = str(path) if path is not None else None
        self.crash_at_lsn = crash_at_lsn
        self.header: Optional[Dict[str, Any]] = None
        self.events: List[Dict[str, Any]] = []
        self.result: Optional[Dict[str, Any]] = None
        self._lsn = 0
        self._fh = None
        self._file_dead = False

    # ------------------------------------------------------------------
    def write_header(self, header: Dict[str, Any]) -> None:
        if self.header is not None:
            raise JournalError("journal header written twice")
        header = dict(header)
        header["type"] = "header"
        header["version"] = JOURNAL_VERSION
        header["fingerprint"] = fingerprint(header)
        self.header = header
        if self.path is not None:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(canonical_json(header))

    def emit(self, kind: str, t: int, **fields: Any) -> None:
        ev = {"k": kind, "t": int(t)}
        ev.update(fields)
        self.emit_event(ev)

    def emit_event(self, ev: Dict[str, Any]) -> None:
        """Append one pre-built event dict (``k``/``t`` + payload)."""
        if self.header is None:
            raise JournalError("journal event emitted before the header")
        if self.result is not None:
            raise JournalError("journal event emitted after finish()")
        self._lsn += 1
        ev = json.loads(canonical_json(jsonable(ev)))
        ev["lsn"] = self._lsn
        self.events.append(ev)
        rec = dict(ev)
        rec["type"] = "ev"
        line = canonical_json(rec)
        if self.crash_at_lsn is not None and self._lsn == self.crash_at_lsn + 1:
            # The injected kill: this record's append is torn mid-byte.
            if self._fh is not None:
                self._fh.write(line[: max(1, len(line) // 2)])
                self._fh.flush()
            self._file_dead = True
        self._write_line(line)

    def finish(self, result: Dict[str, Any]) -> None:
        if self.result is not None:
            raise JournalError("journal finished twice")
        self.result = json.loads(canonical_json(jsonable(result)))
        rec = dict(self.result)
        rec["type"] = "end"
        self._write_line(canonical_json(rec))
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _write_line(self, line: str) -> None:
        if self._fh is None or self._file_dead:
            return
        self._fh.write(line + "\n")
        self._fh.flush()

    # ------------------------------------------------------------------
    def to_journal(self) -> Journal:
        """The in-memory (uninterrupted) view as a :class:`Journal`."""
        if self.header is None:
            raise JournalError("journal has no header")
        return Journal(
            path=self.path,
            header=self.header,
            events=list(self.events),
            result=self.result,
        )


def rewrite_complete(path: str, journal: Journal) -> None:
    """Atomically replace ``path`` with a complete journal (resume's
    final step after a verified re-execution)."""
    if journal.result is None:
        raise JournalError("refusing to rewrite an incomplete journal")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(journal.header) + "\n")
        for ev in journal.events:
            rec = dict(ev)
            rec["type"] = "ev"
            fh.write(canonical_json(rec) + "\n")
        rec = dict(journal.result)
        rec["type"] = "end"
        fh.write(canonical_json(rec) + "\n")
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Replayable app factories
# ----------------------------------------------------------------------

def journaled_app(name: str, **params: Any):
    """Instantiate a registered app with its identity annotated, so a
    journal recorded with it is replayable standalone.

    An un-annotated factory (a bare closure) records ``app: null`` in
    the header; such a journal replays only with an explicit
    ``app_factory=`` override."""
    from repro.apps.base import get_app

    factory = get_app(name).factory(**params)
    factory._journal_app = {"name": name, "params": jsonable(dict(params))}
    return factory


# ----------------------------------------------------------------------
# Header building (runner-side)
# ----------------------------------------------------------------------

def _spec_string(arg: Any, cfg_value: Any, what: str) -> Optional[str]:
    """A journal can only re-create what a string spec can describe —
    live backend/plane objects are refused up front, not at replay."""
    if isinstance(arg, str):
        return arg
    if arg is None and cfg_value is None:
        return None
    raise JournalError(
        f"journaling requires a spec-string {what} (or none), not a "
        f"live object: got {arg if arg is not None else cfg_value!r}"
    )


def build_header(
    *,
    app_factory,
    nranks: int,
    clusters,
    config,
    schedule: Sequence[Tuple[int, int, str]] = (),
    storage: Any = None,
    ckpt_data: Any = None,
    profile=None,
    warp=None,
    restart_delay_ns: int = 0,
    restart_stagger_ns: int = 0,
    ranks_per_node: int = 8,
    seed: int = 0,
    net_params=None,
    trace: bool = True,
    recorded_shards: Optional[int] = None,
) -> Dict[str, Any]:
    """Serialize a run's full configuration into the header record.

    Must run *before* ``_resolve_storage``/``_resolve_ckpt_data`` mutate
    the config: the raw spec strings are what replay rebuilds from."""
    if config.emulated_recovering is not None:
        raise JournalError(
            "emulated-recovery runs are not journalable (they are a "
            "measurement scaffold, not a replayable execution)"
        )
    ckpt_spec = _spec_string(ckpt_data, config.ckpt_data, "ckpt_data")
    storage_spec = _spec_string(storage, config.storage, "storage")
    warp_field: Any = None
    if warp is not None:
        warp_field = asdict(warp) if not isinstance(warp, int) else int(warp)
    profile_field = None
    if profile is not None:
        profile_field = [
            {
                "name": r.name,
                "nbytes": r.nbytes,
                "dirty_fraction": r.dirty_fraction,
            }
            for r in profile.regions
        ]
    return {
        "app": getattr(app_factory, "_journal_app", None),
        "nranks": int(nranks),
        "ranks_per_node": int(ranks_per_node),
        "seed": int(seed),
        "clusters": list(clusters.cluster_of),
        "schedule": [[int(t), int(r), str(k)] for t, r, k in schedule],
        "restart_delay_ns": int(restart_delay_ns),
        "restart_stagger_ns": int(restart_stagger_ns),
        "net_params": None if net_params is None else asdict(net_params),
        "trace": bool(trace),
        "storage": storage_spec,
        "ckpt_data": ckpt_spec,
        "profile": profile_field,
        "warp": warp_field,
        "config": {
            "ident_matching": bool(config.ident_matching),
            "cost": asdict(config.cost),
            "checkpoint_every": config.checkpoint_every,
            "mtbf_ns": config.mtbf_ns,
            "mtbf_prior_ns": config.mtbf_prior_ns,
            "state_nbytes": config.state_nbytes,
            "pfs_stagger_ns": config.pfs_stagger_ns,
            "rollback_scope": config.rollback_scope,
        },
        "recorded_shards": recorded_shards,
    }


def prepare_writer(journal: Any, **header_kwargs: Any) -> JournalWriter:
    """Resolve the runners' ``journal=`` argument: a path string opens a
    streaming file writer, an existing :class:`JournalWriter` (replay's
    in-memory recorder) is used as-is; either way the header is built
    from the run's arguments and written first."""
    if isinstance(journal, JournalWriter):
        writer = journal
    elif isinstance(journal, (str, os.PathLike)):
        writer = JournalWriter(path=str(journal))
    else:
        raise TypeError(
            f"journal= accepts a path or a JournalWriter, got {journal!r}"
        )
    writer.write_header(build_header(**header_kwargs))
    return writer


# ----------------------------------------------------------------------
# Run-side event/observable extraction (shared by both engines)
# ----------------------------------------------------------------------

def failure_fields(ev) -> Dict[str, Any]:
    """The crash-side facts of a FailureEvent — exactly the fields the
    shard-equivalence contract guarantees identical across engines.
    Restart-side fields (round/tier) are *mutated* on the event after a
    later restart runs, so they are journaled as separate ``restart``
    events instead (emitted only for restarts that actually executed)."""
    return {
        "rank": ev.rank,
        "cluster": ev.cluster,
        "failure_kind": ev.kind,
        "node": ev.node,
        "killed_ranks": list(ev.killed_ranks),
        "purged_packets": ev.purged_packets,
        "invalidated_copies": ev.invalidated_copies,
        "cancelled_flushes": ev.cancelled_flushes,
    }


def commit_history_of(hooks) -> Dict[int, List[Tuple[int, int]]]:
    """rank -> [(round, taken_at_ns)] from the storage backend's final
    state (the shard-equivalence invariant's shape)."""
    storage = hooks.storage
    out: Dict[int, List[Tuple[int, int]]] = {}
    for r in sorted(hooks.state):
        history = []
        for rnd in storage.rounds_of(r):
            rec = storage.retrieve(r, rnd)
            if rec is not None and rec.ckpt is not None:
                history.append((rnd, rec.ckpt.taken_at_ns))
        out[r] = history
    return out


def end_record(
    *,
    makespan_ns: int,
    finish_ns: Dict[int, int],
    results: Dict[int, Any],
    log: Dict[int, Tuple[int, int]],
    restarts: Dict[int, int],
    commit_history: Dict[int, List[Tuple[int, int]]],
) -> Dict[str, Any]:
    """The final-observables record, as sorted rank-keyed pair lists
    (JSON objects can't key on ints, and sorted lists compare exactly)."""
    return {
        "makespan_ns": int(makespan_ns),
        "finish_ns": [[r, int(t)] for r, t in sorted(finish_ns.items())],
        "results": [[r, jsonable(v)] for r, v in sorted(results.items())],
        "log": [
            [r, int(b), int(n)] for r, (b, n) in sorted(log.items())
        ],
        "restarts": [[r, int(n)] for r, n in sorted(restarts.items())],
        "commits": [
            [r, [[int(rnd), int(t)] for rnd, t in hist]]
            for r, hist in sorted(commit_history.items())
        ],
    }


def log_counters_of(hooks) -> Dict[int, Tuple[int, int]]:
    """Per-rank (bytes_logged, records_logged) — works on both the live
    SPBC hooks and the sharded result's hooks shim."""
    return {
        r: (st.log.bytes_logged, st.log.records_logged)
        for r, st in hooks.state.items()
    }


def finalize_run(
    writer: JournalWriter,
    *,
    failures,
    finish_ns: Dict[int, int],
    makespan_ns: int,
    results: Dict[int, Any],
    log: Dict[int, Tuple[int, int]],
    restarts: Dict[int, int],
    commit_history: Dict[int, List[Tuple[int, int]]],
    worker_events: Sequence[Dict[str, Any]] = (),
) -> None:
    """Stamp a finished run into the journal: worker-collected events
    (sharded runs), the failure events (derived from the manager's final
    event list — identical across engines by the equivalence contract),
    per-rank finish events, then the ``end`` observables."""
    for ev in worker_events:
        writer.emit_event(ev)
    for ev in failures:
        writer.emit("failure", t=ev.time_ns, **failure_fields(ev))
    for r, t in sorted(finish_ns.items()):
        writer.emit("finish", t=t, rank=r)
    writer.finish(
        end_record(
            makespan_ns=makespan_ns,
            finish_ns=finish_ns,
            results=results,
            log=log,
            restarts=restarts,
            commit_history=commit_history,
        )
    )
