"""Journal consumers: strict replay and crash-resume.

``replay_strict`` is the determinism oracle: rebuild the run's exact
configuration from the header, re-execute it (sequential or sharded —
the engine is a replay choice, not part of the recorded config), and
fail loudly at the first canonical position where the re-execution's
event stream or final observables differ from the recording.

``resume`` restarts a killed campaign: a complete journal returns its
recorded observables with zero re-simulation (the common sweep-cache
case); a torn journal is deterministically re-executed, the recorded
prefix is verified to be a sub-multiset of the re-execution's events
(so a config drift between kill and resume cannot silently launder
different results under the old header), and the file is rewritten
complete.  The simulator's generator-based processes have no snapshot
of interpreter state, so a torn journal cannot warm-start mid-event —
determinism makes re-execution an exact substitute (see
docs/journal.md, "resume limits").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.journal.format import (
    DivergenceError,
    Journal,
    JournalError,
    canonical_json,
    strip_lsn,
)
from repro.journal.recorder import JournalWriter, journaled_app, rewrite_complete


@dataclass
class ReplayResult:
    """Observables of a journal-driven run.

    ``resimulated`` is False when the numbers came straight from the
    journal's ``end`` record (no simulation happened at all)."""

    journal: Journal
    resimulated: bool
    makespan_ns: int
    finish_ns: Dict[int, int]
    results: Dict[int, Any]
    log: Dict[int, Tuple[int, int]]
    restarts: Dict[int, int]
    commit_history: Dict[int, List[Tuple[int, int]]]


def _load(journal) -> Journal:
    if isinstance(journal, Journal):
        return journal
    return Journal.load(journal)


def rebuild_kwargs(
    journal: Journal, app_factory=None
) -> Dict[str, Any]:
    """Reconstruct the runner keyword arguments the header describes."""
    from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
    from repro.core.clusters import ClusterMap
    from repro.core.protocol import LogCostModel, SPBCConfig
    from repro.sim.network import NetworkParams
    from repro.sim.warp import WarpConfig

    h = journal.header
    if app_factory is None:
        if h.get("app") is None:
            raise JournalError(
                "journal was recorded with an unannotated app factory "
                "(header app: null); pass app_factory= explicitly, or "
                "record with repro.journal.journaled_app(name, **params)"
            )
        app_factory = journaled_app(h["app"]["name"], **h["app"]["params"])
    clusters = ClusterMap(list(h["clusters"]))
    cfg_h = h["config"]
    config = SPBCConfig(
        clusters=clusters,
        ident_matching=cfg_h["ident_matching"],
        cost=LogCostModel(**cfg_h["cost"]),
        checkpoint_every=cfg_h["checkpoint_every"],
        mtbf_ns=cfg_h["mtbf_ns"],
        mtbf_prior_ns=cfg_h["mtbf_prior_ns"],
        state_nbytes=cfg_h["state_nbytes"],
        pfs_stagger_ns=cfg_h["pfs_stagger_ns"],
        rollback_scope=cfg_h["rollback_scope"],
    )
    warp = h.get("warp")
    if isinstance(warp, dict):
        warp = WarpConfig(**warp)
    profile = None
    if h.get("profile") is not None:
        profile = WriteLocalityProfile(
            regions=tuple(MemoryRegion(**r) for r in h["profile"])
        )
    net = h.get("net_params")
    return {
        "app_factory": app_factory,
        "nranks": h["nranks"],
        "clusters": clusters,
        "config": config,
        "schedule": [tuple(s) for s in h["schedule"]],
        "restart_delay_ns": h["restart_delay_ns"],
        "restart_stagger_ns": h["restart_stagger_ns"],
        "ranks_per_node": h["ranks_per_node"],
        "seed": h["seed"],
        "net_params": None if net is None else NetworkParams(**net),
        "trace": h["trace"],
        "storage": h.get("storage"),
        "ckpt_data": h.get("ckpt_data"),
        "profile": profile,
        "warp": warp,
    }


def _rerun(
    journal: Journal,
    app_factory=None,
    shards: Optional[int] = None,
    crash_at_lsn: Optional[int] = None,
    telemetry=None,
) -> JournalWriter:
    """Re-execute the journal's config, recording into a fresh in-memory
    writer; returns the writer (its ``to_journal()`` is the re-run)."""
    from repro.harness import runner

    kw = rebuild_kwargs(journal, app_factory=app_factory)
    writer = JournalWriter(path=None, crash_at_lsn=crash_at_lsn)
    schedule = kw.pop("schedule")
    if schedule:
        runner.run_failure_schedule(
            kw.pop("app_factory"),
            kw.pop("nranks"),
            kw.pop("clusters"),
            schedule,
            journal=writer,
            shards=shards,
            telemetry=telemetry,
            **kw,
        )
    else:
        kw.pop("restart_delay_ns")
        kw.pop("restart_stagger_ns")
        runner.run_spbc(
            kw.pop("app_factory"),
            kw.pop("nranks"),
            kw.pop("clusters"),
            journal=writer,
            shards=shards,
            telemetry=telemetry,
            **kw,
        )
    return writer


def _result_from(journal: Journal, resimulated: bool) -> ReplayResult:
    end = journal.result
    if end is None:
        raise JournalError("journal has no end record")
    return ReplayResult(
        journal=journal,
        resimulated=resimulated,
        makespan_ns=end["makespan_ns"],
        finish_ns={r: t for r, t in end["finish_ns"]},
        results={r: v for r, v in end["results"]},
        log={r: (b, n) for r, b, n in end["log"]},
        restarts={r: n for r, n in end["restarts"]},
        commit_history={
            r: [tuple(pair) for pair in hist] for r, hist in end["commits"]
        },
    )


def replay_strict(
    journal, app_factory=None, shards: Optional[int] = None, telemetry=None
) -> ReplayResult:
    """Re-execute a complete journal's config and verify bit-identical
    observables — the first divergence raises :class:`DivergenceError`
    naming the recorded event's LSN.

    ``shards`` picks the replay engine (None/1 = sequential); the
    comparison is engine-independent because both sides are put in
    canonical order.  Returns the verified observables.

    ``telemetry`` instruments the re-execution (see :mod:`repro.obs`);
    recording is observation-only, so the verification verdict is
    telemetry-independent.  Pass a :class:`~repro.obs.Telemetry`
    instance to keep the recording (``python -m repro trace --run``
    renders a full-fidelity timeline this way)."""
    recorded = _load(journal)
    if not recorded.complete:
        raise JournalError(
            f"{recorded.path or '<memory>'}: incomplete journal — "
            "replay_strict verifies finished recordings; use resume() "
            "for a killed campaign"
        )
    writer = _rerun(
        recorded, app_factory=app_factory, shards=shards, telemetry=telemetry
    )
    replayed = writer.to_journal()
    _compare_events(recorded, replayed)
    if canonical_json(recorded.result) != canonical_json(replayed.result):
        raise DivergenceError(
            "final observables diverged:\n"
            f"  recorded: {canonical_json(recorded.result)}\n"
            f"  replayed: {canonical_json(replayed.result)}",
            recorded=recorded.result,
            replayed=replayed.result,
        )
    return _result_from(recorded, resimulated=True)


def _compare_events(recorded: Journal, replayed: Journal) -> None:
    rec = recorded.canonical_events()
    new = replayed.canonical_events()
    for i in range(max(len(rec), len(new))):
        if i >= len(rec):
            raise DivergenceError(
                f"replay produced {len(new) - len(rec)} event(s) the "
                f"journal never recorded; first extra: "
                f"{canonical_json(strip_lsn(new[i]))}",
                replayed=strip_lsn(new[i]),
            )
        if i >= len(new):
            raise DivergenceError(
                f"recorded event LSN {rec[i]['lsn']} was never "
                f"reproduced: {canonical_json(strip_lsn(rec[i]))}",
                lsn=rec[i]["lsn"],
                recorded=strip_lsn(rec[i]),
            )
        a, b = strip_lsn(rec[i]), strip_lsn(new[i])
        if a != b:
            raise DivergenceError(
                f"first divergence at recorded LSN {rec[i]['lsn']} "
                f"(canonical position {i}):\n"
                f"  recorded: {canonical_json(a)}\n"
                f"  replayed: {canonical_json(b)}",
                lsn=rec[i]["lsn"],
                recorded=a,
                replayed=b,
            )


def resume(
    journal, app_factory=None, shards: Optional[int] = None
) -> ReplayResult:
    """Finish a killed campaign.

    A complete journal returns its recorded observables immediately
    (``resimulated=False``).  A torn/incomplete one is re-executed
    deterministically; every recorded event must reappear in the re-run
    (sub-multiset check — a header that no longer matches the code or
    inputs fails here instead of silently producing fresh numbers), and
    the on-disk journal is rewritten complete."""
    recorded = _load(journal)
    if recorded.complete and not recorded.torn_tail:
        return _result_from(recorded, resimulated=False)
    writer = _rerun(recorded, app_factory=app_factory, shards=shards)
    rerun = writer.to_journal()
    remaining = Counter(
        canonical_json(strip_lsn(ev)) for ev in rerun.events
    )
    for ev in recorded.events:
        key = canonical_json(strip_lsn(ev))
        if remaining[key] <= 0:
            raise DivergenceError(
                f"recorded event LSN {ev['lsn']} did not reappear in the "
                f"resumed execution: {key} — the journal does not "
                "describe this code/config; refusing to resume",
                lsn=ev["lsn"],
                recorded=strip_lsn(ev),
            )
        remaining[key] -= 1
    if recorded.path is not None:
        rewrite_complete(recorded.path, rerun)
    return _result_from(rerun, resimulated=True)
