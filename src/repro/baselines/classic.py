"""Classic baselines: pure coordinated checkpointing and pure logging.

Both are degenerate SPBC configurations (the hybrid design's endpoints):

* one single cluster  -> nothing is ever logged, but a failure rolls back
  every process (no failure containment);
* one cluster per rank -> perfect containment, but every message is
  logged (Table 1's last row).
"""

from __future__ import annotations

from repro.core.clusters import ClusterMap


def single_cluster(nranks: int) -> ClusterMap:
    """Pure coordinated checkpointing: all processes in one cluster."""
    return ClusterMap.single(nranks)


def pure_logging_clusters(nranks: int) -> ClusterMap:
    """Pure (sender-based) message logging: every rank its own cluster."""
    return ClusterMap.singletons(nranks)


def coordinated_rollback_cost(
    nranks: int, lost_work_ns: int, restart_read_ns: int = 0
) -> dict:
    """Cost model of a failure under pure coordinated checkpointing.

    Every process re-executes the lost segment, so the wasted CPU time is
    ``nranks * lost_work_ns`` (plus the I/O burst of everyone re-reading
    checkpoints) — versus a single cluster's share under SPBC.  Used by
    the ablation benchmark to quantify the containment benefit.
    """
    return {
        "processes_rolled_back": nranks,
        "wasted_cpu_ns": nranks * lost_work_ns,
        "restart_read_ns": restart_read_ns * nranks,
    }
