"""HydEE [19]: hierarchical recovery with centralized replay coordination.

HydEE is the paper's main comparison point (section 6.5): like SPBC it is
hierarchical and logs nothing reliably during failure-free execution, but
during recovery it "requires the use of an additional process (the
coordinator) to orchestrate the recovery and avoid mismatches: it
notifies a process that it can replay the next message from the logs once
the recovering processes have acknowledged that all the inter-cluster
messages this message depends on have been replayed".

Model
-----
* **Causal levels** are extracted from the failure-free trace: the level
  of an inter-cluster message is one plus the maximum level in the causal
  past of its send event (levels propagate through intra-cluster messages
  and program order).  Replaying level by level is exactly "everything a
  message depends on has been replayed" — conservative, like the real
  protocol's phase-based release.
* The **coordinator** is an extra rank.  Replayers request a grant per
  logged message; recovering ranks acknowledge each replayed delivery and
  report each suppressed (logically replayed) inter-cluster send.  The
  coordinator serializes all handling (a per-message processing cost) and
  advances to level l+1 only when every level-l message is done.
* Per-sender level sequences are non-decreasing (a send's level includes
  its causal past), so in-order per-replayer granting cannot deadlock;
  a short REQ pipeline (``grant_window``) keeps the wire busy.

SPBC needs none of this: its replayers stream per channel independently —
that difference is Figure 6.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.clusters import ClusterMap
from repro.core.emulated import ReplayPlan
from repro.core.logstore import LogRecord
from repro.core.protocol import SPBC, SPBCConfig
from repro.mpi.context import RankContext
from repro.mpi.message import ControlMsg, Envelope
from repro.mpi.runtime import World
from repro.sim.engine import Trigger
from repro.sim.network import NetworkParams
from repro.sim.tracing import Trace
from repro.util.units import US

MessageKey = Tuple[int, int, int, int]  # (src, dst, comm_id, seqnum)

REQ = "hydee.req"
GRANT = "hydee.grant"
DONE = "hydee.done"

#: Coordinator CPU time to handle one control message (serialized).
#: Calibrated for the paper's transport: IPoIB message handling costs
#: tens of microseconds of CPU per message, and every REQ/GRANT/DONE of
#: every replayed message funnels through this single process — the
#: serialization that makes HydEE's recovery slow at scale (section 6.5).
DEFAULT_COORD_PROC_NS = 40 * US
#: Outstanding grant requests a replayer may pipeline.
DEFAULT_GRANT_WINDOW = 4


def compute_levels(trace: Trace, clusters: ClusterMap) -> Dict[MessageKey, int]:
    """Causal level of every inter-cluster message in a trace.

    Single chronological pass with per-rank depth counters: D_r is the
    highest inter-cluster-message level in r's causal past; an
    inter-cluster send gets level D_r + 1; levels ride along intra-cluster
    messages and deliveries propagate them.
    """
    depth: Dict[int, int] = {}
    levels: Dict[MessageKey, int] = {}
    carried: Dict[MessageKey, int] = {}
    for e in trace.events:
        if e.kind == "send":
            src, dst, _cid = e.channel
            d = depth.get(e.rank, 0)
            if clusters.is_intercluster(src, dst):
                lvl = d + 1
                levels[e.message_key] = lvl
                depth[e.rank] = lvl
            else:
                carried[e.message_key] = d
        elif e.kind == "deliver":
            src, dst, _cid = e.channel
            if clusters.is_intercluster(src, dst):
                lvl = levels.get(e.message_key, 0)
            else:
                lvl = carried.get(e.message_key, 0)
            if lvl > depth.get(e.rank, 0):
                depth[e.rank] = lvl
    return levels


Channel = Tuple[int, int, int]  # (src, dst, comm_id)


def compute_dependencies(
    trace: Trace,
    clusters: ClusterMap,
    recovering: Set[int],
) -> Dict[MessageKey, Dict[Channel, int]]:
    """Per-message causal dependency vectors, restricted to the channels
    the recovery cares about (those touching the recovering cluster).

    dep(m)[c] = s means: message m must not be replayed before the
    recovering side has confirmed message s on channel c.  Vectors are
    per-channel high-water marks of the send event's causal past (FIFO
    channels make high-water marks sufficient).  This is the precise
    dependency information HydEE's coordinator works from.
    """

    def interesting(chan: Channel) -> bool:
        src, dst, _cid = chan
        return (src in recovering) != (dst in recovering)

    past: Dict[int, Dict[Channel, int]] = {}
    carried: Dict[MessageKey, Dict[Channel, int]] = {}
    deps: Dict[MessageKey, Dict[Channel, int]] = {}
    for e in trace.events:
        if e.kind == "send":
            src, dst, _cid = e.channel
            p = past.setdefault(e.rank, {})
            snapshot = dict(p)
            carried[e.message_key] = snapshot
            if clusters.is_intercluster(src, dst):
                if interesting(e.channel):
                    deps[e.message_key] = snapshot
                    # this message joins its sender's causal past
                    if e.seqnum > p.get(e.channel, 0):
                        p[e.channel] = e.seqnum
        elif e.kind == "deliver":
            p = past.setdefault(e.rank, {})
            for chan, seq in carried.get(e.message_key, {}).items():
                if seq > p.get(chan, 0):
                    p[chan] = seq
            if interesting(e.channel) and e.seqnum > p.get(e.channel, 0):
                p[e.channel] = e.seqnum
    return deps


@dataclass
class HydEEPlan:
    """Replay plan plus the dependency structure HydEE needs."""

    base: ReplayPlan
    # message -> per-channel causal dependency high-water marks
    deps: Dict[MessageKey, Dict[Channel, int]]
    # everything the coordinator waits for: replayed records + the
    # recovering ranks' own (suppressed) inter-cluster sends
    tracked: Set[MessageKey] = field(default_factory=set)
    # causal depth per message, kept for diagnostics/statistics
    levels: Dict[MessageKey, int] = field(default_factory=dict)

    @property
    def max_level(self) -> int:
        return max(
            (self.levels.get(k, 0) for k in self.tracked), default=0
        )

    @classmethod
    def from_run(
        cls,
        spbc: SPBC,
        trace: Trace,
        failure_free_ns: int,
        cluster_id: Optional[int] = None,
        clusters: Optional[ClusterMap] = None,
    ) -> "HydEEPlan":
        cmap = clusters if clusters is not None else spbc.clusters
        base = ReplayPlan.from_run(spbc, failure_free_ns, cluster_id, clusters=cmap)
        deps = compute_dependencies(trace, cmap, base.recovering_ranks)
        levels = compute_levels(trace, cmap)
        tracked: Set[MessageKey] = set()
        for sender, recs in base.records_by_sender.items():
            for r in recs:
                tracked.add((sender, r.dst, r.comm_id, r.seqnum))
        for rank in base.recovering_ranks:
            st = spbc.state[rank]
            for (cid, dst), chan in st.log.merged_channels().items():
                if dst in base.recovering_ranks or not cmap.is_intercluster(rank, dst):
                    continue
                for r in chan:
                    tracked.add((rank, dst, cid, r.seqnum))
        return cls(base=base, deps=deps, tracked=tracked, levels=levels)


class HydEEHooks(SPBC):
    """Emulated-recovery hooks with the coordinator protocol on top."""

    def __init__(
        self,
        config: SPBCConfig,
        plan: HydEEPlan,
        coordinator_rank: int,
        proc_ns: int = DEFAULT_COORD_PROC_NS,
    ) -> None:
        super().__init__(config)
        self.plan = plan
        self.coordinator_rank = coordinator_rank
        self.proc_ns = proc_ns
        # Coordinator state: per-channel confirmed high-water marks and
        # the messages still awaiting confirmation.
        self._done_hw: Dict[Channel, int] = {}
        self._remaining: Set[MessageKey] = set(plan.tracked)
        self._queue: deque = deque()  # queued (replayer, key)
        self._busy_until = 0
        self.coordinator_done = Trigger(name="hydee.alldone")
        self.grants_issued = 0
        self.acks_seen = 0
        # Replayer-side grant triggers
        self._grant_waiters: Dict[Tuple[int, MessageKey], Trigger] = {}

    # -- dependency bookkeeping (coordinator) ----------------------------
    def _satisfied(self, key: MessageKey) -> bool:
        """All messages this one causally depends on have been confirmed
        by the recovering processes (delivered or logically re-sent)."""
        for chan, seq in self.plan.deps.get(key, {}).items():
            if self._done_hw.get(chan, 0) < seq:
                return False
        return True

    def _flush_queue(self, runtime) -> None:
        still: deque = deque()
        while self._queue:
            replayer, key = self._queue.popleft()
            if self._satisfied(key):
                self._respond(runtime, replayer, key)
            else:
                still.append((replayer, key))
        self._queue = still

    def _respond(self, runtime, replayer: int, key: MessageKey) -> None:
        """Send a grant after the serialized coordinator processing time."""
        now = runtime.engine.now
        self._busy_until = max(now, self._busy_until) + self.proc_ns
        delay = self._busy_until - now
        runtime.engine.schedule(
            delay, runtime.control_send, replayer, GRANT, {"key": key}, 32
        )
        self.grants_issued += 1

    # -- control plane ---------------------------------------------------
    def on_control(self, runtime, msg: ControlMsg) -> None:
        if msg.kind == REQ:
            key = msg.data["key"]
            self._busy_until = max(runtime.engine.now, self._busy_until) + self.proc_ns
            if self._satisfied(key):
                self._respond(runtime, msg.src, key)
            else:
                self._queue.append((msg.src, key))
        elif msg.kind == DONE:
            key = msg.data["key"]
            chan = (key[0], key[1], key[2])
            seq = key[3]
            self._busy_until = max(runtime.engine.now, self._busy_until) + self.proc_ns
            if seq > self._done_hw.get(chan, 0):
                self._done_hw[chan] = seq
            self._remaining.discard(key)
            self.acks_seen += 1
            self._flush_queue(runtime)
            if not self._remaining and not self._queue:
                self.coordinator_done.fire()
        elif msg.kind == GRANT:
            key = tuple(msg.data["key"])
            trig = self._grant_waiters.pop((runtime.rank, key), None)
            if trig is not None:
                trig.fire()
        else:
            super().on_control(runtime, msg)

    def wait_grant(self, runtime, key: MessageKey) -> Trigger:
        trig = Trigger(name=f"grant{key}")
        self._grant_waiters[(runtime.rank, key)] = trig
        runtime.control_send(self.coordinator_rank, REQ, {"key": key}, nbytes=32)
        return trig

    # -- recovering-rank instrumentation ---------------------------------
    def on_send(self, runtime, env: Envelope):
        decision = super().on_send(runtime, env)
        if (
            decision is False
            and self._emulated is not None
            and env.src in self._emulated
            and self.clusters.is_intercluster(env.src, env.dst)
            and env.dst not in self._emulated
        ):
            # A suppressed ("logically replayed") send: confirm it so the
            # coordinator can open later levels.
            runtime.control_send(
                self.coordinator_rank, DONE, {"key": env.message_key}, nbytes=32
            )
            runtime.charge_cpu(200)
        return decision

    def on_deliver(self, runtime, env: Envelope) -> None:
        super().on_deliver(runtime, env)
        if (
            env.replayed
            and self._emulated is not None
            and env.dst in self._emulated
            and self.clusters.is_intercluster(env.src, env.dst)
        ):
            # The recovering process acknowledges on *delivery* — this is
            # what couples HydEE's replay to application progress and
            # erases SPBC's "messages arrive in advance" advantage (the
            # slowdown Figure 6 shows).  With precise causal dependencies
            # this cannot deadlock: the causally-minimal unconfirmed
            # message is always grantable, and the application always
            # reaches one of the minimal messages' receives.
            runtime.control_send(
                self.coordinator_rank, DONE, {"key": env.message_key}, nbytes=32
            )
            runtime.charge_cpu(200)


def hydee_replayer_process(
    ctx: RankContext,
    records: List[LogRecord],
    hooks: HydEEHooks,
    grant_window: int = DEFAULT_GRANT_WINDOW,
) -> Generator:
    """Replayer under HydEE: every logged message needs a coordinator
    grant; up to ``grant_window`` requests are pipelined, but messages
    are put on the wire strictly in original send order."""
    if grant_window < 1:
        raise ValueError("grant window must be >= 1")
    keys = [
        (ctx.world_rank, r.dst, r.comm_id, r.seqnum) for r in records
    ]
    grants: deque = deque()  # triggers for outstanding REQs, in order
    sent = 0
    next_req = 0
    while sent < len(records):
        while next_req < len(records) and len(grants) < grant_window:
            grants.append(hooks.wait_grant(ctx.rt, keys[next_req]))
            next_req += 1
        trig = grants.popleft()
        if not trig.fired:
            yield trig
        rec = records[sent]
        env = Envelope(
            src=ctx.world_rank,
            dst=rec.dst,
            tag=rec.tag,
            comm_id=rec.comm_id,
            seqnum=rec.seqnum,
            nbytes=rec.nbytes,
            payload=rec.payload,
            ident=rec.ident,
        )
        ctx.rt.isend_raw(env)
        sent += 1
    return sent


@dataclass
class HydEERecoveryResult:
    rework_ns: int
    reference_ns: int
    grants: int
    acks: int
    results: Dict[int, object]

    @property
    def normalized(self) -> float:
        return self.rework_ns / self.reference_ns


def run_hydee_recovery(
    app_factory,
    nranks: int,
    clusters: ClusterMap,
    plan: HydEEPlan,
    reference_ns: Optional[int] = None,
    proc_ns: int = DEFAULT_COORD_PROC_NS,
    grant_window: int = DEFAULT_GRANT_WINDOW,
    ranks_per_node: int = 8,
    seed: int = 0,
    net_params: Optional[NetworkParams] = None,
) -> HydEERecoveryResult:
    """Emulated recovery under HydEE (phase 2 with a coordinator).

    The paper's coordinator is "an additional process"; here its logic is
    hosted on the highest non-failed rank as a pure control-plane role
    (its serialized per-message handling cost is modeled explicitly), so
    the application world keeps exactly the phase-1 shape — rank count,
    communicators, and message identities all line up.
    """
    non_failed = [r for r in range(nranks) if r not in plan.base.recovering_ranks]
    if not non_failed:
        raise ValueError("HydEE recovery needs at least one non-failed rank")
    coord = max(non_failed)
    hooks = HydEEHooks(
        SPBCConfig(
            clusters=clusters,
            ident_matching=False,  # HydEE has no identifiers
            emulated_recovering=set(plan.base.recovering_ranks),
        ),
        plan=plan,
        coordinator_rank=coord,
        proc_ns=proc_ns,
    )
    world = World(
        nranks, ranks_per_node=ranks_per_node, hooks=hooks, seed=seed,
        net_params=net_params, trace=False,
    )
    for r in range(nranks):
        ctx = RankContext(world, r)
        if r in plan.base.recovering_ranks:
            world.launch(r, app_factory(ctx, None))
        else:
            records = plan.base.records_by_sender.get(r, [])
            world.launch(
                r, hydee_replayer_process(ctx, records, hooks, grant_window)
            )
    world.run()
    for r, proc in world.processes.items():
        if proc.exception is not None:
            raise RuntimeError(f"rank {r} raised: {proc.exception!r}") from proc.exception
    rework = max(
        world.processes[r].finish_time for r in plan.base.recovering_ranks
    )
    return HydEERecoveryResult(
        rework_ns=rework,
        reference_ns=reference_ns or plan.base.failure_free_ns,
        grants=hooks.grants_issued,
        acks=hooks.acks_seen,
        results={r: p.result for r, p in world.processes.items()},
    )
