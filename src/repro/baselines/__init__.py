"""Baselines SPBC is compared against.

* :mod:`repro.baselines.hydee` — HydEE [19]: the only other protocol with
  failure containment and no reliable event logging; needs a centralized
  coordinator to order replayed messages during recovery (Figure 6);
* :mod:`repro.baselines.classic` — pure coordinated checkpointing
  (global rollback) and pure per-process message logging, the two
  extremes the hybrid design interpolates between (Table 1).
"""

from repro.baselines.hydee import (
    HydEEPlan,
    compute_levels,
    run_hydee_recovery,
)
from repro.baselines.classic import (
    coordinated_rollback_cost,
    pure_logging_clusters,
    single_cluster,
)

__all__ = [
    "HydEEPlan",
    "compute_levels",
    "run_hydee_recovery",
    "coordinated_rollback_cost",
    "pure_logging_clusters",
    "single_cluster",
]
