"""Processor-sharing bandwidth resources on the engine clock.

The storage layer's closed-form cost models price a write burst as
``latency + nbytes / (bandwidth / concurrent_writers)`` — an
*instantaneous* guess that has to assume who else is writing.  A
:class:`BandwidthResource` replaces the guess with simulation: each
transfer is a **flow** holding a byte count, the resource drains every
active flow at ``bandwidth / n_active`` (for a shared medium) and
re-plans whenever a flow starts, finishes, or is cancelled.  Contention,
staggering, and overlap therefore *emerge* from the event timeline
instead of being assumed at the call site.

Semantics:

* **Processor sharing** — on a ``shared`` resource, N concurrent equal
  flows all finish at N x one flow's solo time; when one finishes early,
  the survivors immediately speed up.  The resource is work-conserving:
  for flows admitted together, the last completion lands at
  ``total_bytes / bandwidth``.
* **Dedicated media** — with ``shared=False`` every flow drains at the
  full bandwidth regardless of the others (per-node RAM/SSD: each
  writer owns its own device).
* **Cancellation refunds nothing** — a cancelled flow simply leaves the
  active set; virtual time already spent sharing the medium with it is
  gone (no time travel), the survivors only speed up from *now*.
* **Determinism** — completions are engine events ordered by the global
  scheduling sequence, so runs remain reproducible byte-for-byte.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Engine, EventHandle, Trigger

#: Sub-byte slack absorbing float drift when deciding a flow finished.
_EPS_BYTES = 1e-3


class Flow:
    """One transfer in flight on a :class:`BandwidthResource`."""

    __slots__ = (
        "resource",
        "nbytes",
        "remaining",
        "requested_ns",
        "start_ns",
        "end_ns",
        "cancelled",
        "done",
        "on_done",
        "meta",
    )

    def __init__(
        self,
        resource: "BandwidthResource",
        nbytes: int,
        requested_ns: int,
        on_done: Optional[Callable[["Flow"], None]],
        meta: Optional[Dict[str, Any]],
    ) -> None:
        self.resource = resource
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.requested_ns = requested_ns  # when start_flow was called
        self.start_ns: Optional[int] = None  # when bytes started moving
        self.end_ns: Optional[int] = None
        self.cancelled = False
        self.done = Trigger(name=f"flow.{resource.name}")
        self.on_done = on_done
        self.meta = meta or {}

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        """Admission-to-completion time (latency/delay excluded)."""
        if self.end_ns is None or self.start_ns is None:
            raise ValueError("flow still in flight")
        return self.end_ns - self.start_ns

    @property
    def elapsed_ns(self) -> int:
        """Request-to-completion time (latency/delay included)."""
        if self.end_ns is None:
            raise ValueError("flow still in flight")
        return self.end_ns - self.requested_ns


class BandwidthResource:
    """A bandwidth-limited medium draining flows in virtual time."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth_bytes_per_s: float,
        shared: bool = True,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(f"{name}: bandwidth must be positive")
        self.engine = engine
        self.name = name
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.shared = shared
        self._active: List[Flow] = []
        self._last_ns = engine.now
        self._tick: Optional[EventHandle] = None
        # Counters (benchmarks/tests).
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_cancelled = 0
        self.bytes_completed = 0

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._active)

    def start_flow(
        self,
        nbytes: int,
        latency_ns: int = 0,
        delay_ns: int = 0,
        on_done: Optional[Callable[[Flow], None]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Flow:
        """Begin moving ``nbytes``; the flow joins the sharing pool after
        ``delay_ns + latency_ns`` and completes once its bytes drained."""
        if nbytes < 0:
            raise ValueError("negative size")
        if latency_ns < 0 or delay_ns < 0:
            raise ValueError("negative latency/delay")
        flow = Flow(self, nbytes, self.engine.now, on_done, meta)
        self.flows_started += 1
        lead = delay_ns + latency_ns
        if lead > 0:
            self.engine.schedule(lead, self._admit, flow)
        else:
            self._admit(flow)
        return flow

    def cancel(self, flow: Flow) -> bool:
        """Abort a flow.  Time already spent is *not* refunded to anyone;
        survivors re-share the bandwidth from now on.  Returns False if
        the flow already finished (nothing to cancel)."""
        if flow.cancelled or flow.finished:
            return False
        flow.cancelled = True
        self.flows_cancelled += 1
        if flow in self._active:
            self._advance()
            self._active.remove(flow)
            self._replan()
            tele = self.engine.telemetry
            if tele.enabled:
                tele.storage_level(
                    self.name, self.engine.now, len(self._active)
                )
        return True

    # ------------------------------------------------------------------
    def _admit(self, flow: Flow) -> None:
        if flow.cancelled:
            return
        self._advance()
        flow.start_ns = self.engine.now
        if flow.remaining <= _EPS_BYTES:  # zero-byte flow: latency only
            self._complete(flow)
            return
        self._active.append(flow)
        self._replan()
        tele = self.engine.telemetry
        if tele.enabled:
            tele.storage_level(self.name, self.engine.now, len(self._active))

    def _rate_bytes_per_ns(self) -> float:
        bw = self.bandwidth_bytes_per_s
        if self.shared and self._active:
            bw /= len(self._active)
        return bw / 1e9

    def _advance(self) -> None:
        """Drain every active flow for the time since the last event."""
        now = self.engine.now
        if self._active and now > self._last_ns:
            rate = self._rate_bytes_per_ns()
            dt = now - self._last_ns
            for f in self._active:
                f.remaining -= dt * rate
        self._last_ns = now

    def _replan(self) -> None:
        """(Re)schedule the next completion event."""
        if self._tick is not None:
            self._tick.cancel()
            self._tick = None
        if not self._active:
            return
        rate = self._rate_bytes_per_ns()
        shortest = min(f.remaining for f in self._active)
        dt = max(1, math.ceil(max(0.0, shortest) / rate))
        self._tick = self.engine.schedule(dt, self._on_tick)

    def _on_tick(self) -> None:
        self._tick = None
        self._advance()
        finished = [f for f in self._active if f.remaining <= _EPS_BYTES]
        if finished:
            self._active = [
                f for f in self._active if f.remaining > _EPS_BYTES
            ]
            tele = self.engine.telemetry
            if tele.enabled:
                tele.storage_level(
                    self.name, self.engine.now, len(self._active)
                )
            for f in finished:
                self._complete(f)
        self._replan()

    def _complete(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.end_ns = self.engine.now
        self.flows_completed += 1
        self.bytes_completed += flow.nbytes
        flow.done.fire(flow)
        if flow.on_done is not None:
            flow.on_done(flow)
