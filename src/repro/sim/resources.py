"""Processor-sharing bandwidth resources on the engine clock.

The storage layer's closed-form cost models price a write burst as
``latency + nbytes / (bandwidth / concurrent_writers)`` — an
*instantaneous* guess that has to assume who else is writing.  A
:class:`BandwidthResource` replaces the guess with simulation: each
transfer is a **flow** holding a byte count, the resource drains every
active flow at ``bandwidth / n_active`` (for a shared medium) and
re-plans whenever a flow starts, finishes, or is cancelled.  Contention,
staggering, and overlap therefore *emerge* from the event timeline
instead of being assumed at the call site.

Semantics:

* **Processor sharing** — on a ``shared`` resource, N concurrent equal
  flows all finish at N x one flow's solo time; when one finishes early,
  the survivors immediately speed up.  The resource is work-conserving:
  for flows admitted together, the last completion lands at
  ``total_bytes / bandwidth``.
* **Dedicated media** — with ``shared=False`` every flow drains at the
  full bandwidth regardless of the others (per-node RAM/SSD: each
  writer owns its own device).
* **Cancellation refunds nothing** — a cancelled flow simply leaves the
  active set; virtual time already spent sharing the medium with it is
  gone (no time travel), the survivors only speed up from *now*.
* **Determinism** — completions are engine events ordered by the global
  scheduling sequence, so runs remain reproducible byte-for-byte.

Sharded simulation (``repro.harness.parallel``) decomposes a *shared*
resource across worker processes by mirroring: the shard owning a flow
runs it for real and exports ``("start", ...)`` / ``("cancel", ...)``
records through :attr:`BandwidthResource.export_sink`; every other
shard replays them as **mirror flows** — members of the active set that
consume a bandwidth share (so the owned flows drain at exactly the
sequential rate) but carry no callbacks, counters, or telemetry.  Two
invariants make the replay exact:

* admissions, completions, and cancellations mutate the active set at
  identical sim times on every shard (starts are admitted at an absolute
  ``admit_at_ns``; completions are recomputed locally from the identical
  piecewise-constant rates; cancels are replayed at their recorded
  instant), so every shard derives the same share timeline; and
* same-instant ordering cannot matter: any event touching the lane first
  *reaps* flows whose bytes already drained (completion wins over a
  same-instant admit or cancel), making the outcome independent of the
  intra-instant event order — which differs across shards.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Engine, EventHandle, Trigger

#: Sub-byte slack absorbing float drift when deciding a flow finished.
_EPS_BYTES = 1e-3


class Flow:
    """One transfer in flight on a :class:`BandwidthResource`."""

    __slots__ = (
        "resource",
        "nbytes",
        "remaining",
        "requested_ns",
        "start_ns",
        "end_ns",
        "admit_at_ns",
        "cancelled",
        "done",
        "on_done",
        "meta",
        "gid",
        "mirror",
    )

    def __init__(
        self,
        resource: "BandwidthResource",
        nbytes: int,
        requested_ns: int,
        on_done: Optional[Callable[["Flow"], None]],
        meta: Optional[Dict[str, Any]],
    ) -> None:
        self.resource = resource
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.requested_ns = requested_ns  # when start_flow was called
        self.start_ns: Optional[int] = None  # when bytes started moving
        self.end_ns: Optional[int] = None
        # Absolute admission time (requested + delay + latency): the
        # instant the flow joins the sharing pool on *every* shard.
        self.admit_at_ns: int = requested_ns
        self.cancelled = False
        self.done = Trigger(name=f"flow.{resource.name}")
        self.on_done = on_done
        self.meta = meta or {}
        # Cross-shard identity of an exported flow (owner shard, seq) —
        # None for flows on unshared lanes or in single-process runs.
        self.gid: Optional[Tuple[int, int]] = None
        # True for a replayed copy of another shard's flow: it occupies
        # a bandwidth share but owns no counters, telemetry, or windows.
        self.mirror = False

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        """Admission-to-completion time (latency/delay excluded)."""
        if self.end_ns is None or self.start_ns is None:
            raise ValueError("flow still in flight")
        return self.end_ns - self.start_ns

    @property
    def elapsed_ns(self) -> int:
        """Request-to-completion time (latency/delay included)."""
        if self.end_ns is None:
            raise ValueError("flow still in flight")
        return self.end_ns - self.requested_ns


class BandwidthResource:
    """A bandwidth-limited medium draining flows in virtual time."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth_bytes_per_s: float,
        shared: bool = True,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(f"{name}: bandwidth must be positive")
        self.engine = engine
        self.name = name
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.shared = shared
        self._active: List[Flow] = []
        self._last_ns = engine.now
        self._tick: Optional[EventHandle] = None
        # Absolute time of the scheduled completion tick (None while the
        # lane is idle) — a conservative lower bound on the next
        # completion, used for the shard coordinator's hold points.
        self.tick_at_ns: Optional[int] = None
        # Sharded mirroring (repro.harness.parallel): when set, every
        # real flow on this (shared) lane is announced through the sink
        # as ("start", lane, gid, nbytes, admit_at_ns) and
        # ("cancel", lane, gid, t_ns) records for the other shards.
        self.export_sink: Optional[Callable[[tuple], None]] = None
        self.shard_tag = 0
        self._gid_seq = 0
        # Counters (benchmarks/tests) — real flows only; mirrors of
        # other shards' flows never touch them.
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_cancelled = 0
        self.bytes_completed = 0

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._active)

    def start_flow(
        self,
        nbytes: int,
        latency_ns: int = 0,
        delay_ns: int = 0,
        on_done: Optional[Callable[[Flow], None]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Flow:
        """Begin moving ``nbytes``; the flow joins the sharing pool after
        ``delay_ns + latency_ns`` and completes once its bytes drained."""
        if nbytes < 0:
            raise ValueError("negative size")
        if latency_ns < 0 or delay_ns < 0:
            raise ValueError("negative latency/delay")
        flow = Flow(self, nbytes, self.engine.now, on_done, meta)
        self.flows_started += 1
        lead = delay_ns + latency_ns
        flow.admit_at_ns = self.engine.now + lead
        if self.export_sink is not None and self.shared:
            flow.gid = (self.shard_tag, self._gid_seq)
            self._gid_seq += 1
            self.export_sink(
                ("start", self.name, flow.gid, nbytes, flow.admit_at_ns)
            )
        if lead > 0:
            self.engine.schedule(lead, self._admit, flow)
        else:
            self._admit(flow)
        return flow

    def mirror_flow(self, gid: Tuple[int, int], nbytes: int) -> Flow:
        """A replayed copy of another shard's flow (sharded runs): it
        joins the sharing pool via ``_admit`` at the exported admission
        time and competes for bandwidth, but fires no user callbacks and
        touches no counters or telemetry."""
        flow = Flow(self, nbytes, self.engine.now, None, None)
        flow.gid = gid
        flow.mirror = True
        return flow

    def cancel(self, flow: Flow) -> bool:
        """Abort a flow.  Time already spent is *not* refunded to anyone;
        survivors re-share the bandwidth from now on.  Returns False if
        the flow already finished (nothing to cancel) — including a flow
        whose bytes fully drained by *now* and is completed (reaped) on
        the spot: completion beats a same-instant cancellation on every
        shard regardless of intra-instant event order."""
        if flow.cancelled or flow.finished:
            return False
        if self._active:
            self._advance()
            self._reap()
            if flow.finished:
                self._replan()
                return False
        flow.cancelled = True
        if not flow.mirror:
            self.flows_cancelled += 1
            if self.export_sink is not None and flow.gid is not None:
                self.export_sink(
                    ("cancel", self.name, flow.gid, self.engine.now)
                )
        if flow in self._active:
            self._active.remove(flow)
            if not flow.mirror:
                self._emit_level()
        self._replan()
        return True

    # ------------------------------------------------------------------
    def _admit(self, flow: Flow) -> None:
        if flow.cancelled:
            return
        self._advance()
        self._reap()
        flow.start_ns = self.engine.now
        if flow.remaining <= _EPS_BYTES:  # zero-byte flow: latency only
            self._replan()
            self._complete(flow)
            return
        self._active.append(flow)
        self._replan()
        if not flow.mirror:
            self._emit_level()

    def _emit_level(self) -> None:
        """Occupancy sample: owned (non-mirror) flows only, so merged
        sharded timelines account each real flow exactly once."""
        tele = self.engine.telemetry
        if tele.enabled:
            level = sum(1 for f in self._active if not f.mirror)
            tele.storage_level(self.name, self.engine.now, level)

    def _rate_bytes_per_ns(self) -> float:
        bw = self.bandwidth_bytes_per_s
        if self.shared and self._active:
            bw /= len(self._active)
        return bw / 1e9

    def _advance(self) -> None:
        """Drain every active flow for the time since the last event."""
        now = self.engine.now
        if self._active and now > self._last_ns:
            rate = self._rate_bytes_per_ns()
            dt = now - self._last_ns
            for f in self._active:
                f.remaining -= dt * rate
        self._last_ns = now

    def _reap(self) -> None:
        """Complete every active flow whose bytes already drained.

        Called by any event touching the lane *before* it mutates the
        active set, so a completion due at this instant lands at this
        instant no matter whether the tick, an admit, or a cancel is
        processed first — intra-instant event order differs across
        shards (and between sequential and sharded runs) and must not
        be observable."""
        due = [f for f in self._active if f.remaining <= _EPS_BYTES]
        if not due:
            return
        self._active = [f for f in self._active if f.remaining > _EPS_BYTES]
        if any(not f.mirror for f in due):
            self._emit_level()
        for f in due:
            self._complete(f)

    def _replan(self) -> None:
        """(Re)schedule the next completion event."""
        if self._tick is not None:
            self._tick.cancel()
            self._tick = None
            self.tick_at_ns = None
        if not self._active:
            return
        rate = self._rate_bytes_per_ns()
        shortest = min(f.remaining for f in self._active)
        dt = max(1, math.ceil(max(0.0, shortest) / rate))
        self._tick = self.engine.schedule(dt, self._on_tick)
        self.tick_at_ns = self.engine.now + dt

    def _on_tick(self) -> None:
        self._tick = None
        self.tick_at_ns = None
        self._advance()
        self._reap()
        self._replan()

    def _complete(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.end_ns = self.engine.now
        if not flow.mirror:
            self.flows_completed += 1
            self.bytes_completed += flow.nbytes
        flow.done.fire(flow)
        if flow.on_done is not None:
            flow.on_done(flow)
