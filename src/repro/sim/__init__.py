"""Deterministic discrete-event simulation substrate.

This package is the "hardware" under the reproduced system: a virtual-time
event engine, cooperatively-scheduled rank processes (Python generators),
and a FIFO network with an alpha + beta*size latency model and a node
topology. Everything above it (the MPI library, the SPBC protocol, the
baselines) is deterministic given the engine seed.
"""

from repro.sim.engine import Engine, Trigger, AnyOf, AllOf, SimError, DeadlockError
from repro.sim.process import SimProcess, ProcessKilled, ProcessStatus
from repro.sim.network import Network, NetworkParams, Topology, Packet
from repro.sim.resources import BandwidthResource, Flow

__all__ = [
    "Engine",
    "Trigger",
    "AnyOf",
    "AllOf",
    "SimError",
    "DeadlockError",
    "SimProcess",
    "ProcessKilled",
    "ProcessStatus",
    "Network",
    "NetworkParams",
    "Topology",
    "Packet",
    "BandwidthResource",
    "Flow",
]
