"""Network and topology model.

The model mirrors what the SPBC evaluation ran on: a cluster of nodes
(8 ranks per node in the paper) connected by a flat fabric.  Message cost
uses the classic alpha-beta model with distinct parameters for intra-node
(shared memory) and inter-node (InfiniBand/IPoIB) transfers:

    arrival = depart + alpha + nbytes * beta (+ jitter)

Guarantees:

* **Per-channel FIFO** — packets on a directed (src, dst) pair arrive in
  send order, matching MPI's non-overtaking rule that SPBC's per-channel
  sequence numbers rely on.
* **Sender NIC serialization** — a rank injects one packet at a time at
  the injection bandwidth, so a burst of sends is spaced realistically
  (this is what makes "skipping inter-cluster sends" profitable during
  recovery, paper section 6.4).
* Optional seeded jitter perturbs arrival times without breaking FIFO;
  different seeds give different-but-valid executions, which is how the
  determinism checkers produce "other executions in E_A".

Failure support: all in-flight packets to and from a set of ranks can be
purged atomically (used when a cluster rolls back).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Engine
from repro.util.units import KB, US


@dataclass(frozen=True)
class Topology:
    """Placement of ranks onto nodes; ranks are block-distributed."""

    nranks: int
    ranks_per_node: int = 8

    def __post_init__(self) -> None:
        if self.nranks <= 0 or self.ranks_per_node <= 0:
            raise ValueError("nranks and ranks_per_node must be positive")

    @property
    def nnodes(self) -> int:
        return (self.nranks + self.ranks_per_node - 1) // self.ranks_per_node

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0,{self.nranks})")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> range:
        lo = node * self.ranks_per_node
        hi = min(lo + self.ranks_per_node, self.nranks)
        if lo >= self.nranks:
            raise ValueError(f"node {node} out of range")
        return range(lo, hi)


@dataclass(frozen=True)
class NetworkParams:
    """Latency/bandwidth parameters (defaults ~ IPoIB on IB 20G + shm).

    beta values are ns/byte: 0.8 ns/B ~ 1.25 GB/s effective inter-node,
    0.12 ns/B ~ 8 GB/s intra-node.  alpha values are one-way latencies.
    """

    alpha_inter_ns: int = 8 * US
    beta_inter_ns_per_byte: float = 0.8
    alpha_intra_ns: int = 400
    beta_intra_ns_per_byte: float = 0.12
    # Sender-side injection (NIC/memcpy) cost per byte; serializes sends.
    inject_ns_per_byte: float = 0.25
    inject_fixed_ns: int = 300
    # Uniform random extra latency in [0, jitter_max_ns]; 0 disables.
    jitter_max_ns: int = 0

    def wire_time(self, same_node: bool, nbytes: int) -> int:
        if same_node:
            return self.alpha_intra_ns + int(nbytes * self.beta_intra_ns_per_byte)
        return self.alpha_inter_ns + int(nbytes * self.beta_inter_ns_per_byte)

    def inject_time(self, nbytes: int) -> int:
        return self.inject_fixed_ns + int(nbytes * self.inject_ns_per_byte)


@dataclass(slots=True)
class Packet:
    """One transfer on the wire (an MPI message fragment or control msg)."""

    src: int
    dst: int
    payload: object
    nbytes: int
    sent_at: int = 0
    inject_done_at: int = 0  # when the sender's NIC finished injecting
    arrives_at: int = 0
    channel_seq: int = 0  # network-level FIFO index on (src, dst)


class Network:
    """Connects ranks; delivers packets to a per-rank callback."""

    __slots__ = (
        "engine",
        "topology",
        "params",
        "_rng",
        "_pcache",
        "_nranks",
        "_chan_state",
        "_nic_free",
        "_node_of",
        "_sinks",
        "_in_flight",
        "_flight_ids",
        "packets_sent",
        "bytes_sent",
    )

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        params: Optional[NetworkParams] = None,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.params = params or NetworkParams()
        p = self.params
        # Hot-path constants unpacked per send in one tuple load.
        self._pcache = (
            p.inject_fixed_ns, p.inject_ns_per_byte,
            p.alpha_intra_ns, p.beta_intra_ns_per_byte,
            p.alpha_inter_ns, p.beta_inter_ns_per_byte,
        )
        self._rng = random.Random(seed ^ 0x5B5C_2013)
        # Per-directed-pair [last_arrival_ns, fifo_seq], stored in a flat
        # src*nranks+dst list: one index per send instead of a tuple
        # hash (FIFO enforcement + channel numbering share the entry).
        self._nranks = topology.nranks
        self._chan_state: List[Optional[List[int]]] = (
            [None] * (topology.nranks * topology.nranks)
        )
        # Per-rank NIC availability time (sender serialization).
        self._nic_free: List[int] = [0] * topology.nranks
        # Cached rank -> node map (send-path: same-node test is two list
        # indexings instead of a method call with range checks).
        self._node_of: List[int] = [
            topology.node_of(r) for r in range(topology.nranks)
        ]
        # Delivery sinks, installed by the MPI runtimes.
        self._sinks: List[Optional[Callable[[Packet], None]]] = [
            None
        ] * topology.nranks
        # In-flight packets by flight id (failure purge removes entries;
        # the delivery event then no-ops).
        self._in_flight: Dict[int, Packet] = {}
        self._flight_ids = 0
        # Counters (useful for tests/benches).
        self.packets_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    def attach(self, rank: int, sink: Callable[[Packet], None]) -> None:
        """Install the delivery callback for ``rank``."""
        self._sinks[rank] = sink

    def detach(self, rank: int) -> None:
        self._sinks[rank] = None

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: object, nbytes: int) -> Packet:
        """Inject a packet; returns it (with ``arrives_at`` filled in).

        The sender's NIC is busy until injection completes; the packet then
        takes ``wire_time`` and arrives no earlier than the previous packet
        on the same directed pair (FIFO).
        """
        if src == dst:
            raise ValueError("network send to self is not modeled; loopback "
                             "messages are handled inside the MPI runtime")
        if nbytes < 0:
            raise ValueError("negative nbytes")
        inj_f, inj_b, a_in, b_in, a_ex, b_ex = self._pcache
        engine = self.engine
        now = engine.now
        inject = inj_f + int(nbytes * inj_b)
        nic_free = self._nic_free
        start = nic_free[src]
        if now > start:
            start = now
        nic_free[src] = start + inject
        node_of = self._node_of
        if node_of[src] == node_of[dst]:
            wire = a_in + int(nbytes * b_in)
        else:
            wire = a_ex + int(nbytes * b_ex)
        jitter_max = self.params.jitter_max_ns
        jitter = self._rng.randrange(jitter_max + 1) if jitter_max else 0
        arrival = start + inject + wire + jitter
        idx = src * self._nranks + dst
        state = self._chan_state[idx]
        if state is None:
            state = self._chan_state[idx] = [0, 0]
        if arrival <= state[0]:
            arrival = state[0] + 1  # preserve FIFO and strict ordering
        state[0] = arrival
        seq = state[1] + 1
        state[1] = seq

        pkt = Packet(src, dst, payload, nbytes, now, start + inject, arrival, seq)
        fid = self._flight_ids = self._flight_ids + 1
        # No cancellation handle: purging a packet removes it from the
        # in-flight table, and the delivery event no-ops on the miss.
        # (schedule_at_fast inlined — arrival >= now by construction.)
        engine._seq += 1
        engine._push((arrival, engine._seq, None, self._deliver, (fid,)))
        self._in_flight[fid] = pkt
        self.packets_sent += 1
        self.bytes_sent += nbytes
        return pkt

    def _deliver(self, fid: int) -> None:
        pkt = self._in_flight.pop(fid, None)
        if pkt is None:
            return  # purged at rollback time
        sink = self._sinks[pkt.dst]
        if sink is None:
            return  # destination dead and not yet restarted: packet lost
        sink(pkt)

    # ------------------------------------------------------------------
    def purge_involving(self, ranks: set[int]) -> int:
        """Drop every in-flight packet to or from ``ranks``.

        Used at rollback time: a failed cluster loses its in-flight traffic
        in both directions (paper model: crash kills the node's transport).
        Returns the number of packets dropped.
        """
        doomed = [
            fid
            for fid, pkt in self._in_flight.items()
            if pkt.src in ranks or pkt.dst in ranks
        ]
        for fid in doomed:
            del self._in_flight[fid]
        return len(doomed)

    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def chan_state_items(self):
        """Active directed pairs as ((src, dst), [last_arrival, seq])
        (warp snapshot/apply helper over the flat store)."""
        n = self._nranks
        for idx, state in enumerate(self._chan_state):
            if state is not None:
                yield divmod(idx, n), state


DEFAULT_EAGER_THRESHOLD = 64 * KB
