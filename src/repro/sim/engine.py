"""Discrete-event engine with integer-nanosecond virtual time.

Design notes
------------
* The pending-event set holds ``(time_ns, seq, handle, fn, args)`` tuples
  where ``seq`` is a global monotone counter assigned at scheduling time.
  Two events at the same virtual time therefore fire in scheduling order,
  making whole executions reproducible byte-for-byte.  The container is a
  pluggable :mod:`repro.sim.eventq` backend — an adaptive calendar queue
  by default, the classic binary heap under ``REPRO_EVENTQ=heap`` — both
  draining in identical ``(time_ns, seq)`` order.
* Blocking is expressed with :class:`Trigger` objects.  A process
  generator yields a trigger and is resumed with ``trigger.value`` once it
  fires.  Triggers are single-fire.  ``AnyOf``/``AllOf`` compose them.
* The engine deliberately knows nothing about MPI or protocols; it only
  schedules callables and wakes trigger waiters.

Fast paths (profiled on the Tier-1 workloads, see
``tools/profile_hotpath.py`` and ``docs/performance.md``):

* :meth:`Engine.schedule_fast` / :meth:`Engine.schedule_at_fast` skip the
  :class:`EventHandle` allocation for the ~90% of events that are never
  cancelled (process resumes, send completions, timer fires).
* :meth:`Engine.timeout_pooled` recycles timeout triggers through a free
  list, so the hottest pattern in every workload — a virtual sleep per
  compute phase — allocates nothing in steady state.  Pooled triggers are
  engine-internal: they must be waited on before they fire and must not
  be composed or stored (the public :meth:`Engine.timeout` keeps the
  allocate-per-call semantics for arbitrary composition).
* The :meth:`Engine.run` loop binds its hot locals and pops directly in
  the common no-deadline case.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro.obs import NULL_TELEMETRY
from repro.sim.eventq import make_event_queue


class SimError(RuntimeError):
    """Base class for simulator errors."""


class DeadlockError(SimError):
    """Raised when ``run()`` exhausts events while processes still block.

    A drained event queue with live blocked processes means no future event
    can ever wake them: the simulated program has deadlocked.
    """


class EventHandle:
    """Cancelable handle for a scheduled event."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True


class Engine:
    """The virtual clock and event queue."""

    __slots__ = (
        "now",
        "_eq",
        "_push",
        "_seq",
        "_running",
        "_stopped",
        "_timeout_pool",
        "events_executed",
        "compute_sleepers",
        "processes",
        "telemetry",
    )

    def __init__(self) -> None:
        self.now: int = 0
        # Pending-event set (repro.sim.eventq); _push is the bound insert
        # method, cached because every scheduling path goes through it.
        self._eq = make_event_queue()
        self._push = self._eq.push
        self._seq: int = 0
        self._running = False
        self._stopped = False
        # Free list of recycled timeout triggers (see timeout_pooled).
        self._timeout_pool: List["_Timeout"] = []
        # Cumulative events executed across run() calls (simperf metric).
        self.events_executed: int = 0
        # Processes currently blocked in a *compute* sleep (maintained by
        # the process driver; lets the warp detector gate its O(n)
        # quiescence probe on an O(1) check).
        self.compute_sleepers: int = 0
        # Processes register here so run() can detect deadlock; the engine
        # treats them opaquely (anything with .is_blocked and .name).
        self.processes: List[Any] = []
        # Telemetry sink (repro.obs): the storage/resource layers reach
        # it through the engine they are already bound to.  The null
        # object keeps the disabled path to one attribute load + branch.
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay_ns: int, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise ValueError(f"negative delay {delay_ns}")
        handle = EventHandle()
        self._seq += 1
        self._push((self.now + delay_ns, self._seq, handle, fn, args))
        return handle

    def schedule_fast(
        self, delay_ns: int, fn: Callable[..., None], *args: Any
    ) -> None:
        """Like :meth:`schedule` but without a cancellation handle.

        For the hot internal call sites that never cancel their events
        (process resumes, timer fires, send completions): one tuple push,
        no :class:`EventHandle` allocation."""
        if delay_ns < 0:
            raise ValueError(f"negative delay {delay_ns}")
        self._seq += 1
        self._push((self.now + delay_ns, self._seq, None, fn, args))

    def schedule_at(
        self, time_ns: int, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(f"cannot schedule in the past ({time_ns} < {self.now})")
        return self.schedule(time_ns - self.now, fn, *args)

    def schedule_at_fast(
        self, time_ns: int, fn: Callable[..., None], *args: Any
    ) -> None:
        """Absolute-time variant of :meth:`schedule_fast`."""
        if time_ns < self.now:
            raise ValueError(f"cannot schedule in the past ({time_ns} < {self.now})")
        self._seq += 1
        self._push((time_ns, self._seq, None, fn, args))

    def timeout(self, delay_ns: int) -> "Trigger":
        """A trigger that fires ``delay_ns`` from now (virtual sleep).

        Allocates a fresh trigger every call; safe to compose (AnyOf /
        AllOf) or inspect after the run.  Hot internal sleeps use
        :meth:`timeout_pooled` instead."""
        trig = Trigger()
        self.schedule_fast(delay_ns, trig.fire, None)
        return trig

    def timeout_pooled(self, delay_ns: int) -> "Trigger":
        """A free-listed virtual sleep for the hottest path.

        The returned trigger is recycled into the engine's pool the
        moment it fires, so steady-state sleeping allocates nothing.
        Contract (engine-internal): the caller must register its waiter
        before the deadline (in practice: yield it in the same event that
        created it) and must not compose it into AnyOf/AllOf or read it
        after it fired."""
        if delay_ns < 0:
            # Validate before touching the pool so a raise cannot strand a
            # reset trigger outside the free list.
            raise ValueError(f"negative delay {delay_ns}")
        pool = self._timeout_pool
        if pool:
            trig = pool.pop()
            trig.fired = False
            trig.value = None
        else:
            trig = _Timeout(pool)
        self._seq += 1
        self._push((self.now + delay_ns, self._seq, None, trig.fire, ()))
        return trig

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until_ns: Optional[int] = None,
        detect_deadlock: bool = True,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains (or ``until_ns`` / ``stop()``).

        Returns the number of events executed.  When the queue drains while
        registered processes are still blocked and ``detect_deadlock`` is
        set, raises :class:`DeadlockError` naming the stuck processes.
        """
        if self._running:
            raise SimError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        eq = self._eq
        pop = eq.pop
        try:
            if until_ns is None and max_events is None:
                # Hot loop: no deadline, no event budget — the common case
                # for full-run simulations.
                while True:
                    if self._stopped:
                        break
                    item = pop()
                    if item is None:
                        break
                    time_ns, _seq, handle, fn, args = item
                    if handle is not None and handle.cancelled:
                        continue
                    self.now = time_ns
                    fn(*args)
                    executed += 1
            elif max_events is None:
                # Deadline-only loop (the windowed PDES shard hot path):
                # a fused peek+pop keeps it at one queue call per event.
                pop_until = eq.pop_until
                while True:
                    if self._stopped:
                        break
                    item = pop_until(until_ns)
                    if item is None:
                        if eq.peek_time() is not None:
                            self.now = until_ns
                        break
                    time_ns, _seq, handle, fn, args = item
                    if handle is not None and handle.cancelled:
                        continue
                    self.now = time_ns
                    fn(*args)
                    executed += 1
            else:
                peek = eq.peek_time
                while True:
                    if self._stopped:
                        break
                    time_ns = peek()
                    if time_ns is None:
                        break
                    if until_ns is not None and time_ns > until_ns:
                        self.now = until_ns
                        break
                    time_ns, _seq, handle, fn, args = pop()
                    if handle is not None and handle.cancelled:
                        continue
                    self.now = time_ns
                    fn(*args)
                    executed += 1
                    if executed >= max_events:
                        raise SimError(
                            f"exceeded max_events={max_events}; likely livelock"
                        )
        finally:
            self._running = False
            self.events_executed += executed
        if detect_deadlock and not self._stopped and not len(self._eq):
            stuck = [p for p in self.processes if getattr(p, "is_blocked", False)]
            if stuck:
                names = ", ".join(str(getattr(p, "name", p)) for p in stuck[:8])
                raise DeadlockError(
                    f"event queue drained with {len(stuck)} blocked process(es): {names}"
                )
        return executed

    def stop(self) -> None:
        """Stop ``run()`` after the current event returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._eq)

    def next_event_time(self) -> Optional[int]:
        """Virtual time of the earliest live pending event, or ``None``.

        Discards cancelled handles at the queue head so the answer is
        exact — the lower bound the conservative shard coordinator
        (:mod:`repro.harness.parallel`) builds its safe horizon from."""
        return self._eq.next_live_time()

    def iter_pending(self) -> Iterator[tuple]:
        """Iterate the pending ``(time_ns, seq, handle, fn, args)`` tuples
        in unspecified order (cancelled events may still appear).  The
        warp detector's quiescence probe reads the queue through this."""
        return iter(self._eq)

    # ------------------------------------------------------------------
    # Warp support (see repro.sim.warp): shift every pending event and
    # the clock by a constant.  Adding the same delta to every key
    # preserves all same-time sequencing exactly; the calendar backend
    # does it in O(1) by rebasing its epoch offset.
    # ------------------------------------------------------------------
    def shift_pending(self, delta_ns: int) -> None:
        if delta_ns < 0:
            raise ValueError(f"negative warp shift {delta_ns}")
        self._eq.shift_all(delta_ns)
        self.now += delta_ns


class Trigger:
    """A single-fire wakeup condition.

    A waiter is anything with a ``_trigger_fired(trigger)`` method (the
    process driver and composite triggers implement it).  ``fire`` may be
    called before any waiter registers; late waiters observe ``fired`` and
    do not block.

    Waiters are kept in an insertion-ordered dict keyed by identity, so
    wake order stays deterministic while ``discard_waiter`` is O(1)
    (the old list-based removal was an O(n) scan on every wait
    cancellation — hot under waitany-style composites).
    """

    __slots__ = ("fired", "value", "_waiters", "name")

    #: True only for virtual-sleep wakeups (pooled timeouts / sleep
    #: markers); is_compute further marks application compute phases —
    #: the warp detector keys on both.
    is_sleep = False
    is_compute = False

    def __init__(self, name: str = "") -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: Dict[int, Any] = {}
        self.name = name

    def fire(self, value: Any = None) -> None:
        """Fire the trigger, waking all registered waiters exactly once."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = {}
            for w in waiters.values():
                w._trigger_fired(self)

    def add_waiter(self, waiter: Any) -> None:
        if self.fired:
            waiter._trigger_fired(self)
        else:
            self._waiters[id(waiter)] = waiter

    def discard_waiter(self, waiter: Any) -> None:
        self._waiters.pop(id(waiter), None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return f"<Trigger {self.name or id(self):x} {state}>"


class _Timeout(Trigger):
    """A pooled virtual-sleep trigger (see Engine.timeout_pooled).

    Returns itself to the engine's free list as soon as it fires; by the
    pooled-timeout contract every waiter registered before the deadline
    and read ``value`` synchronously inside ``fire``, so nothing can
    observe the recycled object afterwards.
    """

    __slots__ = ("_pool",)

    is_sleep = True

    def __init__(self, pool: List["_Timeout"]) -> None:
        super().__init__()
        self._pool = pool

    def fire(self, value: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = {}
            for w in waiters.values():
                w._trigger_fired(self)
        self._pool.append(self)


class AnyOf(Trigger):
    """Fires when any child trigger fires; value = (index, child_value)."""

    __slots__ = ("children", "_index")

    def __init__(self, children: Iterable[Trigger]) -> None:
        super().__init__(name="any")
        self.children = list(children)
        if not self.children:
            raise ValueError("AnyOf requires at least one child")
        # Precomputed identity -> position map: _trigger_fired used to
        # call children.index(child), an O(n) scan per completion that
        # dominated waitany-heavy workloads.
        self._index = {id(c): i for i, c in enumerate(self.children)}
        for child in self.children:
            child.add_waiter(self)

    def _trigger_fired(self, child: Trigger) -> None:
        if self.fired:
            return
        idx = self._index[id(child)]
        for other in self.children:
            if other is not child:
                other.discard_waiter(self)
        self.fire((idx, child.value))


class AllOf(Trigger):
    """Fires when every child trigger has fired; value = list of values."""

    __slots__ = ("children", "_remaining")

    def __init__(self, children: Iterable[Trigger]) -> None:
        super().__init__(name="all")
        self.children = list(children)
        self._remaining = 0
        if not self.children:
            raise ValueError("AllOf requires at least one child")
        # Count first, then register: a child firing synchronously during
        # registration must not complete the composite early.
        self._remaining = sum(1 for c in self.children if not c.fired)
        if self._remaining == 0:
            self.fire([c.value for c in self.children])
            return
        for child in self.children:
            if not child.fired:
                child.add_waiter(self)

    def _trigger_fired(self, child: Trigger) -> None:
        if self.fired:
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.fire([c.value for c in self.children])
