"""Discrete-event engine with integer-nanosecond virtual time.

Design notes
------------
* The event queue is a binary heap of ``(time_ns, seq, fn, args)`` where
  ``seq`` is a global monotone counter assigned at scheduling time.  Two
  events at the same virtual time therefore fire in scheduling order,
  making whole executions reproducible byte-for-byte.
* Blocking is expressed with :class:`Trigger` objects.  A process
  generator yields a trigger and is resumed with ``trigger.value`` once it
  fires.  Triggers are single-fire.  ``AnyOf``/``AllOf`` compose them.
* The engine deliberately knows nothing about MPI or protocols; it only
  schedules callables and wakes trigger waiters.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional


class SimError(RuntimeError):
    """Base class for simulator errors."""


class DeadlockError(SimError):
    """Raised when ``run()`` exhausts events while processes still block.

    A drained event queue with live blocked processes means no future event
    can ever wake them: the simulated program has deadlocked.
    """


class EventHandle:
    """Cancelable handle for a scheduled event."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True


class Engine:
    """The virtual clock and event queue."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        # Processes register here so run() can detect deadlock; the engine
        # treats them opaquely (anything with .is_blocked and .name).
        self.processes: List[Any] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay_ns: int, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise ValueError(f"negative delay {delay_ns}")
        handle = EventHandle()
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay_ns, self._seq, handle, fn, args))
        return handle

    def schedule_at(
        self, time_ns: int, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(f"cannot schedule in the past ({time_ns} < {self.now})")
        return self.schedule(time_ns - self.now, fn, *args)

    def timeout(self, delay_ns: int) -> "Trigger":
        """A trigger that fires ``delay_ns`` from now (virtual sleep)."""
        trig = Trigger(name=f"timeout+{delay_ns}")
        self.schedule(delay_ns, trig.fire, None)
        return trig

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until_ns: Optional[int] = None,
        detect_deadlock: bool = True,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains (or ``until_ns`` / ``stop()``).

        Returns the number of events executed.  When the queue drains while
        registered processes are still blocked and ``detect_deadlock`` is
        set, raises :class:`DeadlockError` naming the stuck processes.
        """
        if self._running:
            raise SimError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                time_ns, _seq, handle, fn, args = self._heap[0]
                if until_ns is not None and time_ns > until_ns:
                    self.now = until_ns
                    break
                heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                self.now = time_ns
                fn(*args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimError(
                        f"exceeded max_events={max_events}; likely livelock"
                    )
        finally:
            self._running = False
        if detect_deadlock and not self._stopped and not self._heap:
            stuck = [p for p in self.processes if getattr(p, "is_blocked", False)]
            if stuck:
                names = ", ".join(str(getattr(p, "name", p)) for p in stuck[:8])
                raise DeadlockError(
                    f"event queue drained with {len(stuck)} blocked process(es): {names}"
                )
        return executed

    def stop(self) -> None:
        """Stop ``run()`` after the current event returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._heap)


class Trigger:
    """A single-fire wakeup condition.

    A waiter is anything with a ``_trigger_fired(trigger)`` method (the
    process driver and composite triggers implement it).  ``fire`` may be
    called before any waiter registers; late waiters observe ``fired`` and
    do not block.
    """

    __slots__ = ("fired", "value", "_waiters", "name")

    def __init__(self, name: str = "") -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: List[Any] = []
        self.name = name

    def fire(self, value: Any = None) -> None:
        """Fire the trigger, waking all registered waiters exactly once."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w._trigger_fired(self)

    def add_waiter(self, waiter: Any) -> None:
        if self.fired:
            waiter._trigger_fired(self)
        else:
            self._waiters.append(waiter)

    def discard_waiter(self, waiter: Any) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return f"<Trigger {self.name or id(self):x} {state}>"


class AnyOf(Trigger):
    """Fires when any child trigger fires; value = (index, child_value)."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Trigger]) -> None:
        super().__init__(name="any")
        self.children = list(children)
        if not self.children:
            raise ValueError("AnyOf requires at least one child")
        for child in self.children:
            child.add_waiter(self)

    def _trigger_fired(self, child: Trigger) -> None:
        if self.fired:
            return
        idx = self.children.index(child)
        for other in self.children:
            if other is not child:
                other.discard_waiter(self)
        self.fire((idx, child.value))


class AllOf(Trigger):
    """Fires when every child trigger has fired; value = list of values."""

    __slots__ = ("children", "_remaining")

    def __init__(self, children: Iterable[Trigger]) -> None:
        super().__init__(name="all")
        self.children = list(children)
        self._remaining = 0
        if not self.children:
            raise ValueError("AllOf requires at least one child")
        # Count first, then register: a child firing synchronously during
        # registration must not complete the composite early.
        self._remaining = sum(1 for c in self.children if not c.fired)
        if self._remaining == 0:
            self.fire([c.value for c in self.children])
            return
        for child in self.children:
            if not child.fired:
                child.add_waiter(self)

    def _trigger_fired(self, child: Trigger) -> None:
        if self.fired:
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.fire([c.value for c in self.children])
