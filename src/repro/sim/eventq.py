"""Pluggable event queues for the engine: binary heap and calendar queue.

The engine's pending-event set was a ``heapq`` of
``(time_ns, seq, handle, fn, args)`` tuples.  That is O(log n) per
insert/pop, and once a shard carries thousands of in-flight sleeps,
flows, and mirrored storage records (4096-16384 rank runs), the heap's
sift comparisons dominate the hot loop.  This module makes the queue a
swappable component with two implementations:

* :class:`HeapEventQueue` — the original binary heap, kept selectable
  (``REPRO_EVENTQ=heap``) as the differential-fuzz reference;
* :class:`CalendarEventQueue` — an adaptive calendar queue / timing
  wheel (``REPRO_EVENTQ=wheel``, the default): below the measured
  crossover depth it simply *is* a heap (tiny mode — everything in the
  spine), and past it near-future events land in fixed-width buckets
  (amortized O(1) insert/pop), far-future events (MTBF-scale failure
  arrivals, horizon caps) overflow into a small sorted spine, and the
  bucket width is re-calibrated from the observed pending-time
  distribution whenever the calendar is rebuilt.

Exactness contract (shared by both backends, property-tested in
``tests/sim/test_eventq.py`` and differentially fuzzed against each
other in ``tests/integration/test_eventq_differential.py``):

* events drain in strict ``(time_ns, seq)`` order — ``seq`` is unique,
  so two events never tie and whole executions are byte-for-byte
  identical regardless of backend;
* ``peek_time`` returns the raw head's absolute time (cancelled or
  not), matching the old ``heap[0][0]`` deadline check in ``run()``;
* ``next_live_time`` additionally discards cancelled heads, matching
  ``Engine.next_event_time`` (the conservative shard coordinator's
  safe-horizon peek);
* ``shift_all`` adds a constant to every pending time.  The heap
  rewrites its tuples; the wheel just moves its epoch ``offset`` — the
  O(1) rebase that makes a steady-state warp jump independent of queue
  depth.

Calendar internals
------------------
The queue is adaptive in *representation*, not just in geometry: below
``TINY_MAX`` pending events the whole population lives in the overflow
spine and every operation is a plain C ``heapq`` op — at shallow depth
(a 128-rank run peaks at ~128 pending events) the heap's constant
factor beats pure-Python bucket management by ~10%, and the hold-model
microbenchmark only shows the calendar winning past a few thousand
events.  Crossing ``TINY_MAX`` migrates into buckets via one rebuild;
a day that drains empty with at most ``TINY_MIN`` spine survivors
collapses back (a 4x hysteresis band, so a population hovering near
the threshold doesn't thrash migrations).  Both representations drain
the identical ``(time_ns, seq)`` total order, so the migration is
invisible to the execution.

Times are stored *internally* as ``t_abs - offset`` so ``shift_all`` is
a single integer add.  Buckets are modular — an event at internal time
``t`` lives in bucket ``(t // width) % nbuckets`` — and the placement
horizon ``limit`` slides forward with the cursor, always one full day
(``nbuckets * width``) ahead of it.  The sliding window is the load-
bearing choice: with a *fixed* day, the steady-state reschedule traffic
(every drained compute sleep scheduling its successor one period ahead)
marches off the end of the day into the overflow spine, floods it, and
forces a full rebuild every few thousand events — measured ~200
rebuilds per 4096-rank run, a ~2x slowdown.  With the window sliding,
an event one reschedule horizon ahead is *always* in-day, the spine
only ever holds genuinely far-future items, and steady state rebuilds
drop to near zero.

The bucket under the cursor is kept sorted: it drains with an advancing
position index (popped slots are nulled so each tuple is freed exactly
when ``heappop`` would free it), and same-bucket inserts take a
one-comparison tail append (burst traffic arrives in near-monotone
``(time, seq)`` order) or a cursor-bounded ``bisect.insort``.  Later
buckets are unsorted append lists, sorted once when the cursor reaches
them.  Anything at or past ``limit`` goes to the spine (a heap), which
drains back into buckets as the horizon slides over it.  When a full
lap finds every bucket empty, the window jumps straight to the spine's
minimum — a far-future idle stretch costs one jump, not a crawl.

Deliberately *not* a resize trigger: raw bucket occupancy.
Collective-heavy workloads park thousands of events on one timestamp
(every rank waking at a barrier), and that kind of fat bucket is both
unspreadable (no width subdivides a single instant) and cheap (ties
order by the globally-monotone seq, so same-time inserts are a
one-comparison tail append, and drain is an index increment).  A naive
occupancy trigger measured on exactly that workload ping-ponged with
the sparsity trigger for ~200 futile rebuilds per run.  What *does*
trigger is deep-insert churn: an insert landing far from the bucket
tail is an O(bucket) memmove, and a steady diet of those means the
population is dense and *distributed* — the one fat-bucket shape a
narrower width genuinely fixes.  That distinction is what keeps the
classic hold benchmark (steady depth, exponential reschedule
increments) O(1) instead of O(depth) without touching the barrier-burst
fast path.

Rebuilds happen when the spine floods (the day is undersized: grow),
when an empty-lap jump finds the population far below the bucket count
(the day is oversized: shrink), or when deep-insert churn passes
``CHURN_CAP`` (the width is too coarse: spread).  A rebuild sizes the
bucket count to ~2x the square root of the live population (laps and
bucket occupancy both stay modest; power of two in
``[MIN_BUCKETS, MAX_BUCKETS]``, with a 4x dead band before shrinking) —
or, on a spread rebuild, to ~``count / TARGET_OCC`` so average
occupancy lands near ``TARGET_OCC`` — and sets the width so the day
spans ~2x the 99th percentile of pending times: the pending span
proxies the reschedule horizon, and the percentile keeps one MTBF-scale
failure arrival hours out from stretching the buckets that serve the
microsecond-scale bulk.
"""

from __future__ import annotations

import os
from bisect import bisect_right, insort
from heapq import heapify, heappop, heappush
from typing import Iterator, List, Optional, Tuple

#: (time_ns, seq, handle, fn, args) — absolute virtual time, globally
#: unique monotone seq, optional EventHandle, callback, args.
Item = Tuple[int, int, object, object, tuple]

#: Environment variable selecting the backend ("wheel" | "heap").
EVENTQ_ENV = "REPRO_EVENTQ"
DEFAULT_BACKEND = "wheel"

MIN_BUCKETS = 32
MAX_BUCKETS = 1 << 16
#: Starting bucket width before the first calibration (ns).  Any value
#: works correctly — the spine and the rebuild calibration absorb a bad
#: guess — this one just fits the Tier-1 workloads' microsecond gaps.
DEFAULT_WIDTH_NS = 1 << 13
#: Spine size that triggers a grow-rebuild (the day is undersized).
SPINE_CAP = 1 << 10
#: A same-bucket insert landing more than this many slots from the tail
#: is a "deep" insert (an O(bucket) memmove, not a cheap append).
DEEP_INSERT = 64
#: Deep inserts since the last rebuild that trigger a spread-rebuild
#: (the bucket width is too wide for a *distributed* population).
#: Swept on the committed 4096-rank op trace: larger caps amortize the
#: O(n) rebuilds better (79 rebuilds vs 575 at cap=64) without letting
#: the deep-insert memmoves run long enough to matter.
CHURN_CAP = 1 << 10
#: Per-bucket occupancy a spread-rebuild aims for.
TARGET_OCC = 32
#: Population above which the queue migrates from the plain-heap (tiny)
#: representation into buckets.  Below the crossover the C-implemented
#: ``heapq`` beats pure-Python bucket management (measured ~10% on
#: 128-rank full runs, parity at depth ~1000 in the hold model), so the
#: adaptive queue simply *is* a heap until the population justifies the
#: calendar.
TINY_MAX = 1 << 11
#: Population at or below which an empty day collapses back to the tiny
#: representation (4x hysteresis below TINY_MAX so a population
#: hovering near the threshold doesn't thrash migrations).
TINY_MIN = 1 << 9


class HeapEventQueue:
    """The original binary-heap pending set behind the queue protocol."""

    __slots__ = ("_heap",)

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[Item] = []

    def push(self, item: Item) -> None:
        heappush(self._heap, item)

    def pop(self) -> Optional[Item]:
        heap = self._heap
        if heap:
            return heappop(heap)
        return None

    def pop_until(self, until_ns: int) -> Optional[Item]:
        heap = self._heap
        if heap and heap[0][0] <= until_ns:
            return heappop(heap)
        return None

    def peek_time(self) -> Optional[int]:
        heap = self._heap
        return heap[0][0] if heap else None

    def next_live_time(self) -> Optional[int]:
        heap = self._heap
        while heap:
            head = heap[0]
            handle = head[2]
            if handle is not None and handle.cancelled:
                heappop(heap)
                continue
            return head[0]
        return None

    def shift_all(self, delta_ns: int) -> None:
        heap = self._heap
        for i, (t, seq, handle, fn, args) in enumerate(heap):
            heap[i] = (t + delta_ns, seq, handle, fn, args)

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._heap)


class CalendarEventQueue:
    """Adaptive calendar queue / timing wheel (see module docstring)."""

    __slots__ = (
        "_offset",
        "_width",
        "_shift",
        "_mask",
        "_nbuckets",
        "_curtime",
        "_limit",
        "_buckets",
        "_cur",
        "_curbuf",
        "_curpos",
        "_spine",
        "_spine_cap",
        "_churn",
        "_tiny",
        "resizes",
        "day_rolls",
    )

    name = "wheel"

    def __init__(self) -> None:
        self._offset = 0  # absolute = internal + offset (warp rebase)
        self._width = DEFAULT_WIDTH_NS
        self._shift = DEFAULT_WIDTH_NS.bit_length() - 1
        self._mask = MIN_BUCKETS - 1
        self._nbuckets = MIN_BUCKETS
        self._curtime = 0  # lap start of the cursor bucket (internal)
        self._limit = MIN_BUCKETS * DEFAULT_WIDTH_NS  # placement horizon
        self._buckets: List[List[Item]] = [[] for _ in range(MIN_BUCKETS)]
        self._cur = 0
        self._curbuf = self._buckets[0]
        self._curpos = 0
        self._spine: List[Item] = []
        self._spine_cap = SPINE_CAP
        self._churn = 0
        self._tiny = True  # start as a plain heap; migrate past TINY_MAX
        # Introspection for tests/benchmarks.
        self.resizes = 0
        self.day_rolls = 0

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def push(self, item: Item) -> None:
        t = item[0]
        offset = self._offset
        if offset:
            t -= offset
            item = (t,) + item[1:]
        if self._tiny:
            # Below the crossover the whole queue lives in the spine —
            # the adaptive queue *is* a binary heap until the population
            # justifies bucket management.
            spine = self._spine
            heappush(spine, item)
            if len(spine) > TINY_MAX:
                self._tiny = False
                self._rebuild()
            return
        if t >= self._limit:
            # Beyond the sliding window: far-future spine.
            spine = self._spine
            heappush(spine, item)
            if len(spine) > self._spine_cap:
                self._rebuild()  # the day is undersized: grow it
            return
        if t >= self._curtime:
            idx = (t >> self._shift) & self._mask
            if idx != self._cur:
                self._buckets[idx].append(item)
                return
            # Same-bucket insert.  Burst traffic (hundreds of ranks
            # waking at one barrier timestamp, then scheduling sends a
            # hop ahead) arrives in near-monotone (time, seq) order, so
            # first try a one-comparison tail append; otherwise bisect,
            # bounded below by the cursor (every consumed entry orders
            # before a fresh item: its time is <= now <= t, and seq is
            # globally monotone).
            buf = self._curbuf
            pos = self._curpos
            if pos < len(buf):
                if item >= buf[-1]:
                    buf.append(item)
                else:
                    j = bisect_right(buf, item, pos)
                    buf.insert(j, item)
                    if len(buf) - j > DEEP_INSERT:
                        # An O(bucket) memmove.  Occasional deep inserts
                        # are cheaper than recalibrating; a steady diet
                        # of them (a dense *distributed* population
                        # collapsed into one wide bucket) is the one
                        # case where a narrower width genuinely helps.
                        self._churn += 1
                        if self._churn > CHURN_CAP:
                            self._rebuild(spread=True)
            else:
                # Fully drained: drop the consumed prefix (pops null
                # their slots, so the tail compare above would see None).
                buf.clear()
                buf.append(item)
                self._curpos = 0
            return
        if t >= self._limit - (self._nbuckets << self._shift):
            # Behind the cursor but still inside the window (a peek
            # advanced the cursor while the engine idled at a window
            # horizon, then something scheduled sooner): rewind.  The
            # modular position is still unique, so just park the cursor
            # back on it; the old cursor bucket keeps its unconsumed
            # tail and is re-sorted when the cursor returns.
            del self._curbuf[: self._curpos]
            shift = self._shift
            idx = (t >> shift) & self._mask
            bucket = self._buckets[idx]
            bucket.append(item)
            bucket.sort()
            self._cur = idx
            self._curtime = (t >> shift) << shift
            self._curbuf = bucket
            self._curpos = 0
            return
        # More than a full day below the horizon (a shard import landed
        # far behind a long-idle window).  Rare: park it on the spine
        # and rebuild around the new minimum.
        heappush(self._spine, item)
        self._rebuild()

    def pop(self) -> Optional[Item]:
        # Drained slots are nulled so each event tuple is freed at pop,
        # exactly like heappop: retaining the consumed prefix until the
        # bucket empties keeps thousands of dead tuples (and their args)
        # alive mid-day, bloating the allocator's working set.
        if self._tiny:
            spine = self._spine
            if not spine:
                return None
            item = heappop(spine)
            offset = self._offset
            if offset:
                return (item[0] + offset,) + item[1:]
            return item
        buf = self._curbuf
        pos = self._curpos
        if pos < len(buf):
            self._curpos = pos + 1
            item = buf[pos]
            buf[pos] = None
            offset = self._offset
            if offset:
                return (item[0] + offset,) + item[1:]
            return item
        if not self._advance():
            if self._tiny:  # the empty day collapsed back to a heap
                return self.pop()
            return None
        self._curpos = 1
        buf = self._curbuf
        item = buf[0]
        buf[0] = None
        offset = self._offset
        if offset:
            return (item[0] + offset,) + item[1:]
        return item

    def pop_until(self, until_ns: int) -> Optional[Item]:
        """Fused deadline peek+pop: the head event if its time is
        ``<= until_ns`` (popping it), else None (leaving it).  This is
        the windowed (PDES shard) hot path — one bounds check and one
        list index per event instead of two method calls."""
        if self._tiny:
            spine = self._spine
            if not spine:
                return None
            item = spine[0]
            offset = self._offset
            t = item[0] + offset
            if t > until_ns:
                return None
            heappop(spine)
            if offset:
                return (t,) + item[1:]
            return item
        buf = self._curbuf
        pos = self._curpos
        if pos >= len(buf):
            if not self._advance():
                if self._tiny:
                    return self.pop_until(until_ns)
                return None
            buf = self._curbuf
            pos = 0
        item = buf[pos]
        offset = self._offset
        if offset:
            t = item[0] + offset
            if t > until_ns:
                return None
            self._curpos = pos + 1
            buf[pos] = None
            return (t,) + item[1:]
        if item[0] > until_ns:
            return None
        self._curpos = pos + 1
        buf[pos] = None
        return item

    def peek_time(self) -> Optional[int]:
        if self._tiny:
            spine = self._spine
            return spine[0][0] + self._offset if spine else None
        pos = self._curpos
        if pos >= len(self._curbuf):
            if not self._advance():
                if self._tiny:
                    return self.peek_time()
                return None
            pos = 0
        return self._curbuf[pos][0] + self._offset

    def next_live_time(self) -> Optional[int]:
        while True:
            if self._tiny:
                spine = self._spine
                while spine:
                    head = spine[0]
                    handle = head[2]
                    if handle is not None and handle.cancelled:
                        heappop(spine)
                        continue
                    return head[0] + self._offset
                return None
            pos = self._curpos
            buf = self._curbuf
            if pos >= len(buf):
                if not self._advance():
                    if self._tiny:
                        continue
                    return None
                buf = self._curbuf
                pos = 0
            head = buf[pos]
            handle = head[2]
            if handle is not None and handle.cancelled:
                self._curpos = pos + 1
                buf[pos] = None
                continue
            return head[0] + self._offset

    # ------------------------------------------------------------------
    # Warp rebase: O(1) regardless of queue depth.
    # ------------------------------------------------------------------
    def shift_all(self, delta_ns: int) -> None:
        self._offset += delta_ns

    def __len__(self) -> int:
        # No hot-path occupancy counter; the few callers (deadlock check
        # at run() exit, telemetry queue-depth samples, the oversized-day
        # check on an empty-lap jump) can afford the O(nbuckets) sum.
        n = len(self._spine) - self._curpos
        for bucket in self._buckets:
            n += len(bucket)
        return n

    def __iter__(self) -> Iterator[Item]:
        offset = self._offset
        items = list(self._curbuf[self._curpos:])
        cur = self._cur
        for i, bucket in enumerate(self._buckets):
            if i != cur and bucket:
                items.extend(bucket)
        items.extend(self._spine)
        if offset:
            return iter([(it[0] + offset,) + it[1:] for it in items])
        return iter(items)

    # ------------------------------------------------------------------
    # Cold paths: cursor advance, window jump, resize
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Move the cursor to the next non-empty bucket, sliding the
        placement horizon with it and draining the spine as the horizon
        crosses parked items.  Returns False when the queue is empty.
        Leaves a sorted current bucket with the cursor at its start."""
        buf = self._curbuf
        if buf:
            buf.clear()  # fully consumed: release the slot list
            self._curpos = 0
        buckets = self._buckets
        n = self._nbuckets
        width = self._width
        day = n * width
        spine = self._spine
        cur = self._cur
        curtime = self._curtime
        scanned = 0
        while True:
            if scanned >= n:
                # A full lap found nothing: the day is empty.  Jump the
                # window straight to the spine's head — a far-future
                # idle stretch costs one jump, not a bucket crawl — or
                # report the queue empty.
                if len(spine) <= TINY_MIN:
                    # The day drained empty and what is left (possibly
                    # nothing) already lives in the spine — a heap —
                    # below the crossover: collapse back to the tiny
                    # representation and let the caller re-dispatch on
                    # the ``_tiny`` flag.  (Reached at most once per
                    # collapse — once tiny, the empty-queue checks
                    # never call _advance again.)
                    self._collapse_tiny()
                    return False
                if 4 * len(spine) < n and n > MIN_BUCKETS:
                    # The day is grossly oversized for what is left in
                    # it (every future pop would pay a full empty lap):
                    # shrink around the spine minimum instead.
                    self._cur = cur
                    self._curtime = curtime
                    self._limit = curtime + day
                    self._rebuild()
                    if self._curbuf:
                        return True
                    buckets = self._buckets
                    n = self._nbuckets
                    width = self._width
                    day = n * width
                    spine = self._spine
                    cur = self._cur
                    curtime = self._curtime
                    scanned = 0
                    continue
                t0 = spine[0][0]
                curtime = t0 - t0 % width
                limit = curtime + day
                cur = (t0 // width) % n
                while spine and spine[0][0] < limit:
                    it = heappop(spine)
                    buckets[(it[0] // width) % n].append(it)
                self.day_rolls += 1
                bucket = buckets[cur]  # the head landed here
                bucket.sort()
                self._cur = cur
                self._curtime = curtime
                self._limit = limit
                self._curbuf = bucket
                self._curpos = 0
                return True
            cur += 1
            if cur == n:
                cur = 0
            curtime += width
            limit = curtime + day
            if spine and spine[0][0] < limit:
                while spine and spine[0][0] < limit:
                    it = heappop(spine)
                    buckets[(it[0] // width) % n].append(it)
                # A drained item lands in-day but its *modular* slot may
                # sit behind the cursor (near the end of the sliding
                # day wraps around), i.e. in a bucket this lap already
                # scanned.  Restart the lap count so the scan revisits
                # every slot before concluding the day is empty.
                scanned = 0
            bucket = buckets[cur]
            if bucket:
                bucket.sort()
                self._cur = cur
                self._curtime = curtime
                self._limit = limit
                self._curbuf = bucket
                self._curpos = 0
                return True
            scanned += 1

    def _collapse_tiny(self) -> None:
        """Fall back to the tiny (plain heap) representation: whatever
        remains pending must already live in ``_spine``.  Resets the
        calendar geometry to defaults so the next population re-earns
        its buckets via a fresh migration."""
        self._tiny = True
        self._nbuckets = MIN_BUCKETS
        self._mask = MIN_BUCKETS - 1
        self._width = DEFAULT_WIDTH_NS
        self._shift = DEFAULT_WIDTH_NS.bit_length() - 1
        self._buckets = [[] for _ in range(MIN_BUCKETS)]
        self._cur = 0
        self._curtime = 0
        self._limit = MIN_BUCKETS * DEFAULT_WIDTH_NS
        self._curbuf = self._buckets[0]
        self._curpos = 0
        self._spine_cap = SPINE_CAP

    def _rebuild(self, spread: bool = False) -> None:
        """Resize the day to the live population and recalibrate the
        bucket width from the pending time distribution.  ``spread``
        (the deep-insert churn trigger) additionally forces the bucket
        count high enough that the *average* occupancy lands near
        ``TARGET_OCC``, so a dense uniformly-distributed population
        stops collapsing into one wide bucket with O(bucket) inserts."""
        items = self._curbuf[self._curpos:]
        cur = self._cur
        for i, bucket in enumerate(self._buckets):
            if i != cur and bucket:
                items.extend(bucket)
        items.extend(self._spine)
        # Cancelled-handle events are kept: the heap backend keeps them
        # too (lazy cancellation), and shedding here would let ``len``
        # and ``peek_time`` diverge between backends — observable via
        # the deadlock check and the deadline clamp in ``run()``.
        self.resizes += 1
        self._churn = 0
        count = len(items)
        if count == 0:
            self._spine = []
            self._collapse_tiny()
            return
        old_nbuckets = self._nbuckets
        # Bucket count ~ 2*sqrt(population): laps and per-bucket
        # occupancy both stay modest, and a 4096-at-one-timestamp burst
        # costs nothing extra (it is one fat sorted bucket either way).
        nbuckets = MIN_BUCKETS
        while nbuckets * nbuckets < 4 * count and nbuckets < MAX_BUCKETS:
            nbuckets <<= 1
        # Hysteresis: shrink only past a 4x dead band, so a population
        # hovering near a threshold doesn't thrash grow/shrink rebuilds.
        if nbuckets < old_nbuckets and 4 * nbuckets > old_nbuckets:
            nbuckets = old_nbuckets
        if spread:
            # Deep-insert churn: the population is dense *and*
            # distributed, so sqrt sizing leaves hundreds of spread-out
            # items per bucket and every mid-bucket insert memmoves the
            # tail.  Size for ~TARGET_OCC items per bucket instead; the
            # width calibration below then subdivides the same span that
            # was collapsing into one bucket.
            want = 2 * count // TARGET_OCC
            while nbuckets < want and nbuckets < MAX_BUCKETS:
                nbuckets <<= 1
        times = sorted(it[0] for it in items)
        width = _calibrate_width(times, nbuckets, self._width)
        t0 = times[0]
        curtime = t0 - t0 % width
        limit = curtime + nbuckets * width
        buckets: List[List[Item]] = [[] for _ in range(nbuckets)]
        spine: List[Item] = []
        for it in items:
            if it[0] < limit:
                buckets[(it[0] // width) % nbuckets].append(it)
            else:
                spine.append(it)
        heapify(spine)
        self._width = width
        self._shift = width.bit_length() - 1
        self._mask = nbuckets - 1
        self._nbuckets = nbuckets
        self._curtime = curtime
        self._limit = limit
        self._buckets = buckets
        self._spine = spine
        self._spine_cap = max(SPINE_CAP, 2 * len(spine))
        # The minimum item lands in the cursor bucket by construction.
        cur = (t0 // width) % nbuckets
        bucket0 = buckets[cur]
        bucket0.sort()
        self._cur = cur
        self._curbuf = bucket0
        self._curpos = 0


def _calibrate_width(times: List[int], nbuckets: int, fallback: int) -> int:
    """Bucket width so the day spans ~2x the 99th percentile of pending
    times.  The pending span is a proxy for the *reschedule horizon*
    (each drained compute sleep immediately schedules its successor one
    period ahead), so the headroom keeps steady-state reschedules
    in-day even as the window slides.  The 99th percentile (not the
    max) still leaves genuinely far-future outliers (MTBF-scale failure
    arrivals, horizon caps) to the overflow spine rather than
    stretching every bucket."""
    span = times[(99 * (len(times) - 1)) // 100] - times[0]
    if span <= 0:
        # Degenerate pending set (all times effectively identical):
        # width cannot subdivide it, keep the current one.
        return fallback
    width = max(1, (2 * span) // nbuckets + 1)
    # Round up to a power of two: the hot paths then replace the
    # bucket-index divide/modulo with a shift and mask.
    return 1 << (width - 1).bit_length()


BACKENDS = {
    "heap": HeapEventQueue,
    "wheel": CalendarEventQueue,
}


def make_event_queue(kind: Optional[str] = None):
    """Build an event queue; ``kind`` defaults to ``$REPRO_EVENTQ`` or
    the calendar queue."""
    if kind is None:
        kind = os.environ.get(EVENTQ_ENV, DEFAULT_BACKEND)
    try:
        return BACKENDS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown event queue backend {kind!r} "
            f"(choices: {sorted(BACKENDS)})"
        ) from None
