"""Cooperatively-scheduled simulated processes.

A simulated process wraps a Python generator.  The generator yields
:class:`~repro.sim.engine.Trigger` objects when it blocks (e.g. inside
``MPI_Wait``) and is resumed with the trigger's value.  Blocking library
calls are written as sub-generators and invoked with ``yield from``.

Processes can be killed (for failure injection) and replaced by a fresh
incarnation (for rollback-recovery); the driver tracks an incarnation
number so stale wakeups from a previous life are ignored.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Engine, SimError, Trigger


class ProcessKilled(Exception):
    """Injected into a generator when its process is killed."""


class ProcessStatus(enum.Enum):
    CREATED = "created"
    RUNNING = "running"  # scheduled or executing
    BLOCKED = "blocked"  # waiting on a trigger
    DONE = "done"
    FAILED = "failed"  # generator raised
    KILLED = "killed"  # failure injection


class SimProcess:
    """Drives one rank's generator on the engine."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        gen: Generator[Trigger, Any, Any],
        on_exit: Optional[Callable[["SimProcess"], None]] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self._gen = gen
        self.status = ProcessStatus.CREATED
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.exit_trigger = Trigger(name=f"{name}.exit")
        self.on_exit = on_exit
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.incarnation = 0
        self._waiting_on: Optional[Trigger] = None
        engine.processes.append(self)

    # ------------------------------------------------------------------
    @property
    def is_blocked(self) -> bool:
        return self.status is ProcessStatus.BLOCKED

    @property
    def is_live(self) -> bool:
        return self.status in (
            ProcessStatus.CREATED,
            ProcessStatus.RUNNING,
            ProcessStatus.BLOCKED,
        )

    def start(self, delay_ns: int = 0) -> None:
        if self.status is not ProcessStatus.CREATED:
            raise SimError(f"{self.name}: start() on {self.status}")
        self.status = ProcessStatus.RUNNING
        inc = self.incarnation
        self.engine.schedule(delay_ns, self._first_step, inc)

    def _first_step(self, inc: int) -> None:
        if inc != self.incarnation or not self.is_live:
            return
        self.start_time = self.engine.now
        self._advance(None)

    # ------------------------------------------------------------------
    def _trigger_fired(self, trigger: Trigger) -> None:
        """Trigger waiter interface: schedule a resume at the current time."""
        if self.status is not ProcessStatus.BLOCKED or trigger is not self._waiting_on:
            return
        self._waiting_on = None
        self.status = ProcessStatus.RUNNING
        self.engine.schedule(0, self._resume, self.incarnation, trigger.value)

    def _resume(self, inc: int, value: Any) -> None:
        if inc != self.incarnation or self.status is not ProcessStatus.RUNNING:
            return
        self._advance(value)

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(ProcessStatus.DONE, result=stop.value)
            return
        except ProcessKilled:
            self._finish(ProcessStatus.KILLED)
            return
        except BaseException as exc:  # noqa: BLE001 - report app failures
            self.exception = exc
            self._finish(ProcessStatus.FAILED)
            return
        if not isinstance(yielded, Trigger):
            self.exception = SimError(
                f"{self.name} yielded {type(yielded).__name__}, expected Trigger"
            )
            self._finish(ProcessStatus.FAILED)
            return
        self.status = ProcessStatus.BLOCKED
        self._waiting_on = yielded
        yielded.add_waiter(self)

    def _finish(self, status: ProcessStatus, result: Any = None) -> None:
        self.status = status
        self.result = result
        self.finish_time = self.engine.now
        self._waiting_on = None
        self.exit_trigger.fire(result)
        if self.on_exit is not None:
            self.on_exit(self)

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Kill the process (failure injection).

        The generator receives :class:`ProcessKilled` so its ``finally``
        blocks run; any pending wakeups for this incarnation are ignored.
        """
        if not self.is_live:
            return
        self.incarnation += 1  # invalidate in-flight resumes
        if self._waiting_on is not None:
            self._waiting_on.discard_waiter(self)
            self._waiting_on = None
        try:
            self._gen.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        except BaseException as exc:  # noqa: BLE001
            self.exception = exc
        self.status = ProcessStatus.KILLED
        self.finish_time = self.engine.now
        # Intentionally do NOT fire exit_trigger: a killed process did not
        # exit; recovery machinery replaces it with a new incarnation.
        if self.on_exit is not None:
            self.on_exit(self)
