"""Cooperatively-scheduled simulated processes.

A simulated process wraps a Python generator.  The generator yields
:class:`~repro.sim.engine.Trigger` objects when it blocks (e.g. inside
``MPI_Wait``) and is resumed with the trigger's value.  Blocking library
calls are written as sub-generators and invoked with ``yield from``.

Processes can be killed (for failure injection) and replaced by a fresh
incarnation (for rollback-recovery); the driver tracks an incarnation
number so stale wakeups from a previous life are ignored.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Engine, SimError, Trigger


class SleepMarker:
    """A zero-allocation virtual sleep.

    The hottest blocking pattern — ``compute``/CPU-debt sleeps — used to
    cost a pooled trigger plus two engine events (the trigger fire and
    the scheduled resume).  Yielding a marker instead lets the driver
    schedule the wake-up directly: one event, no trigger, and the marker
    itself is a per-runtime singleton mutated in place (safe because a
    rank has at most one sleep outstanding — it is blocked on it; each
    runtime keeps two, one per ``is_compute`` kind, so no per-call flag
    writes are needed).

    ``is_sleep``/``discard_waiter`` make it duck-compatible with the
    trigger interface where the driver and the warp detector probe it.
    ``is_compute`` distinguishes an application compute phase from a
    CPU-debt flush inside a blocking call: the warp detector only treats
    ranks parked in *compute* sleeps as being at an iteration's
    fast-forwardable point.
    """

    __slots__ = ("delay_ns", "is_compute")

    is_sleep = True
    fired = False

    def __init__(self, is_compute: bool = False) -> None:
        self.delay_ns = 0
        self.is_compute = is_compute

    def discard_waiter(self, waiter: Any) -> None:  # trigger-compatible
        pass


class DebtWait:
    """Fused 'flush CPU debt, then wait on a trigger' blocking primitive.

    The dominant blocking pattern after a send is a tiny CPU-debt sleep
    (the protocol's per-send overhead) followed by a wait on the receive
    trigger — two wake-ups per exchange.  Yielding a DebtWait instead
    registers the gate on the trigger immediately and resumes the
    process at ``max(deadline, fire time)``:

    * fire at/after the deadline (the common case — the debt is tens of
      nanoseconds, the message flight much longer): resume inline at the
      fire, zero extra events;
    * fire before the deadline: one event delays the resume to the
      deadline, exactly when the old debt sleep would have woken.

    One gate per runtime is reused (a rank has at most one outstanding);
    the driver fills ``proc`` when the gate is yielded.
    """

    __slots__ = ("proc", "deadline_ns", "trigger")

    is_sleep = False
    is_compute = False
    fired = False

    def __init__(self) -> None:
        self.proc: Optional["SimProcess"] = None
        self.deadline_ns = 0
        self.trigger: Optional[Trigger] = None

    def _trigger_fired(self, trigger: Trigger) -> None:
        proc = self.proc
        if proc is None or proc._waiting_on is not self:
            return
        engine = proc.engine
        now = engine.now
        if now >= self.deadline_ns:
            self._resume(proc)
        else:
            engine.schedule_fast(self.deadline_ns - now, self._resume, proc)

    def _resume(self, proc: "SimProcess") -> None:
        # Staleness guard by process *identity*, not incarnation number:
        # a crash clears self.proc, and a restarted rank re-blocking on
        # the reused gate is a brand-new SimProcess object (incarnation
        # counters restart at 0 across incarnations, so comparing them
        # across objects would let a pre-crash deadline event wake the
        # new wait early).
        if proc is not self.proc or proc._waiting_on is not self:
            return
        self.proc = None
        proc._waiting_on = None
        proc.status = _RUNNING
        proc._advance(None)

    def discard_waiter(self, waiter: Any) -> None:
        """Kill path: unhook from the underlying trigger."""
        if self.trigger is not None:
            self.trigger.discard_waiter(self)
        self.proc = None


class ProcessKilled(Exception):
    """Injected into a generator when its process is killed."""


class ProcessStatus(enum.Enum):
    CREATED = "created"
    RUNNING = "running"  # scheduled or executing
    BLOCKED = "blocked"  # waiting on a trigger
    DONE = "done"
    FAILED = "failed"  # generator raised
    KILLED = "killed"  # failure injection


#: Module-level aliases: enum member lookups on the class are a dict
#: access per comparison, and these run several times per engine event.
_CREATED = ProcessStatus.CREATED
_RUNNING = ProcessStatus.RUNNING
_BLOCKED = ProcessStatus.BLOCKED


class SimProcess:
    """Drives one rank's generator on the engine."""

    __slots__ = (
        "engine",
        "name",
        "_gen",
        "_gen_send",
        "status",
        "result",
        "exception",
        "exit_trigger",
        "on_exit",
        "start_time",
        "finish_time",
        "incarnation",
        "_waiting_on",
    )

    def __init__(
        self,
        engine: Engine,
        name: str,
        gen: Generator[Trigger, Any, Any],
        on_exit: Optional[Callable[["SimProcess"], None]] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self._gen = gen
        self._gen_send = gen.send  # pre-bound: one resume per engine event
        self.status = ProcessStatus.CREATED
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.exit_trigger = Trigger(name=f"{name}.exit")
        self.on_exit = on_exit
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.incarnation = 0
        self._waiting_on: Optional[Trigger] = None
        engine.processes.append(self)

    # ------------------------------------------------------------------
    @property
    def is_blocked(self) -> bool:
        return self.status is _BLOCKED

    @property
    def is_live(self) -> bool:
        return self.status in (
            ProcessStatus.CREATED,
            ProcessStatus.RUNNING,
            ProcessStatus.BLOCKED,
        )

    def start(self, delay_ns: int = 0) -> None:
        if self.status is not ProcessStatus.CREATED:
            raise SimError(f"{self.name}: start() on {self.status}")
        self.status = ProcessStatus.RUNNING
        inc = self.incarnation
        self.engine.schedule_fast(delay_ns, self._first_step, inc)

    def _first_step(self, inc: int) -> None:
        if inc != self.incarnation or not self.is_live:
            return
        self.start_time = self.engine.now
        self._advance(None)

    # ------------------------------------------------------------------
    def _trigger_fired(self, trigger: Trigger) -> None:
        """Trigger waiter interface: resume the generator in place.

        The resume used to be bounced through a zero-delay engine event;
        running it synchronously inside the trigger's fire saves roughly
        a quarter of all engine events on message-heavy workloads.  Same
        virtual time either way — only the intra-timestamp interleaving
        can move, which the golden pins and the committed benchmark
        JSONs bound (see docs/performance.md for the one sub-ppm shift
        this produced, in fig6's HydEE baseline column)."""
        if self.status is not _BLOCKED or trigger is not self._waiting_on:
            return
        self._waiting_on = None
        self.status = _RUNNING
        self._advance(trigger.value)

    def _resume(self, inc: int, value: Any) -> None:
        if inc != self.incarnation or self.status is not _RUNNING:
            return
        self._advance(value)

    def _wake_sleep(self, inc: int) -> None:
        """Resume from a SleepMarker sleep (the single wake-up event)."""
        if inc != self.incarnation or self.status is not _BLOCKED:
            return
        if self._waiting_on.is_compute:
            self.engine.compute_sleepers -= 1
        self._waiting_on = None
        self.status = _RUNNING
        self._advance(None)

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self._gen_send(send_value)
        except StopIteration as stop:
            self._finish(ProcessStatus.DONE, result=stop.value)
            return
        except ProcessKilled:
            self._finish(ProcessStatus.KILLED)
            return
        except BaseException as exc:  # noqa: BLE001 - report app failures
            self.exception = exc
            self._finish(ProcessStatus.FAILED)
            return
        cls = yielded.__class__
        if cls is SleepMarker:
            # Virtual sleep fast path: one scheduled wake-up, no trigger.
            self.status = _BLOCKED
            self._waiting_on = yielded
            engine = self.engine
            if yielded.is_compute:
                engine.compute_sleepers += 1
            engine.schedule_fast(
                yielded.delay_ns, self._wake_sleep, self.incarnation
            )
            return
        if cls is DebtWait:
            self.status = _BLOCKED
            self._waiting_on = yielded
            yielded.proc = self
            yielded.trigger.add_waiter(yielded)
            return
        if not isinstance(yielded, Trigger):
            self.exception = SimError(
                f"{self.name} yielded {type(yielded).__name__}, expected Trigger"
            )
            self._finish(ProcessStatus.FAILED)
            return
        self.status = _BLOCKED
        self._waiting_on = yielded
        yielded.add_waiter(self)

    def _finish(self, status: ProcessStatus, result: Any = None) -> None:
        self.status = status
        self.result = result
        self.finish_time = self.engine.now
        self._waiting_on = None
        self.exit_trigger.fire(result)
        if self.on_exit is not None:
            self.on_exit(self)

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Kill the process (failure injection).

        The generator receives :class:`ProcessKilled` so its ``finally``
        blocks run; any pending wakeups for this incarnation are ignored.
        """
        if not self.is_live:
            return
        self.incarnation += 1  # invalidate in-flight resumes
        if self._waiting_on is not None:
            if self._waiting_on.is_compute:
                # The stale wake event no-ops on the bumped incarnation,
                # so release the sleeper slot here.
                self.engine.compute_sleepers -= 1
            self._waiting_on.discard_waiter(self)
            self._waiting_on = None
        try:
            self._gen.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        except BaseException as exc:  # noqa: BLE001
            self.exception = exc
        self.status = ProcessStatus.KILLED
        self.finish_time = self.engine.now
        # Intentionally do NOT fire exit_trigger: a killed process did not
        # exit; recovery machinery replaces it with a new incarnation.
        if self.on_exit is not None:
            self.on_exit(self)
