"""Steady-state warp: analytic fast-forward of failure-free periodic phases.

Iterative MPI applications spend almost all simulated time in a *periodic
steady state*: every rank runs the same loop body, the same messages move
on the same channels, and the whole world's state advances by a constant
delta per iteration.  Simulating each of those iterations event by event
is what caps the simulator's scale.  Warp mode observes the execution,
proves (empirically) that it has become periodic, and then jumps K
iterations at once by *shifting* the clock and *adding* K times the
measured per-iteration delta to every counter — producing, by
construction, exactly the state exact mode would have reached.

Exactness contract
------------------
The fast-forward is exact — identical simulated end time, Table 1 log
counters, and checkpoint commit history — when the application's loop
satisfies what the detector checks for:

* **Quiescent anchors.**  Once per iteration (armed by the anchor rank's
  ``maybe_checkpoint`` call) there must be an instant where every live
  rank is blocked in a virtual sleep (compute phase), the network has no
  packets in flight, no rendezvous transfer is half-done, no storage
  flow is draining, and no failure is scheduled.  The engine's event
  queue then holds nothing but the ranks' wake-ups.
* **Periodicity.**  Two consecutive anchor-to-anchor intervals must show
  the *same* period and the *same* per-rank delta in every piece of
  evolving state the controller tracks (channel seqnums, log bytes and
  records, LR/LS marks, intra-cluster counters, pattern iterations,
  traced bytes, NIC/FIFO offsets, wake offsets).  The simulator itself
  is time-translation invariant (all costs are relative; seeded jitter
  would simply never produce equal deltas, so jittered runs never warp),
  hence equal deltas twice running implies the state evolution is
  periodic and can be extrapolated.
* **A declared horizon.**  The controller must know how many iterations
  (``WarpConfig.total_iters`` = ``maybe_checkpoint`` calls per rank) the
  loop runs in total, because the loop's *exit* is invisible until it
  happens.  The jump always stops at least one full iteration short of
  the horizon and at least one iteration short of the next checkpoint
  round, so checkpoints, recoveries, and the final iterations always run
  in exact mode.

Anything that breaks the pattern — an injected failure event sitting in
the queue, an async flush draining, a data-dependent communication
schedule, ANY_SOURCE probing loops — simply prevents anchors or delta
equality, and the run proceeds in exact mode without further cost.

What a warped span does *not* materialize: per-message trace events
(``Trace.warp_pair_bytes`` carries the byte totals for the clustering
pipeline instead) and sender-log payloads (a single coalesced
:class:`~repro.core.logstore.LogRecord` with ``count``/``nbytes`` totals
keeps every byte/record/GC counter exact; replay content for warped
spans is not needed because warp only ever runs in failure-free phases
and recovery re-executes from exact-mode checkpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class WarpConfig:
    """Opt-in steady-state warp parameters (``--warp``).

    ``total_iters`` is the application's per-rank iteration count —
    the number of ``maybe_checkpoint`` calls each rank will make.  It is
    the exactness horizon: warp never jumps into or past the last
    iteration."""

    total_iters: int
    #: Rank whose maybe_checkpoint arms the per-iteration anchor probe.
    anchor_rank: int = 0
    #: Consecutive equal anchor-to-anchor deltas required before jumping.
    confirm: int = 2
    #: Optional cap on iterations per jump (None = to the horizon).
    max_chunk: Optional[int] = None
    #: Longest anchor period searched (a pure-logging singleton-cluster
    #: ring rotates its last-to-compute rank all the way around, giving
    #: periods up to nranks anchors; raising this finds them at the cost
    #: of keeping 2*max_period+1 snapshots).
    max_period: int = 8


@dataclass
class _Snapshot:
    now: int
    current_rank: int
    current_sleep_ns: int
    trace_len: int
    wake_offsets: Dict[int, int]
    per_rank: Dict[int, dict]
    net_pairs: Dict[Tuple[int, int], Tuple[int, int]]  # (arrival-now, seq)
    nic_offsets: List[int]
    net_counters: Tuple[int, int]


def _dict_delta(new: Dict, old: Dict) -> Optional[Dict]:
    """Per-key numeric delta; None if a key disappeared (not monotone)."""
    for k in old:
        if k not in new:
            return None
    return {k: v - old.get(k, 0) for k, v in new.items()}


class WarpController:
    """Observes one :class:`~repro.mpi.runtime.World` and fast-forwards it.

    Installed as ``world.warp``; the runtime calls :meth:`on_iteration`
    once per application iteration and :meth:`on_compute` when a rank is
    about to enter a virtual sleep.  Everything else happens lazily
    inside those two hooks.
    """

    def __init__(self, world, config: WarpConfig) -> None:
        self.world = world
        self.config = config
        self.engine = world.engine
        self.iter_count: Dict[int, int] = {}
        self._armed = False
        # All quiescent snapshots, newest last.  The execution's true
        # period can span several anchors (the last-to-compute rank
        # cycles, NIC/FIFO offsets alternate), so detection searches
        # periods p = 1..max_period over this list: a warp fires when
        # the last three snapshots at stride p show two identical
        # deltas.
        self._snaps: List[_Snapshot] = []
        self.max_period = config.max_period
        # Live (non-DONE) process count, refreshed once per anchor-rank
        # iteration: gates the O(n) quiescence probe on the engine's
        # O(1) compute-sleeper counter.
        self._live = 0
        # Stats (reported by simperf / asserted by tests).
        self.warps = 0
        self.warped_iterations = 0
        self.warped_time_ns = 0
        self.anchors_seen = 0

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------
    def on_iteration(self, runtime) -> None:
        rank = runtime.rank
        self.iter_count[rank] = self.iter_count.get(rank, 0) + 1
        if rank == self.config.anchor_rank:
            self._armed = True
            from repro.sim.process import ProcessStatus

            self._live = sum(
                1
                for p in self.world.processes.values()
                if p.status is not ProcessStatus.DONE
            )

    def on_compute(self, runtime, sleep_ns: int) -> None:
        if not self._armed:
            return
        # Cheap O(1) rejections first: the quiescent instant needs every
        # other live rank parked in a compute sleep and an empty network
        # — the common case for every rank but the last one to finish an
        # iteration's communication.
        if self.engine.compute_sleepers < self._live - 1:
            return
        if self.world.network._in_flight:
            return
        snap = self._try_snapshot(runtime, sleep_ns)
        if snap is None:
            return
        self._armed = False
        self.anchors_seen += 1
        snaps = self._snaps
        snaps.append(snap)
        keep = 2 * self.max_period + 1
        if len(snaps) > keep:
            del snaps[: len(snaps) - keep]
        self._maybe_warp(snaps)

    # ------------------------------------------------------------------
    # Quiescence probe + snapshot
    # ------------------------------------------------------------------
    def _try_snapshot(self, runtime, sleep_ns: int) -> Optional[_Snapshot]:
        world = self.world
        engine = self.engine
        now = engine.now
        processes = world.processes

        # Every live rank except the caller must be blocked in a sleep.
        from repro.sim.process import ProcessStatus

        sleepers: Dict[int, Any] = {}
        for rank, proc in processes.items():
            if proc.status is ProcessStatus.DONE:
                continue
            if not world.runtimes[rank].warp_capable:
                return None  # the app did not opt into the warp contract
            if rank == runtime.rank:
                if proc.status is not ProcessStatus.RUNNING:
                    return None
                continue
            if proc.status is not ProcessStatus.BLOCKED:
                return None
            waiting = proc._waiting_on
            # Only a *compute* sleep marks a rank parked at its loop
            # body's fast-forwardable point; a CPU-debt sleep inside a
            # blocking call means the rank is mid-communication.
            if waiting is None or not getattr(waiting, "is_compute", False):
                return None
            sleepers[id(proc)] = rank

        # The event queue must hold nothing but those ranks' wake-ups:
        # any other event (failure injection, storage flow tick, stale
        # wake of a killed incarnation, composed timeout) vetoes warp.
        wake_offsets: Dict[int, int] = {}
        for time_ns, _seq, handle, fn, _args in engine.iter_pending():
            if handle is not None:
                if handle.cancelled:
                    continue
                return None
            owner = getattr(fn, "__self__", None)
            rank = sleepers.get(id(owner))
            if rank is None or fn.__name__ != "_wake_sleep":
                return None
            if rank in wake_offsets:
                return None  # stale duplicate wake — not quiescent
            wake_offsets[rank] = time_ns - now
        if len(wake_offsets) != len(sleepers):
            return None

        # Per-rank library/protocol state.
        spbc = self._spbc()
        per_rank: Dict[int, dict] = {}
        for rank in processes:
            rt = world.runtimes[rank]
            if (
                rt.matching.posted
                or rt.matching.unexpected
                or rt._rvz_pending_cts
                or rt._rvz_awaiting_data
                or rt._rvz_unexpected
                or rt._deferred_sends
            ):
                return None
            entry = {
                "iters": self.iter_count.get(rank, 0),
                "chan_seq": dict(rt.chan_seq),
                "send_post": rt._send_post_seq,
                "recv_post": rt._recv_post_seq,
                "send_complete": rt._send_complete_seq,
                "compute": rt.compute_total_ns,
                "overhead": rt.overhead_total_ns,
                "debt": rt.cpu_debt_ns,
                "busy_off": rt._send_busy_until - now,
                "patterns": dict(rt.pattern_iters),
                "active": rt.active_ident,
                "coll_seq": dict(rt._coll_seq),
            }
            if spbc is not None:
                st = spbc.state.get(rank)
                if st is None:
                    return None
                if st.recovering or st.gated:
                    return None
                for ch in st.inbound.values():
                    if ch.pending_data or ch.drop_set or ch.buffer:
                        return None
                entry.update(
                    lr=dict(st.lr),
                    ls=dict(st.ls),
                    arrived={k: ch.arrived for k, ch in st.inbound.items()},
                    intra_sent=dict(st.intra_sent),
                    intra_arrived=dict(st.intra_arrived),
                    ckpt_calls=st.ckpt_calls,
                    log_chans={
                        k: (len(recs), recs[-1].seqnum)
                        for k, recs in st.log.channels.items()
                    },
                    log_bytes=st.log.bytes_logged,
                    log_records=st.log.records_logged,
                )
            per_rank[rank] = entry

        net = world.network
        return _Snapshot(
            now=now,
            current_rank=runtime.rank,
            current_sleep_ns=sleep_ns,
            trace_len=len(world.trace.events),
            wake_offsets=wake_offsets,
            per_rank=per_rank,
            net_pairs={
                k: (v[0] - now, v[1]) for k, v in net.chan_state_items()
            },
            nic_offsets=[t - now for t in net._nic_free],
            net_counters=(net.packets_sent, net.bytes_sent),
        )

    def _spbc(self):
        from repro.core.protocol import SPBC

        hooks = self.world.hooks
        return hooks if isinstance(hooks, SPBC) else None

    # ------------------------------------------------------------------
    # Periodicity check + jump
    # ------------------------------------------------------------------
    def _deltas(self, new: _Snapshot, old: _Snapshot) -> Optional[dict]:
        if new.current_rank != old.current_rank:
            return None
        if new.current_sleep_ns != old.current_sleep_ns:
            return None
        if new.wake_offsets != old.wake_offsets:
            return None
        if new.nic_offsets != old.nic_offsets:
            return None
        if set(new.per_rank) != set(old.per_rank):
            return None
        period = new.now - old.now
        if period <= 0:
            return None
        out: dict = {"period": period, "rank": {}, "net_pairs": {}}
        for key, (arr_off, seq) in new.net_pairs.items():
            o = old.net_pairs.get(key)
            if o is None:
                o = (arr_off, 0)  # new pair: baseline offset, zero seq
            elif o[0] != arr_off:
                return None  # FIFO floor offset must be stable
            out["net_pairs"][key] = seq - o[1]
        for key in old.net_pairs:
            if key not in new.net_pairs:
                return None
        out["net_counters"] = (
            new.net_counters[0] - old.net_counters[0],
            new.net_counters[1] - old.net_counters[1],
        )
        for rank, entry in new.per_rank.items():
            oe = old.per_rank[rank]
            if entry["debt"] != oe["debt"]:
                return None
            if entry["busy_off"] != oe["busy_off"]:
                return None
            if entry["active"][0] != oe["active"][0]:
                return None
            d: dict = {}
            for field_name in ("chan_seq", "patterns", "coll_seq"):
                dd = _dict_delta(entry[field_name], oe[field_name])
                if dd is None:
                    return None
                d[field_name] = dd
            spbc_fields = (
                "lr", "ls", "arrived", "intra_sent", "intra_arrived",
            )
            for field_name in spbc_fields:
                if field_name in entry:
                    dd = _dict_delta(entry[field_name], oe[field_name])
                    if dd is None:
                        return None
                    d[field_name] = dd
            for field_name in (
                "iters", "send_post", "recv_post", "send_complete",
                "compute", "overhead",
            ):
                d[field_name] = entry[field_name] - oe[field_name]
            if "ckpt_calls" in entry:
                d["ckpt_calls"] = entry["ckpt_calls"] - oe["ckpt_calls"]
                d["log_bytes"] = entry["log_bytes"] - oe["log_bytes"]
                d["log_records"] = entry["log_records"] - oe["log_records"]
                log_d: Dict[Any, Tuple[int, int, int]] = {}
                spbc = self._spbc()
                st = spbc.state[rank]
                for key, (ln, last) in entry["log_chans"].items():
                    o_ln, o_last = oe["log_chans"].get(key, (0, 0))
                    if ln < o_ln:
                        return None
                    recs = st.log.channels.get(key, [])
                    # Records appended over THIS window only (the list
                    # may have grown past the snapshot since — slice by
                    # the recorded lengths, not the live list).
                    added = recs[o_ln:ln]
                    log_d[key] = (
                        ln - o_ln,
                        last - o_last,
                        sum(r.nbytes for r in added),
                        sum(r.count for r in added),
                    )
                for key in oe["log_chans"]:
                    if key not in entry["log_chans"]:
                        return None
                d["log_chans"] = log_d
            out["rank"][rank] = d
        # Traced per-pair send bytes over the window.
        if self.world.trace.enabled:
            pair_bytes: Dict[Tuple[int, int], int] = {}
            events = self.world.trace.events
            for e in events[old.trace_len:new.trace_len]:
                if e.kind == "send":
                    src, dst, _cid = e.channel
                    key = (src, dst)
                    pair_bytes[key] = pair_bytes.get(key, 0) + e.nbytes
            out["trace_pairs"] = pair_bytes
        return out

    def _maybe_warp(self, snaps: List[_Snapshot]) -> None:
        n = len(snaps)
        for p in range(1, min(self.max_period, (n - 1) // 2) + 1):
            a, b, c = snaps[-1 - 2 * p], snaps[-1 - p], snaps[-1]
            d2 = self._deltas(c, b)
            if d2 is None:
                continue
            d1 = self._deltas(b, a)
            if d1 != d2:
                continue
            k = self._pick_chunk(d2)
            if k < 1:
                return
            self._apply(d2, k)
            # Every snapshot predates the jump — start fresh.
            snaps.clear()
            return

    def _pick_chunk(self, delta: dict) -> int:
        cfg = self.config
        spbc = self._spbc()
        k = cfg.total_iters  # upper bound, tightened below
        for rank, d in delta["rank"].items():
            # Per-rank iteration advance per period (a period may span
            # several iterations when the anchor rank cycles).
            it = d["iters"]
            if it < 1:
                return 0  # a rank not iterating is not in steady state
            done = self.iter_count.get(rank, 0)
            # Stop at least one full iteration before the loop exit.
            k = min(k, (cfg.total_iters - done - 1) // it)
            if spbc is not None:
                every = spbc.config.checkpoint_every
                calls = spbc.state[rank].ckpt_calls
                if every == "auto":
                    cad = spbc._cadences.get(spbc.state[rank].cluster)
                    if cad is None:
                        return 0
                    until = cad.every - (calls - cad.last_ckpt_call)
                    k = min(k, (until - 1) // it)
                elif every is not None:
                    until = every - (calls % every)
                    k = min(k, (until - 1) // it)
        if cfg.max_chunk is not None:
            k = min(k, cfg.max_chunk)
        return k

    def _apply(self, delta: dict, k: int) -> None:
        from repro.core.logstore import LogRecord
        from repro.mpi.constants import DEFAULT_IDENT

        world = self.world
        shift = delta["period"] * k
        spbc = self._spbc()

        # Clock + every pending wake-up.
        self.engine.shift_pending(shift)
        now = self.engine.now

        net = world.network
        net._nic_free = [t + shift for t in net._nic_free]
        for key, state in net.chan_state_items():
            state[0] += shift
            state[1] += k * delta["net_pairs"].get(key, 0)
        net.packets_sent += k * delta["net_counters"][0]
        net.bytes_sent += k * delta["net_counters"][1]

        for rank, d in delta["rank"].items():
            rt = world.runtimes[rank]
            for key, dv in d["chan_seq"].items():
                if dv:
                    rt.chan_seq[key] = rt.chan_seq.get(key, 0) + k * dv
            for key, dv in d["coll_seq"].items():
                if dv:
                    rt._coll_seq[key] = rt._coll_seq.get(key, 0) + k * dv
            for pid, dv in d["patterns"].items():
                if dv:
                    rt.pattern_iters[pid] = rt.pattern_iters.get(pid, 0) + k * dv
            active = rt.active_ident
            if active != DEFAULT_IDENT and active[0] in d["patterns"]:
                rt.active_ident = (
                    active[0], active[1] + k * d["patterns"][active[0]]
                )
            rt._send_post_seq += k * d["send_post"]
            rt._recv_post_seq += k * d["recv_post"]
            rt._send_complete_seq += k * d["send_complete"]
            rt.compute_total_ns += k * d["compute"]
            rt.overhead_total_ns += k * d["overhead"]
            rt._send_busy_until += shift
            it = d["iters"]
            self.iter_count[rank] = self.iter_count.get(rank, 0) + k * it
            # The application consumes this at its next warp_jump() and
            # advances its own loop index / accumulators by k*it.
            rt.warp_skip += k * it

            if spbc is None:
                continue
            st = spbc.state[rank]
            st.ckpt_calls += k * d["ckpt_calls"]
            for key, dv in d["lr"].items():
                if dv:
                    st.lr[key] = st.lr.get(key, 0) + k * dv
            for key, dv in d["ls"].items():
                if dv:
                    st.ls[key] = st.ls.get(key, 0) + k * dv
            for key, dv in d["arrived"].items():
                if dv:
                    st.chan_in(key).arrived += k * dv
            for key, dv in d["intra_sent"].items():
                if dv:
                    st.intra_sent[key] = st.intra_sent.get(key, 0) + k * dv
            for key, dv in d["intra_arrived"].items():
                if dv:
                    st.intra_arrived[key] = (
                        st.intra_arrived.get(key, 0) + k * dv
                    )
            # Sender log: one coalesced record per channel carries the
            # whole span's seqnum advance, bytes, and record count, so
            # residency/GC/Table-1 accounting stays exact without
            # materializing the skipped messages.
            log = st.log
            for key, (_dn, dseq, dbytes, dcount) in d["log_chans"].items():
                if dseq <= 0:
                    continue
                cid, dst = key
                log.append(
                    LogRecord(
                        comm_id=cid,
                        dst=dst,
                        seqnum=log.last_seq(cid, dst) + k * dseq,
                        tag=-1,
                        nbytes=k * dbytes,
                        ident=DEFAULT_IDENT,
                        payload=None,
                        send_time_ns=now,
                        count=k * dcount,
                    )
                )

        if world.trace.enabled and "trace_pairs" in delta:
            wp = world.trace.warp_pair_bytes
            for key, nbytes in delta["trace_pairs"].items():
                wp[key] = wp.get(key, 0) + k * nbytes

        self.warps += 1
        # k counts detector periods; report application iterations.
        self.warped_iterations += k * max(
            d["iters"] for d in delta["rank"].values()
        )
        self.warped_time_ns += shift
