"""Communication-event tracing.

Records the paper's event vocabulary (section 3.2): ``send(m)``,
``deliver(m)``, ``post(req)``, ``match(req, m)``, plus compute spans.
Traces feed three consumers:

* the channel/send-determinism checkers (compare send sequences across
  executions — section 3.4),
* the happened-before / always-happens-before tooling (section 3.5),
* the communication-statistics collector used by the clustering tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class CommEvent:
    """One traced communication event.

    ``kind`` is one of ``send``, ``deliver``, ``post``, ``match``.
    ``channel`` is (src, dst, comm_id); ``seqnum`` is the per-channel MPI
    sequence number (section 3.3's message identity), ``req_seq`` the
    per-rank reception-request sequence number where applicable.
    """

    kind: str
    rank: int
    time_ns: int
    channel: Tuple[int, int, int]
    seqnum: int
    tag: int = 0
    nbytes: int = 0
    req_seq: int = -1
    ident: Tuple[int, int] = (0, 0)  # (pattern_id, iteration_id)

    @property
    def message_key(self) -> Tuple[int, int, int, int]:
        """Unique message identity across executions: channel + seqnum."""
        return (*self.channel, self.seqnum)


class Trace:
    """Append-only event log for one execution."""

    __slots__ = ("enabled", "events", "warp_pair_bytes")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[CommEvent] = []
        # Aggregate (src, dst) -> app bytes credited by warp fast-forward:
        # warped iterations record no per-message events, but the byte
        # totals they represent still feed comm_bytes_matrix so the
        # clustering/Table-1 pipeline sees the full communication volume.
        self.warp_pair_bytes: Dict[Tuple[int, int], int] = {}

    def record(self, event: CommEvent) -> None:
        if self.enabled:
            self.events.append(event)

    # ------------------------------------------------------------------
    # Views used by the determinism checkers
    # ------------------------------------------------------------------
    def sends(self) -> Iterator[CommEvent]:
        return (e for e in self.events if e.kind == "send")

    def delivers(self) -> Iterator[CommEvent]:
        return (e for e in self.events if e.kind == "deliver")

    def per_channel_send_sequences(
        self,
    ) -> Dict[Tuple[int, int, int], List[Tuple[int, int, int]]]:
        """channel -> ordered [(seqnum, tag, nbytes)] of send events.

        This is S|c restricted to sends — the object channel-determinism
        (Definition 2) quantifies over.
        """
        out: Dict[Tuple[int, int, int], List[Tuple[int, int, int]]] = {}
        for e in self.sends():
            out.setdefault(e.channel, []).append((e.seqnum, e.tag, e.nbytes))
        return out

    def per_process_send_sequences(self) -> Dict[int, List[Tuple]]:
        """rank -> ordered [(dst, comm, seqnum, tag, nbytes)] of sends.

        This is S|p restricted to sends — send-determinism (Definition 1)
        quantifies over it.  The *order across channels* matters here,
        which is exactly what AMG's reply pattern breaks.
        """
        out: Dict[int, List[Tuple]] = {}
        for e in self.sends():
            out.setdefault(e.rank, []).append(
                (e.channel[1], e.channel[2], e.seqnum, e.tag, e.nbytes)
            )
        return out

    def deliveries_of_rank(self, rank: int) -> List[CommEvent]:
        return [e for e in self.events if e.kind == "deliver" and e.rank == rank]

    def comm_bytes_matrix(self, nranks: int):
        """Dense (nranks x nranks) numpy matrix of bytes sent src->dst."""
        import numpy as np

        mat = np.zeros((nranks, nranks), dtype=np.int64)
        for e in self.sends():
            src, dst, _comm = e.channel
            mat[src, dst] += e.nbytes
        for (src, dst), nbytes in self.warp_pair_bytes.items():
            mat[src, dst] += nbytes
        return mat

    def __len__(self) -> int:
        return len(self.events)
