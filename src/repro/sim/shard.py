"""Shard-side machinery for conservative parallel simulation.

A *shard* is one worker process running the ordinary single-process
engine/runtime stack over the **whole** world topology, but executing
application processes only for the ranks of its assigned clusters.  The
pieces here plug into the unmodified simulator:

* :class:`ShardNetwork` — a :class:`~repro.sim.network.Network` whose
  ``send`` computes arrival times exactly like the sequential network
  (sender NIC serialization, per-channel FIFO bumps, channel sequence
  numbers — every directed channel's state lives on the shard owning the
  source rank), but diverts packets addressed to non-owned ranks into an
  outbox instead of delivering locally.  The coordinator relays them to
  the owning shard, which injects them with the precomputed arrival
  time, so a cross-shard message is delivered bit-identically to the
  sequential run.
* :class:`ShardRecoveryManager` — the online-recovery driver restricted
  to a shard: every shard mirrors a failure's global side effects
  (killing dead runtimes, purging in-flight traffic, invalidating
  node-hosted copies) from the statically known schedule, while only the
  shard owning a rolled-back cluster runs the restart machinery.  The
  completion time of a restart is a *hold point* for the coordinator —
  remote survivors must deliver their failure notifications at exactly
  that instant, which is only known when the owning shard executes it.
* :func:`shard_worker_main` — the worker process body: build the world,
  then alternate ``report -> grant -> run(window)`` with the coordinator
  (:mod:`repro.harness.parallel`) until the global event horizon drains.

The synchronization protocol is conservative (YAWNS-style windows): with
``T`` the global minimum next-event time and ``L`` the network lookahead
(``inject_fixed_ns`` + the smallest applicable wire alpha), every send
performed at ``t >= T`` arrives at ``t + L`` or later, so all shards can
safely simulate up to (and excluding) ``T + L`` before exchanging
messages again.  See ``docs/performance.md`` for the derivation.
"""

from __future__ import annotations

import traceback
from dataclasses import asdict
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.recovery import RecoveryManager, _FlowRestore
from repro.mpi.context import RankContext
from repro.mpi.runtime import World
from repro.sim.network import Network, NetworkParams, Packet
from repro.sim.process import ProcessStatus

#: One cross-shard packet on the wire, as relayed through the
#: coordinator: every field the sequential Packet would carry, with the
#: arrival already fixed by the sending shard's channel state.
Export = Tuple[int, int, object, int, int, int, int, int]


class ShardNetwork(Network):
    """Network of one shard: local delivery for owned ranks, export for
    everyone else.

    ``send`` runs the base implementation unconditionally — the sender's
    NIC busy time, the per-channel FIFO bump, and the channel sequence
    number must advance exactly as in the sequential run (the sending
    shard owns every directed channel whose source it owns).  For a
    non-owned destination the freshly registered in-flight entry is
    removed again, turning the already-scheduled delivery event into a
    no-op, and the packet goes to the outbox instead.  The stale heap
    entry only makes the shard's reported next-event time conservative.
    """

    __slots__ = ("owned", "outbox")

    def __init__(self, *args, owned: FrozenSet[int], **kw) -> None:
        super().__init__(*args, **kw)
        self.owned = owned
        self.outbox: List[Export] = []

    def send(self, src: int, dst: int, payload: object, nbytes: int) -> Packet:
        pkt = Network.send(self, src, dst, payload, nbytes)
        if dst not in self.owned:
            # The fid just assigned by the base send is self._flight_ids.
            self._in_flight.pop(self._flight_ids, None)
            self.outbox.append(
                (
                    pkt.src,
                    pkt.dst,
                    pkt.payload,
                    pkt.nbytes,
                    pkt.sent_at,
                    pkt.inject_done_at,
                    pkt.arrives_at,
                    pkt.channel_seq,
                )
            )
        return pkt

    def purge_involving(self, ranks) -> int:
        """Rollback purge, extended to the outbox: an exported packet
        still waiting for the window boundary is in flight exactly like
        a locally registered one (its arrival is always beyond the
        current window, so it cannot have been delivered yet)."""
        purged = super().purge_involving(ranks)
        rset = set(ranks)
        kept: List[Export] = []
        for export in self.outbox:
            if export[0] in rset or export[1] in rset:
                purged += 1
            else:
                kept.append(export)
        self.outbox = kept
        return purged

    def inject(self, export: Export) -> None:
        """Register a relayed packet for local delivery at its original
        arrival time.  Counters are not touched (the sending shard
        already accounted for the send); the packet joins ``_in_flight``
        so a rollback's ``purge_involving`` drops it exactly like a
        locally in-flight packet."""
        src, dst, payload, nbytes, sent_at, inject_done_at, arrives_at, seq = export
        pkt = Packet(src, dst, payload, nbytes, sent_at, inject_done_at, arrives_at, seq)
        fid = self._flight_ids = self._flight_ids + 1
        engine = self.engine
        engine._seq += 1
        engine._push((arrives_at, engine._seq, None, self._deliver, (fid,)))
        self._in_flight[fid] = pkt


def lookahead_ns(params: NetworkParams, topology, shard_of_rank: Sequence[int]) -> int:
    """Conservative network lookahead for a shard partition.

    Every transfer arrives at least ``inject_fixed_ns + alpha`` after the
    send is issued (injection bandwidth, wire beta, jitter, and FIFO
    bumps only add to that).  The applicable alpha is the inter-node one
    unless some physical node is split across shards — then a cross-shard
    message can ride the intra-node wire and the bound drops to
    ``alpha_intra_ns``."""
    alpha = params.alpha_inter_ns
    for node in range(topology.nnodes):
        shards = {shard_of_rank[r] for r in topology.ranks_on_node(node)}
        if len(shards) > 1:
            alpha = min(alpha, params.alpha_intra_ns)
            break
    return params.inject_fixed_ns + alpha


class ShardRecoveryManager(RecoveryManager):
    """Per-shard restart driver with globally mirrored crash effects.

    Every shard holds the full (static) failure schedule, so each one
    independently executes ``_fail`` at the failure time: runtimes of the
    dead ranks are killed everywhere, in-flight packets (including
    relayed imports) are purged everywhere, and node-hosted checkpoint
    copies are invalidated on whichever shard stores them.  Only the
    shard owning an affected cluster schedules and runs the restart; it
    reports the completion as a *milestone* so every other shard can
    deliver its own survivors' failure notifications (and rebuild its
    partner copies after a node returns) at exactly the same instant.
    """

    def __init__(
        self,
        *args,
        owned_clusters: FrozenSet[int],
        owned_ranks: FrozenSet[int],
        **kw,
    ) -> None:
        super().__init__(*args, **kw)
        self.owned_clusters = owned_clusters
        self.owned_ranks = owned_ranks
        #: Completed restarts not yet reported to the coordinator:
        #: (time_ns, cluster, members, failed_node_or_None).
        self.milestones: List[Tuple[int, int, Tuple[int, ...], Optional[int]]] = []

    def _owns_cluster(self, cluster: int) -> bool:
        return cluster in self.owned_clusters

    def _notify_survivors(self, failed: set) -> None:
        # Only this shard's ranks: a survivor's PEER_HELLO goes through
        # network.send, which mutates the sender's NIC and channel state
        # — state that must only ever advance on the shard owning the
        # sending rank.
        for r in sorted(self.owned_ranks):
            rt = self.world.runtimes[r]
            if r not in failed and rt.alive:
                self.spbc.notify_failure(rt, failed)

    def _complete_restart(self, cluster, restores) -> None:
        super()._complete_restart(cluster, restores)
        event = self._last_event.get(cluster)
        node = event.node if event is not None and event.kind == "node" else None
        self.milestones.append(
            (
                self.world.engine.now,
                cluster,
                tuple(self.spbc.clusters.members(cluster)),
                node,
            )
        )

    def drain_milestones(self):
        out, self.milestones = self.milestones, []
        return out

    def hold_ns(self) -> Optional[int]:
        """Earliest pending restart milestone on this shard, if any.

        The coordinator must not let any other shard advance past this
        time: executing the milestone emits same-instant remote actions
        (survivor notifications, flush cancellations on other shards).
        Scheduled restarts hold at their known absolute time
        (``_pending_at``); a flow-based restore's completion instant is
        unknown until it happens, so it holds at the pipeline's next
        event — a conservative bound that advances every window."""
        bounds = list(self._pending_at.values())
        for pending in self._pending_restart.values():
            if isinstance(pending, _FlowRestore):
                b = pending.next_event_ns()
                if b is not None:
                    bounds.append(b)
        return min(bounds, default=None)

    def mirror_restart(
        self, cluster: int, members: Tuple[int, ...], node: Optional[int]
    ) -> None:
        """Non-owning shard's share of a completed restart: deliver the
        failure notification from this shard's survivors, and re-mirror
        partner copies onto the returned node.  Rebuild flows started
        here re-replicate *this* shard's ranks' copies; their count is
        recorded on the shard-local failure event so the coordinator's
        merge sums to the sequential ``partner_rebuilds`` total."""
        failed = set(members)
        self._notify_survivors(failed)
        if node is not None and hasattr(self.spbc.storage, "rebuild_partner_copies"):
            started = self.spbc.storage.rebuild_partner_copies(node)
            if started:
                event = self._last_event.get(cluster)
                if event is not None:
                    event.partner_rebuilds += started


class _ShardWorld(World):
    """World whose network exports packets addressed outside the shard."""

    def __init__(self, owned_ranks: FrozenSet[int], *args, **kw) -> None:
        self._shard_owned = owned_ranks
        super().__init__(*args, **kw)

    def _make_network(self, net_params, seed: int) -> Network:
        return ShardNetwork(
            self.engine, self.topology, net_params, seed=seed,
            owned=self._shard_owned,
        )


def build_shard_world(plan) -> Tuple[World, "SPBC", Optional[ShardRecoveryManager]]:
    """Construct one shard's world from a :class:`ShardPlan`
    (see :mod:`repro.harness.parallel`); launches the owned ranks and
    installs the recovery mirror when a failure schedule exists."""
    from repro.core.protocol import SPBC

    hooks = SPBC(plan.config)
    if plan.journal:
        # Owned-rank journal events (commits, gc, restarts) accumulate
        # in-process; the summary ships them to the coordinator, which
        # owns the actual journal file.
        from repro.journal.recorder import ListSink

        hooks.journal = ListSink()
    telemetry = None
    if plan.telemetry:
        # Shard-local recorder: the `shard` id keys the engine lane so
        # the coordinator's merge keeps per-shard queue-depth rows apart.
        from repro.obs import Telemetry

        telemetry = Telemetry(shard=plan.shard_id)
    world = _ShardWorld(
        plan.owned_ranks,
        plan.nranks,
        ranks_per_node=plan.ranks_per_node,
        hooks=hooks,
        seed=plan.seed,
        net_params=plan.net_params,
        trace=plan.trace,
        telemetry=telemetry,
    )
    for r in sorted(plan.owned_ranks):
        world.launch(r, plan.app_factory(RankContext(world, r), None))
    manager: Optional[ShardRecoveryManager] = None
    if plan.schedule:
        manager = ShardRecoveryManager(
            world,
            hooks,
            plan.app_factory,
            restart_delay_ns=plan.restart_delay_ns,
            restart_stagger_ns=plan.restart_stagger_ns,
            owned_clusters=plan.owned_clusters,
            owned_ranks=plan.owned_ranks,
        )
        manager.journal = hooks.journal
        for at_ns, rank, kind in plan.schedule:
            manager.inject_failure(at_ns, rank, kind=kind)
    storage = hooks.storage
    if storage is not None and getattr(storage, "flows_active", False):
        # Async tiered storage: this shard's flows on shared lanes are
        # exported to (and mirrored from) the other shards, so every
        # shard computes the same piecewise-constant bandwidth shares.
        storage.iosched.enable_shard_mirroring(plan.shard_id)
    return world, hooks, manager


def _summarize(world, spbc, manager, owned_ranks: FrozenSet[int]) -> Dict[str, Any]:
    """Everything the coordinator needs to merge this shard into a
    sequential-shaped result (all plain picklable data)."""
    owned = sorted(owned_ranks)
    procs = {r: world.processes[r] for r in owned}
    storage = spbc.storage
    commits: Dict[int, List[Tuple[int, int]]] = {}
    for r in owned:
        history = []
        for rnd in storage.rounds_of(r):
            rec = storage.retrieve(r, rnd)
            if rec is not None and rec.ckpt is not None:
                history.append((rnd, rec.ckpt.taken_at_ns))
        commits[r] = history
    return {
        "finish_ns": {r: p.finish_time for r, p in procs.items()},
        "results": {r: p.result for r, p in procs.items()},
        "log": {
            r: (spbc.state[r].log.bytes_logged, spbc.state[r].log.records_logged)
            for r in owned
        },
        "commits": commits,
        "comm_matrix": (
            world.trace.comm_bytes_matrix(world.nranks)
            if world.trace.enabled
            else None
        ),
        "pfs_write_windows": list(spbc.pfs_write_windows),
        "shared_flow_windows": list(storage.shared_flow_windows()),
        # Background-flow accounting (async mode; zeros otherwise).
        # Each shard counts only its own real flows, so the
        # coordinator's sums equal the sequential counters.
        "storage_counters": {
            name: getattr(storage, name, 0)
            for name in (
                "flush_flows_started",
                "flush_flows_completed",
                "flush_flows_cancelled",
                "rebuild_flows_started",
                "rebuild_flows_completed",
            )
        },
        # Rounds each owned rank could restore at the end of the run —
        # the "drained rounds" observable (a flush that never landed is
        # not restorable).
        "drained_rounds": {r: list(storage.restorable_rounds(r)) for r in owned},
        "ckpt_stall_ns": sum(spbc.ckpt_stall_ns.values()),
        "overhead_ns": sum(world.runtimes[r].overhead_total_ns for r in owned),
        "compute_ns": sum(world.runtimes[r].compute_total_ns for r in owned),
        "packets_sent": world.network.packets_sent,
        "bytes_sent": world.network.bytes_sent,
        "events_executed": world.engine.events_executed,
        "failures": [asdict(e) for e in manager.failures] if manager else [],
        "restarts": dict(manager.restarts) if manager else {},
        "journal_events": (
            list(spbc.journal.events) if spbc.journal is not None else []
        ),
        "telemetry": (
            world.telemetry.snapshot() if world.telemetry.enabled else None
        ),
    }


def _check_owned(world, owned_ranks: FrozenSet[int]) -> Optional[str]:
    """First fatal condition among the shard's processes, or None."""
    for r in sorted(owned_ranks):
        proc = world.processes[r]
        if proc.exception is not None:
            return f"rank {r} raised: {proc.exception!r}"
    return None


def shard_worker_main(conn, plan) -> None:
    """Worker process body: report/grant windows until finalized.

    Wire protocol (all messages are tuples; first element is the kind):

    * worker -> coordinator: ``("report", dict)`` after every window,
      or ``("error", traceback_str)`` on any failure.
    * coordinator -> worker:
      ``("grant", horizon_ns, imports, actions, flow_records)`` to
      simulate up to (excluding) ``horizon_ns``, after injecting the
      relayed ``imports``, scheduling the restart-mirror ``actions``,
      and scheduling the other shards' shared-lane ``flow_records``
      (mirror admissions/cancellations — async storage only, else
      empty); ``("finalize",)`` to reply with the merged summary and
      exit.
    """
    try:
        world, spbc, manager = build_shard_world(plan)
        engine = world.engine
        net: ShardNetwork = world.network
        owned = plan.owned_ranks
        iosched = getattr(spbc.storage, "iosched", None)
        mirroring = iosched is not None and iosched.flow_outbox is not None

        def report() -> Dict[str, Any]:
            done = all(
                world.processes[r].status is ProcessStatus.DONE for r in owned
            )
            blocked = (
                [
                    world.processes[r].name
                    for r in sorted(owned)
                    if world.processes[r].status is not ProcessStatus.DONE
                ]
                if not done
                else []
            )
            exports, net.outbox = net.outbox, []
            return {
                "next_ns": engine.next_event_time(),
                "hold_ns": manager.hold_ns() if manager else None,
                "exports": exports,
                "milestones": manager.drain_milestones() if manager else [],
                "flows": iosched.drain_flow_records() if mirroring else [],
                "done": done,
                "blocked": blocked,
                "now_ns": engine.now,
            }

        conn.send(("report", report()))
        while True:
            msg = conn.recv()
            if msg[0] == "finalize":
                conn.send(("summary", _summarize(world, spbc, manager, owned)))
                return
            _kind, horizon, imports, actions, flow_records = msg
            for rec in flow_records:
                iosched.schedule_flow_record(rec)
            for at_ns, cluster, members, node in actions:
                engine.schedule_at(
                    at_ns, manager.mirror_restart, cluster, members, node
                )
            # Deterministic cross-source injection order: equal-arrival
            # imports from different shards get their delivery sequence
            # from this globally agreed sort, not from relay timing.
            for export in sorted(imports, key=lambda e: (e[6], e[4], e[0], e[7])):
                net.inject(export)
            engine.run(until_ns=horizon - 1, detect_deadlock=False)
            failure = _check_owned(world, owned)
            if failure is not None:
                conn.send(("error", failure))
                return
            conn.send(("report", report()))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
