"""Balanced k-way graph partitioning minimizing logged bytes.

The objective of the paper's clustering tool [30]: partition processes
into k clusters so that the total volume of inter-cluster traffic (= the
data SPBC must log) is minimized, under two constraints:

* ranks of one physical node stay together (a node crash kills them all);
* clusters are balanced in rank count (each failure should roll back
  ~n/k processes).

Algorithm: contract ranks to nodes, grow k balanced parts greedily from
high-affinity seeds, then run Kernighan–Lin-style pairwise refinement
(balanced swaps only, never increasing the cut).  This is deliberately a
simple deterministic heuristic — the paper's point (and Table 1's) only
needs a *good* partition, and section 6.6 explicitly notes the tool
optimizes total volume, producing imbalanced per-process log loads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.clusters import ClusterMap
from repro.sim.network import Topology


def cut_bytes(weights: np.ndarray, assignment: Sequence[int]) -> float:
    """Total weight of edges crossing the partition (logged volume)."""
    a = np.asarray(assignment)
    w = np.asarray(weights, dtype=np.float64)
    cross = a[:, None] != a[None, :]
    return float(w[cross].sum() / 2.0 if _symmetric(w) else w[cross].sum())


def _symmetric(w: np.ndarray) -> bool:
    return bool(np.allclose(w, w.T))


def _contract_to_nodes(weights: np.ndarray, topology: Topology) -> np.ndarray:
    """Sum rank-level weights into a node-level matrix."""
    nn = topology.nnodes
    node_of = np.array([topology.node_of(r) for r in range(topology.nranks)])
    out = np.zeros((nn, nn), dtype=np.float64)
    for a in range(nn):
        sel_a = node_of == a
        for b in range(nn):
            if b < a:
                out[a, b] = out[b, a]
                continue
            sel_b = node_of == b
            out[a, b] = weights[np.ix_(sel_a, sel_b)].sum()
    np.fill_diagonal(out, 0.0)
    return out


def greedy_kway(weights: np.ndarray, k: int) -> List[int]:
    """Grow k balanced parts greedily by affinity to the current part."""
    n = weights.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= {n}, got {k}")
    if n % k:
        raise ValueError(f"{k} parts do not evenly divide {n} vertices")
    cap = n // k
    w = np.asarray(weights, dtype=np.float64)
    assignment = [-1] * n
    unassigned = set(range(n))
    total_aff = w.sum(axis=1)
    for part in range(k):
        # Seed: heaviest-connected unassigned vertex (deterministic tie
        # break by index).
        seed = max(unassigned, key=lambda v: (total_aff[v], -v))
        members = [seed]
        assignment[seed] = part
        unassigned.discard(seed)
        while len(members) < cap:
            aff = {
                v: sum(w[v, m] for m in members) for v in unassigned
            }
            pick = max(unassigned, key=lambda v: (aff[v], -v))
            members.append(pick)
            assignment[pick] = part
            unassigned.discard(pick)
    return assignment


def refine_kl(
    weights: np.ndarray, assignment: List[int], max_passes: int = 8
) -> List[int]:
    """Kernighan–Lin-style refinement: balanced pairwise swaps that
    strictly reduce the cut, until a fixed point (or ``max_passes``)."""
    w = np.asarray(weights, dtype=np.float64)
    n = w.shape[0]
    a = list(assignment)

    for _pass in range(max_passes):
        improved = False
        for v in range(n):
            for u in range(v + 1, n):
                if a[v] == a[u]:
                    continue
                # gain of swapping v and u between their parts
                gain = (
                    _move_gain(w, a, v, a[u])
                    + _move_gain(w, a, u, a[v])
                    - 2 * w[v, u]
                )
                if gain > 1e-9:
                    a[v], a[u] = a[u], a[v]
                    improved = True
        if not improved:
            break
    return a


def _move_gain(w: np.ndarray, a: List[int], v: int, to_part: int) -> float:
    """Cut reduction from moving v into to_part (ignoring balance)."""
    internal = sum(w[v, u] for u in range(len(a)) if u != v and a[u] == a[v])
    external_to = sum(w[v, u] for u in range(len(a)) if u != v and a[u] == to_part)
    return external_to - internal


def cluster_by_communication(
    weights: np.ndarray,
    k: int,
    topology: Optional[Topology] = None,
    refine: bool = True,
) -> ClusterMap:
    """Full pipeline: node contraction (when a topology is given), greedy
    growth, KL refinement; returns a rank-level :class:`ClusterMap`.

    ``weights`` is the rank-level symmetric volume matrix (bytes).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError("weights must be a square matrix")
    nranks = w.shape[0]
    if topology is None:
        node_w = w
        node_of = list(range(nranks))
    else:
        if topology.nranks != nranks:
            raise ValueError("topology size disagrees with the weight matrix")
        node_w = _contract_to_nodes(w, topology)
        node_of = [topology.node_of(r) for r in range(nranks)]

    nverts = node_w.shape[0]
    if k == nverts:
        node_assignment = list(range(nverts))
    else:
        node_assignment = greedy_kway(node_w, k)
        if refine:
            before = cut_bytes(node_w, node_assignment)
            node_assignment = refine_kl(node_w, node_assignment)
            after = cut_bytes(node_w, node_assignment)
            assert after <= before + 1e-9, "refinement must not worsen the cut"
    # Normalize part ids to 0..k-1 in first-appearance order.
    remap = {}
    for part in node_assignment:
        if part not in remap:
            remap[part] = len(remap)
    return ClusterMap([remap[node_assignment[node_of[r]]] for r in range(nranks)])
