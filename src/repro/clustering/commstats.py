"""Communication statistics collection.

The paper: "we ran each application for a few iterations and collected
its communication statistics data" (section 6.1).  Here the profiling
run is a short native simulation; the statistic is the bytes-sent matrix
over directed rank pairs.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.tracing import Trace


def comm_matrix_from_trace(trace: Trace, nranks: int) -> np.ndarray:
    """Directed bytes matrix; entry [s, d] = bytes sent s -> d."""
    return trace.comm_bytes_matrix(nranks)


def profile_app(
    app_factory: Callable,
    nranks: int,
    ranks_per_node: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """Run the app once (natively) and return its symmetrized volume
    matrix: W[i, j] = bytes(i -> j) + bytes(j -> i).

    The clustering objective only cares about total volume crossing a
    partition, which is direction-agnostic."""
    from repro.harness.runner import run_native

    res = run_native(app_factory, nranks, ranks_per_node=ranks_per_node, seed=seed)
    mat = comm_matrix_from_trace(res.trace, nranks).astype(np.float64)
    return mat + mat.T
