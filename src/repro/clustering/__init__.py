"""Communication-driven process clustering (the paper's tool from [30]).

Pipeline: profile a few iterations of the application, build the
rank-to-rank communication-volume matrix, contract it to the node level
(ranks of one physical node always cluster together), and partition the
node graph into k balanced clusters minimizing the logged volume (the
weight of edges cut).
"""

from repro.clustering.commstats import comm_matrix_from_trace, profile_app
from repro.clustering.partition import (
    cluster_by_communication,
    cut_bytes,
    greedy_kway,
    refine_kl,
)

__all__ = [
    "comm_matrix_from_trace",
    "profile_app",
    "cluster_by_communication",
    "cut_bytes",
    "greedy_kway",
    "refine_kl",
]
