"""CM1 skeleton: 3-D nonhydrostatic atmospheric model.

2-D horizontal domain decomposition (1280x640x200 over a near-square
process grid); per timestep, several prognostic fields exchange
north/south/east/west halos with *named* receives (CM1 is not in the
paper's anonymous-reception list), then a heavy physics step.

Section 6.4's observation reproduced here: with block clustering the
interior ranks of a cluster tile have *no* inter-cluster communication
at all, so at least one recovering process gains nothing during replay —
which caps CM1's recovery speedup.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import AppSpec, mix, register, resume_acc, resume_iteration
from repro.apps.calibration import grid2
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_HALO = 61


def cm1_app(
    iters: int = 8,
    nfields: int = 6,
    halo_bytes: int = 32 * 1024,
    compute_ns: int = 270_000_000,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nx, ny = grid2(ctx.size)
        x, y = ctx.rank % nx, ctx.rank // nx
        neighbors = []
        if x > 0:
            neighbors.append(ctx.rank - 1)
        if x < nx - 1:
            neighbors.append(ctx.rank + 1)
        if y > 0:
            neighbors.append(ctx.rank - nx)
        if y < ny - 1:
            neighbors.append(ctx.rank + nx)

        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            for f in range(nfields):
                recvs = [ctx.irecv(src=nb, tag=TAG_HALO) for nb in neighbors]
                sends = [
                    ctx.isend(
                        nb, mix(0, ctx.rank, nb, i, f), nbytes=halo_bytes, tag=TAG_HALO
                    )
                    for nb in neighbors
                ]
                statuses = yield from ctx.waitall(recvs)
                yield from ctx.waitall(sends)
                for s in statuses:
                    acc = mix(acc, s.payload)
            yield from ctx.compute(compute_ns)
            # CFL / diagnostics reduction: atmospheric models check the
            # stable timestep globally every step.
            total = yield from ctx.allreduce(
                (acc >> 17) & 0xFFFF, max, nbytes=8
            )
            acc = mix(acc, total)
        return acc

    return factory


register(
    AppSpec(
        name="cm1",
        factory=cm1_app,
        description="atmospheric model with 2-D named halo exchange",
        uses_anysource=False,
        paper_app=True,
        # Prognostic 3-D fields advance every timestep; terrain and
        # base-state profiles are fixed after init.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("prognostic-fields", 5 * MB, 0.9),
                MemoryRegion("diagnostics", 1 * MB, 0.3),
                MemoryRegion("terrain-basestate", 1 * MB, 0.0),
            )
        ),
    )
)
