"""Workloads: the paper's applications as communication skeletons.

Every app exposes a factory returning the uniform harness signature
``app(ctx, state=None)`` and registers an :class:`~repro.apps.base.AppSpec`
so the benchmark drivers can enumerate the paper's six applications
(AMG, CM1, GTC, MILC, MiniFE, MiniGhost) and the four NAS benchmarks
(BT, LU, MG, SP) by name.
"""

from repro.apps.base import AppSpec, get_app, list_apps, register

# Importing the modules populates the registry.
from repro.apps import synthetic  # noqa: F401
from repro.apps import minife  # noqa: F401
from repro.apps import minighost  # noqa: F401
from repro.apps import amg  # noqa: F401
from repro.apps import gtc  # noqa: F401
from repro.apps import milc  # noqa: F401
from repro.apps import cm1  # noqa: F401
from repro.apps import nas  # noqa: F401

__all__ = ["AppSpec", "get_app", "list_apps", "register"]
