"""NAS LU skeleton: SSOR with wavefront (pipelined) sweeps.

Per iteration a lower-triangular sweep flows from the grid's north-west
corner to the south-east (each rank receives from north and west, does a
small block of work, forwards to south and east) and an upper sweep
flows back.  Many *small latency-bound* messages on deep dependency
chains — the worst case for HydEE's centralized replay coordination and
therefore the interesting bar in Figure 6."""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import AppSpec, mix, register, resume_acc, resume_iteration
from repro.apps.calibration import grid2
from repro.mpi.context import RankContext

TAG_LOW = 73
TAG_UP = 74


def lu_app(
    iters: int = 20,
    wave_bytes: int = 1536,
    block_ns: int = 400_000,
    blocks_per_sweep: int = 6,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nx, ny = grid2(ctx.size)
        x, y = ctx.rank % nx, ctx.rank // nx
        north = ctx.rank - nx if y > 0 else None
        south = ctx.rank + nx if y < ny - 1 else None
        west = ctx.rank - 1 if x > 0 else None
        east = ctx.rank + 1 if x < nx - 1 else None

        def sweep(tag: int, recv_from, send_to, i: int, acc: int):
            """One triangular sweep, pipelined in ``blocks_per_sweep``
            chunks (the real LU pipelines k-planes)."""
            for b in range(blocks_per_sweep):
                for src in recv_from:
                    if src is not None:
                        s = yield from ctx.recv(src=src, tag=tag)
                        acc = mix(acc, s.payload)
                yield from ctx.compute(block_ns)
                for dst in send_to:
                    if dst is not None:
                        yield from ctx.send(
                            dst, mix(0, ctx.rank, i, tag, b), nbytes=wave_bytes, tag=tag
                        )
            return acc

        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            acc = yield from sweep(TAG_LOW, (north, west), (south, east), i, acc)
            acc = yield from sweep(TAG_UP, (south, east), (north, west), i, acc)
            total = yield from ctx.allreduce(
                (acc >> 13) & 0xFFFF, lambda a, b: a + b, nbytes=8
            )
            acc = mix(acc, total)
        return acc

    return factory


register(
    AppSpec(
        name="lu",
        factory=lu_app,
        description="NAS LU: SSOR wavefront pipeline (small latency-bound messages)",
        uses_anysource=False,
        nas_app=True,
    )
)
