"""NAS MG skeleton: V-cycle geometric multigrid.

Halo exchanges at every grid level; coarse levels talk to exponentially
farther neighbors (the real MG's comm3 over coarsened grids), producing
cluster-crossing traffic and many small messages per cycle."""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.apps.base import AppSpec, mix, register, resume_acc, resume_iteration
from repro.apps.calibration import grid3
from repro.mpi.context import RankContext

TAG_MG = 75


def _level_neighbors(rank: int, size: int, level: int) -> List[int]:
    """Neighbors at distance 2^level along each axis of the 3-D grid
    (periodic), the way coarsened MG grids skip ranks."""
    nx, ny, nz = grid3(size)
    x = rank % nx
    y = (rank // nx) % ny
    z = rank // (nx * ny)
    step = 1 << level
    out = []
    if nx > 1:
        out.append(((x + step) % nx) + nx * (y + ny * z))
        out.append(((x - step) % nx) + nx * (y + ny * z))
    if ny > 1:
        out.append(x + nx * (((y + step) % ny) + 0) + nx * ny * z)
        out.append(x + nx * (((y - step) % ny) + 0) + nx * ny * z)
    if nz > 1:
        out.append(x + nx * (y + ny * ((z + step) % nz)))
        out.append(x + nx * (y + ny * ((z - step) % nz)))
    return [p for p in dict.fromkeys(out) if p != rank]


def mg_app(
    cycles: int = 15,
    levels: int = 4,
    fine_bytes: int = 16 * 1024,
    compute_l0_ns: int = 10_000_000,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        n = ctx.size
        start = resume_iteration(state)
        acc = resume_acc(state)

        def exchange(level: int, cyc: int, acc: int):
            nbs = _level_neighbors(ctx.rank, n, level)
            nbytes = max(fine_bytes >> (2 * level), 128)
            recvs = [ctx.irecv(src=nb, tag=TAG_MG) for nb in nbs]
            sends = [
                ctx.isend(nb, mix(0, ctx.rank, nb, cyc, level), nbytes=nbytes, tag=TAG_MG)
                for nb in nbs
            ]
            statuses = yield from ctx.waitall(recvs)
            yield from ctx.waitall(sends)
            for s in statuses:
                acc = mix(acc, s.payload)
            return acc

        for cyc in range(start, cycles):
            yield from ctx.maybe_checkpoint(
                lambda cyc=cyc, acc=acc: {"iter": cyc, "acc": acc}
            )
            path = list(range(levels)) + list(range(levels - 2, -1, -1))
            for lvl in path:
                yield from ctx.compute(max(compute_l0_ns >> (3 * lvl), 100_000))
                acc = yield from exchange(lvl, cyc, acc)
            total = yield from ctx.allreduce(
                (acc >> 15) & 0xFFFF, lambda a, b: a + b, nbytes=8
            )
            acc = mix(acc, total)
        return acc

    return factory


register(
    AppSpec(
        name="mg",
        factory=mg_app,
        description="NAS MG: V-cycle multigrid with level-strided halos",
        uses_anysource=False,
        nas_app=True,
    )
)
