"""NAS SP skeleton: scalar-pentadiagonal ADI solver, multi-partition.

Same staged-pipeline structure as BT (see bt.py) with thinner boundary
faces and lighter per-cell work — SP is the more communication-bound of
the two, hence the larger recovery effects in Figure 6."""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import AppSpec, mix, register, resume_acc, resume_iteration
from repro.apps.calibration import grid2
from repro.mpi.context import RankContext

TAG_SWEEP = 72


def sp_app(
    iters: int = 30,
    face_bytes: int = 12 * 1024,
    compute_per_sweep_ns: int = 3_000_000,
    stages: int = 6,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nx, ny = grid2(ctx.size)
        x, y = ctx.rank % nx, ctx.rank // nx
        dirs = []
        if nx > 1:
            dirs.append((y * nx + (x + 1) % nx, y * nx + (x - 1) % nx))
        if ny > 1:
            dirs.append((((y + 1) % ny) * nx + x, ((y - 1) % ny) * nx + x))
        if ny > 1:
            dirs.append((((y + 2) % ny) * nx + x, ((y - 2) % ny) * nx + x))
        cell_ns = max(compute_per_sweep_ns // stages, 1)

        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            for d, (succ, pred) in enumerate(dirs):
                for s in range(stages):
                    yield from ctx.compute(cell_ns)
                    if succ == ctx.rank:
                        continue
                    status = yield from ctx.sendrecv(
                        succ,
                        mix(0, ctx.rank, i, d, s),
                        nbytes=face_bytes,
                        src=pred,
                        tag=TAG_SWEEP,
                    )
                    acc = mix(acc, status.payload)
        return acc

    return factory


register(
    AppSpec(
        name="sp",
        factory=sp_app,
        description="NAS SP: multi-partition ADI pipeline sweeps (thin faces)",
        uses_anysource=False,
        nas_app=True,
    )
)
