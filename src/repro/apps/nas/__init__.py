"""NAS parallel benchmark skeletons (BT, LU, MG, SP).

Used for the SPBC vs HydEE recovery comparison (paper Figure 6 — only
these four could run under the HydEE prototype's limitations).  All four
are deterministic named-receive codes, i.e. send-deterministic, which is
precisely the class HydEE supports.
"""

from repro.apps.nas import bt  # noqa: F401
from repro.apps.nas import lu  # noqa: F401
from repro.apps.nas import mg  # noqa: F401
from repro.apps.nas import sp  # noqa: F401
