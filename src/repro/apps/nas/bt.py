"""NAS BT skeleton: block-tridiagonal ADI solver, multi-partition scheme.

Per iteration, three directional sweeps (x, y, z).  The multi-partition
decomposition keeps every rank busy at every stage of a sweep: work
flows along the sweep direction in ``stages`` steps, each rank solving a
cell block then forwarding boundary data to its successor along the
direction (and receiving from its predecessor).  This staged pipeline —
not a bulk halo exchange — is what ADI solvers actually do, and its
dense dependency chains are what separates SPBC's pre-replayed recovery
from HydEE's per-message coordination (Figure 6).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import AppSpec, mix, register, resume_acc, resume_iteration
from repro.apps.calibration import grid2
from repro.mpi.context import RankContext

TAG_SWEEP = 71


def bt_app(
    iters: int = 30,
    face_bytes: int = 20 * 1024,
    compute_per_sweep_ns: int = 4_000_000,
    stages: int = 6,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nx, ny = grid2(ctx.size)
        x, y = ctx.rank % nx, ctx.rank // nx
        # successor/predecessor along each sweep direction (cyclic, the
        # multi-partition wraparound)
        dirs = []
        if nx > 1:
            dirs.append((y * nx + (x + 1) % nx, y * nx + (x - 1) % nx))
        if ny > 1:
            dirs.append((((y + 1) % ny) * nx + x, ((y - 1) % ny) * nx + x))
        if ny > 1:  # z-direction mapped onto the grid's y-axis partners
            dirs.append((((y + 2) % ny) * nx + x, ((y - 2) % ny) * nx + x))
        cell_ns = max(compute_per_sweep_ns // stages, 1)

        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            for d, (succ, pred) in enumerate(dirs):
                for s in range(stages):
                    yield from ctx.compute(cell_ns)
                    if succ == ctx.rank:
                        continue
                    status = yield from ctx.sendrecv(
                        succ,
                        mix(0, ctx.rank, i, d, s),
                        nbytes=face_bytes,
                        src=pred,
                        tag=TAG_SWEEP,
                    )
                    acc = mix(acc, status.payload)
        return acc

    return factory


register(
    AppSpec(
        name="bt",
        factory=bt_app,
        description="NAS BT: multi-partition ADI pipeline sweeps",
        uses_anysource=False,
        nas_app=True,
    )
)
