"""Synthetic workloads: protocol tests, paper scenarios, counterexamples.

These are not the paper's applications (see the sibling modules) but the
small programs the paper's arguments are built on:

* :func:`ring_app` / :func:`halo2d_app` — checkpointable deterministic
  SPMD kernels used throughout the test suite;
* :func:`fig2_app` — the exact three-process ``MPI_ANY_SOURCE`` scenario
  of paper Figure 2 (the mismatch SPBC's identifiers prevent);
* :func:`probe_reply_app` — the BoomerAMG-style data-dependent exchange
  of Figure 4: channel-deterministic but *not* send-deterministic;
* :func:`master_worker_app` — the excluded application class (section
  3.4): not even channel-deterministic.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.apps.base import (
    AppSpec,
    mix,
    mix_unordered,
    register,
    resume_acc,
    resume_iteration,
)
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.context import RankContext


# ----------------------------------------------------------------------
# Deterministic checkpointable kernels
# ----------------------------------------------------------------------

def ring_app(
    iters: int = 10,
    msg_bytes: int = 4096,
    compute_ns: int = 200_000,
    allreduce_every: int = 0,
):
    """1-D ring shift: every iteration each rank sends right, receives
    from the left, folds the payload into a checksum.  Optionally does a
    global allreduce every ``allreduce_every`` iterations (to exercise
    cross-cluster collectives in recovery)."""

    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        start = resume_iteration(state)
        acc = resume_acc(state)
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        if not allreduce_every:
            # Warp contract (repro.sim.warp): one leading compute per
            # body, warp_jump consulted right after it, and the skipped
            # iterations' folds replayed analytically — iteration j
            # delivers mix(0, left, j) from the left neighbor, exactly
            # what the fold below would have folded.  (The allreduce
            # variant breaks per-iteration periodicity, so it does not
            # declare.)
            ctx.declare_warpable()
        i = start
        while i < iters:
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            yield from ctx.compute(compute_ns)
            jump = ctx.warp_jump()
            if jump:
                for j in range(i, i + jump):
                    acc = mix(acc, mix(0, left, j), j)
                i += jump
            payload = mix(0, ctx.rank, i)
            status = yield from ctx.sendrecv(
                right, payload, nbytes=msg_bytes, src=left, tag=7
            )
            acc = mix(acc, status.payload, i)
            if allreduce_every and (i + 1) % allreduce_every == 0:
                total = yield from ctx.allreduce(acc & 0xFFFF, lambda a, b: a + b, nbytes=8)
                acc = mix(acc, total)
            i += 1
        return acc

    return factory


def halo2d_app(
    px: int = 0,
    py: int = 0,
    iters: int = 8,
    msg_bytes: int = 8192,
    compute_ns: int = 400_000,
):
    """2-D halo exchange on a px * py process grid (px/py inferred as a
    near-square factorization when left 0).  Named receives only."""

    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nx, ny = _grid_dims(ctx.size, px, py)
        x, y = ctx.rank % nx, ctx.rank // nx
        neighbors = []
        if nx > 1:
            neighbors.append(y * nx + (x + 1) % nx)
            neighbors.append(y * nx + (x - 1) % nx)
        if ny > 1:
            neighbors.append(((y + 1) % ny) * nx + x)
            neighbors.append(((y - 1) % ny) * nx + x)
        neighbors = [n for n in dict.fromkeys(neighbors) if n != ctx.rank]
        start = resume_iteration(state)
        acc = resume_acc(state)
        me = ctx.rank
        # Warp contract: iteration j delivers mix(0, n, me, j) from each
        # neighbor n (grid neighborhoods are symmetric), folded in
        # neighbor-list order — replayed analytically on a jump.
        ctx.declare_warpable()
        i = start
        while i < iters:
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            yield from ctx.compute(compute_ns)
            jump = ctx.warp_jump()
            if jump:
                for j in range(i, i + jump):
                    for n in neighbors:
                        acc = mix(acc, mix(0, n, me, j))
                i += jump
            sends = [
                ctx.isend(n, mix(0, ctx.rank, n, i), nbytes=msg_bytes, tag=2)
                for n in neighbors
            ]
            recvs = [ctx.irecv(src=n, tag=2) for n in neighbors]
            statuses = yield from ctx.waitall(recvs)
            yield from ctx.waitall(sends)
            for s in statuses:
                acc = mix(acc, s.payload)
            i += 1
        return acc

    return factory


def _grid_dims(size: int, px: int, py: int):
    if px and py:
        if px * py != size:
            raise ValueError(f"{px}x{py} grid does not match {size} ranks")
        return px, py
    nx = int(size**0.5)
    while size % nx:
        nx -= 1
    return nx, size // nx


# ----------------------------------------------------------------------
# Paper Figure 2: the ANY_SOURCE mismatch scenario
# ----------------------------------------------------------------------

def fig2_app(use_pattern_api: bool = True, p0_delay_ns: int = 300_000):
    """Three processes, paper Figure 2.

    p0 and p1 live in one cluster, p2 in another.  p1 receives twice with
    ``MPI_ANY_SOURCE``; the algorithm guarantees deliver(m0) AHB
    deliver(m2) because m1 (p1→p2) is only sent after m0 arrives and m2
    only after m1.  During recovery of {p0, p1}, m2 is replayed from p2's
    log immediately, so without identifiers p1 can deliver m2 first — an
    invalid execution.  ``use_pattern_api`` applies the section 5.1 fix:
    the two receives live in different iterations of a declared pattern.

    Every rank returns its delivery order (p1) or None.
    """

    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        if state is not None:
            raise NotImplementedError("fig2 scenario restarts from scratch")
        if ctx.rank > 2:
            # The scenario needs exactly three processes; extras idle.
            yield from ctx.compute(0)
            return None
        pid = ctx.declare_pattern() if use_pattern_api else None
        delivered: List[str] = []
        if ctx.rank == 0:
            # p0 delays a little so that, during recovery, the replayed m2
            # can overtake m0 (the paper's race).
            yield from ctx.compute(p0_delay_ns)
            if pid is not None:
                ctx.begin_iteration(pid)
            yield from ctx.send(1, "m0", nbytes=64, tag=1)
            if pid is not None:
                ctx.end_iteration(pid)
                ctx.begin_iteration(pid)  # stay aligned with iteration 2
                ctx.end_iteration(pid)
            return None
        if ctx.rank == 1:
            if pid is not None:
                ctx.begin_iteration(pid)
            s1 = yield from ctx.recv(src=ANY_SOURCE, tag=1)
            delivered.append(s1.payload)
            yield from ctx.send(2, "m1", nbytes=64, tag=2)
            if pid is not None:
                ctx.end_iteration(pid)
                ctx.begin_iteration(pid)
            s2 = yield from ctx.recv(src=ANY_SOURCE, tag=1)
            delivered.append(s2.payload)
            if pid is not None:
                ctx.end_iteration(pid)
            return delivered
        # p2 (the other cluster)
        if pid is not None:
            ctx.begin_iteration(pid)
        yield from ctx.recv(src=1, tag=2)
        if pid is not None:
            ctx.end_iteration(pid)
            ctx.begin_iteration(pid)
        yield from ctx.send(1, "m2", nbytes=64, tag=1)
        if pid is not None:
            ctx.end_iteration(pid)
        return None

    return factory


# ----------------------------------------------------------------------
# Paper Figure 4: data-dependent exchange (channel- but not send-det)
# ----------------------------------------------------------------------

def probe_reply_app(
    iters: int = 3,
    contacts_per_rank: int = 2,
    msg_bytes: int = 2048,
    compute_ns: int = 50_000,
    use_pattern_api: bool = True,
):
    """Simplified BoomerAMG assumed-partition exchange (paper Figure 4).

    Each rank contacts ``contacts_per_rank`` data-dependent peers with
    tag 1 and *replies immediately* (tag 2) to whoever it hears from via
    ``MPI_Iprobe(ANY_SOURCE)``.  The reply order follows arrival order,
    which differs between timings: the app is channel-deterministic but
    not send-deterministic.  Termination inside an iteration is detected
    with a nonblocking barrier-free scheme simplified to counting
    (every rank knows it must receive exactly as many requests as it is
    a contact of — precomputed deterministically)."""

    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        start = resume_iteration(state)
        acc = resume_acc(state)
        n = ctx.size

        def contacts_of(r: int) -> List[int]:
            # Deterministic data-dependent contact list (stand-in for
            # "based on local data"); every rank can compute its own but
            # not who will contact it (hence the ANY_SOURCE probe).
            cs = [(r * 7 + 3 * k + 1) % n for k in range(contacts_per_rank)]
            return [c for c in dict.fromkeys(cs) if c != r]

        contacts = contacts_of(ctx.rank)
        # The simulation's termination shortcut: the test knows how many
        # requests will arrive (the real code runs a termination protocol).
        expected = sum(
            1 for r in range(n) if r != ctx.rank and ctx.rank in contacts_of(r)
        )
        pid = ctx.declare_pattern() if use_pattern_api else None
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            if pid is not None:
                ctx.begin_iteration(pid)
            yield from ctx.compute(compute_ns)
            reply_reqs = [ctx.irecv(src=c, tag=2) for c in contacts]
            for c in contacts:
                ctx.isend(c, mix(0, ctx.rank, c, i), nbytes=msg_bytes, tag=1)
            served = 0
            got_replies = False
            replies = []
            served_payloads = []
            while served < expected or not got_replies:
                flag, status = ctx.iprobe(src=ANY_SOURCE, tag=1)
                if flag:
                    s = yield from ctx.recv(src=status.source, tag=1)
                    # immediate reply: the send order now depends on the
                    # arrival order -> not send-deterministic
                    yield from ctx.send(
                        status.source, mix(0, s.payload), nbytes=msg_bytes, tag=2
                    )
                    served_payloads.append(s.payload)
                    served += 1
                    continue
                done, statuses = ctx.testall(reply_reqs)
                if done:
                    got_replies = True
                    if served >= expected:
                        replies = statuses
                        break
                yield from ctx.compute(5_000)
            if not replies:
                replies = yield from ctx.waitall(reply_reqs)
            # Requests arrive in a timing-dependent order: fold them
            # order-insensitively so the result is execution-independent.
            acc = mix_unordered(acc, served_payloads)
            for s in replies:
                acc = mix(acc, s.payload)
            # The iteration's AHB boundary: nobody starts iteration i+1
            # before everyone finished i (paper: "the only way to get a
            # correct MPI code when a pattern includes anonymous requests").
            yield from ctx.barrier()
            if pid is not None:
                ctx.end_iteration(pid)
        return acc

    return factory


# ----------------------------------------------------------------------
# Replay-window stressor (paper section 5.2.2)
# ----------------------------------------------------------------------

def window_stress_app(
    iters: int = 4,
    big_bytes: int = 200 * 1024,
    small_bytes: int = 1024,
    nsmall: int = 8,
    compute_ns: int = 100_000,
):
    """Adversarial log order for the replay flow control.

    Odd ranks send, each iteration, one *large* (rendezvous) message that
    their even partner receives only at the *end* of the iteration, then
    ``nsmall`` small messages the partner consumes first.  A replayer
    that insists on completing sends strictly in post order (pre-post
    window 1) deadlocks: the large send cannot complete until its receive
    is posted, which happens only after the small messages — which sit
    behind the large one in the log.  This is exactly why SPBC logs send
    post/completion orders and pre-posts up to 50 requests (section
    5.2.2).
    """

    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        start = resume_iteration(state)
        acc = resume_acc(state)
        partner = ctx.rank ^ 1
        if partner >= ctx.size:
            yield from ctx.compute(0)
            return acc
        sender = ctx.rank % 2 == 1
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            if sender:
                reqs = [ctx.isend(partner, mix(0, i), nbytes=big_bytes, tag=9)]
                for k in range(nsmall):
                    reqs.append(
                        ctx.isend(partner, mix(0, i, k), nbytes=small_bytes, tag=8)
                    )
                yield from ctx.waitall(reqs)
            else:
                for _k in range(nsmall):
                    s = yield from ctx.recv(src=partner, tag=8)
                    acc = mix(acc, s.payload)
                    yield from ctx.compute(compute_ns)
                s = yield from ctx.recv(src=partner, tag=9)  # big one last
                acc = mix(acc, s.payload)
        return acc

    return factory


# ----------------------------------------------------------------------
# Master/worker: the excluded, non-channel-deterministic class
# ----------------------------------------------------------------------

def master_worker_app(tasks: int = 12, task_bytes: int = 1024):
    """First-come-first-served master/worker: the master hands the next
    task to whichever worker's result arrives first, so even the
    *channels* carry different sequences in different timings.  Used to
    show the determinism checker catching non-channel-deterministic
    codes (which SPBC explicitly does not target, section 3.4)."""

    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nworkers = ctx.size - 1
        if ctx.rank == 0:
            handed = 0
            acc = 0
            # Seed one task per worker.
            for w in range(1, ctx.size):
                if handed < tasks:
                    yield from ctx.send(w, handed, nbytes=task_bytes, tag=1)
                    handed += 1
            done = 0
            while done < tasks:
                s = yield from ctx.recv(src=ANY_SOURCE, tag=2)
                done += 1
                acc = mix_unordered(acc, [s.payload])
                if handed < tasks:
                    yield from ctx.send(s.source, handed, nbytes=task_bytes, tag=1)
                    handed += 1
                else:
                    yield from ctx.send(s.source, -1, nbytes=8, tag=1)
            return acc
        # worker: jittered service time makes completion order timing-dependent
        while True:
            s = yield from ctx.recv(src=0, tag=1)
            if s.payload == -1:
                return None
            yield from ctx.compute(100_000 + (ctx.rank * 37_000) % 90_000)
            yield from ctx.send(0, mix(0, s.payload, ctx.rank), nbytes=task_bytes, tag=2)

    return factory


register(
    AppSpec(
        name="ring",
        factory=ring_app,
        description="1-D ring shift (deterministic, checkpointable)",
        uses_anysource=False,
    )
)
register(
    AppSpec(
        name="halo2d",
        factory=halo2d_app,
        description="2-D halo exchange (deterministic, checkpointable)",
        uses_anysource=False,
    )
)
register(
    AppSpec(
        name="fig2",
        factory=fig2_app,
        description="paper Figure 2 ANY_SOURCE mismatch scenario",
        uses_anysource=True,
    )
)
register(
    AppSpec(
        name="probe_reply",
        factory=probe_reply_app,
        description="paper Figure 4 assumed-partition exchange",
        uses_anysource=True,
    )
)
register(
    AppSpec(
        name="master_worker",
        factory=master_worker_app,
        description="non-channel-deterministic counterexample",
        uses_anysource=True,
    )
)
register(
    AppSpec(
        name="window_stress",
        factory=window_stress_app,
        description="adversarial log order for the replay pre-post window (5.2.2)",
        uses_anysource=False,
    )
)
