"""MiniGhost skeleton: finite-difference stencil with ghost-cell exchange.

The paper's most communication-intensive workload (Table 1: up to
6.3 MB/s per process under pure message logging).  BSPMA structure: for
each of ``nvars`` variables per timestep, exchange faces with up to six
3-D neighbors (named receives — MiniGhost is not in the paper's list of
anonymous-reception apps), then relax; every ``reduce_every`` variables a
global grid sum runs (allreduce).

The domain is non-periodic, so boundary ranks have fewer neighbors —
this is what makes Table 1's Avg visibly lower than Max for MiniGhost.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import AppSpec, mix, register, resume_acc, resume_iteration
from repro.apps.calibration import grid3
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_FACE = 11
TAG_SUM = 12


def minighost_app(
    iters: int = 8,
    nvars: int = 40,
    face_bytes: int = 12 * 1024,
    compute_ns_per_var: int = 9_500_000,
    reduce_every: int = 5,
):
    """Factory with per-rank (weak-scaling) problem constants."""

    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nx, ny, nz = grid3(ctx.size)
        x = ctx.rank % nx
        y = (ctx.rank // nx) % ny
        z = ctx.rank // (nx * ny)
        neighbors = []
        if x > 0:
            neighbors.append(ctx.rank - 1)
        if x < nx - 1:
            neighbors.append(ctx.rank + 1)
        if y > 0:
            neighbors.append(ctx.rank - nx)
        if y < ny - 1:
            neighbors.append(ctx.rank + nx)
        if z > 0:
            neighbors.append(ctx.rank - nx * ny)
        if z < nz - 1:
            neighbors.append(ctx.rank + nx * ny)

        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            for v in range(nvars):
                yield from ctx.compute(compute_ns_per_var)
                recvs = [ctx.irecv(src=nb, tag=TAG_FACE) for nb in neighbors]
                sends = [
                    ctx.isend(nb, mix(0, ctx.rank, nb, i, v), nbytes=face_bytes, tag=TAG_FACE)
                    for nb in neighbors
                ]
                statuses = yield from ctx.waitall(recvs)
                yield from ctx.waitall(sends)
                for s in statuses:
                    acc = mix(acc, s.payload)
                if (v + 1) % reduce_every == 0:
                    total = yield from ctx.allreduce(
                        (acc >> 5) & 0xFFFF, lambda a, b: a + b, nbytes=8
                    )
                    acc = mix(acc, total)
        return acc

    return factory


register(
    AppSpec(
        name="minighost",
        factory=minighost_app,
        description="finite-difference stencil with ghost-cell boundary exchange",
        uses_anysource=False,
        paper_app=True,
        # Explicit time-stepping rewrites the whole grid every sweep;
        # only the setup tables stay cold.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("grid-vars", 6 * MB, 0.95),
                MemoryRegion("ghost-buffers", 1 * MB, 0.6),
                MemoryRegion("setup", 1 * MB, 0.0),
            )
        ),
    )
)
