"""Calibration constants shared by the workload skeletons.

The paper's testbed: 64 nodes x 8 cores, InfiniBand 20G driven through
IPoIB (section 6.1) — a *high-latency, moderate-bandwidth* transport
whose effective per-rank throughput is further divided by the 8 ranks
sharing each NIC.  ``PAPER_NET`` models that: ~25 us one-way latency and
~80 MB/s effective per-rank bandwidth inter-node, shared-memory-like
parameters intra-node.

Each app module calibrates its per-iteration compute time and message
sizes so that, at the paper's scale (512 ranks), the per-process log
growth under pure message logging lands in Table 1's 512-cluster column:

    AMG ~1.7-2.0, CM1 ~2.8-2.9, GTC ~1.7-1.8, MILC ~0.6,
    MiniFE ~0.5-0.6, MiniGhost ~5.5-6.3   (MB/s per process)

and the communication-time fraction matches section 6.4's discussion
(CM1/GTC/MiniFE < 10%, AMG > 50%, MILC/MiniGhost in between with mostly
nearest-neighbor — hence intra-cluster — traffic).
"""

from __future__ import annotations

from repro.sim.network import NetworkParams
from repro.util.units import US

#: Network model for paper-shaped experiments (IPoIB over IB 20G, 8
#: ranks/node sharing the NIC).
PAPER_NET = NetworkParams(
    alpha_inter_ns=25 * US,
    beta_inter_ns_per_byte=12.0,  # ~80 MB/s effective per rank
    alpha_intra_ns=500,
    beta_intra_ns_per_byte=0.25,  # ~4 GB/s shared memory
    inject_fixed_ns=400,
    inject_ns_per_byte=1.2,  # ~800 MB/s CPU-driven injection
    jitter_max_ns=0,
)


def det_jitter(*keys: int, spread: float = 0.3) -> float:
    """Deterministic pseudo-random factor in [1-spread, 1+spread].

    Used to model compute load imbalance (e.g. AMG's per-level work
    differences) without breaking run-to-run determinism."""
    h = 0x9E3779B97F4A7C15
    for k in keys:
        h ^= (k + 0x9E3779B9) & 0xFFFFFFFFFFFFFFFF
        h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 27
    unit = (h & 0xFFFFFF) / float(0xFFFFFF)  # [0, 1]
    return 1.0 + spread * (2.0 * unit - 1.0)


def grid3(n: int) -> tuple[int, int, int]:
    """Near-cubic 3-D factorization of ``n`` ranks."""
    best = (n, 1, 1)
    best_score = None
    for a in range(1, int(round(n ** (1 / 3))) + 2):
        if n % a:
            continue
        m = n // a
        for b in range(a, int(m**0.5) + 1):
            if m % b:
                continue
            c = m // b
            score = (c - a) + (c - b)
            if best_score is None or score < best_score:
                best_score = score
                best = (a, b, c)
    return best


def grid2(n: int) -> tuple[int, int]:
    """Near-square 2-D factorization of ``n`` ranks."""
    a = int(n**0.5)
    while n % a:
        a -= 1
    return a, n // a
