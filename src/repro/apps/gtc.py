"""GTC skeleton: 3-D gyrokinetic particle-in-cell.

Domain decomposition per the paper's run (micell=800, npartdom=8): a
ring of toroidal sections, each split over ``npartdom`` particle
domains.  Per step: particles crossing section boundaries are shifted to
the left/right ring neighbors — the shift receive uses
``MPI_ANY_SOURCE`` (counts are data-dependent), so it lives in a
declared pattern — then the field solve reduces charge over the
partdom group (allreduce).

Clustering note (Table 1): with contiguous block clusters the ring is
cut in only a few places, so the *maximum* per-process log growth is the
boundary ranks' shift traffic — constant from 2 to 16 clusters, exactly
what the paper observes for GTC.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import (
    AppSpec,
    mix,
    mix_unordered,
    register,
    resume_acc,
    resume_iteration,
)
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_SHIFT = 41


TAG_FIELD = 42


def gtc_app(
    iters: int = 10,
    npartdom: int = 8,
    shift_bytes: int = 96 * 1024,
    field_bytes: int = 64 * 1024,
    compute_ns: int = 110_000_000,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        n = ctx.size
        pd = min(npartdom, n)
        while n % pd:
            pd -= 1
        ntor = n // pd
        tor = ctx.rank // pd  # toroidal section
        dom = ctx.rank % pd  # particle domain inside the section
        right = ((tor + 1) % ntor) * pd + dom
        left = ((tor - 1) % ntor) * pd + dom
        # Particle-domain neighbors *within* the toroidal section: the
        # charge-grid exchange.  This heavy intra-section coupling is why
        # clustering GTC along the torus (contiguous arcs) is optimal —
        # and why the *maximum* log rate (the arc-boundary ranks' shift
        # traffic) stays constant from 2 to 16 clusters (Table 1).
        dright = tor * pd + (dom + 1) % pd
        dleft = tor * pd + (dom - 1) % pd
        pattern = ctx.declare_pattern()
        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            # Push particles.
            yield from ctx.compute(compute_ns)
            if pd > 1 and dright != ctx.rank:
                s1 = yield from ctx.sendrecv(
                    dright, mix(0, ctx.rank, i, 3), nbytes=field_bytes,
                    src=dleft, tag=TAG_FIELD,
                )
                s2 = yield from ctx.sendrecv(
                    dleft, mix(0, ctx.rank, i, 4), nbytes=field_bytes,
                    src=dright, tag=TAG_FIELD,
                )
                acc = mix(acc, s1.payload, s2.payload)
            if ntor > 1:
                # Particle shift: two anonymous receives (left and right
                # batches arrive in timing-dependent order).
                ctx.begin_iteration(pattern)
                recvs = [
                    ctx.irecv(src=ANY_SOURCE, tag=TAG_SHIFT) for _ in range(2)
                ]
                ctx.isend(right, mix(0, ctx.rank, i, 1), nbytes=shift_bytes, tag=TAG_SHIFT)
                ctx.isend(left, mix(0, ctx.rank, i, 2), nbytes=shift_bytes, tag=TAG_SHIFT)
                statuses = yield from ctx.waitall(recvs)
                acc = mix_unordered(acc, [s.payload for s in statuses])
                ctx.end_iteration(pattern)
            # Field solve: charge accumulation over everyone (the AHB
            # boundary between shift iterations).
            total = yield from ctx.allreduce(
                (acc >> 9) & 0xFFFF, lambda a, b: a + b, nbytes=2048
            )
            acc = mix(acc, total)
        return acc

    return factory


register(
    AppSpec(
        name="gtc",
        factory=gtc_app,
        description="particle-in-cell with ANY_SOURCE toroidal particle shifts",
        uses_anysource=True,
        paper_app=True,
        # Particles move every step (positions + velocities rewritten
        # wholesale); the field grid is smaller and partially updated.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("particles", 6 * MB, 1.0),
                MemoryRegion("field-grid", 1 * MB, 0.7),
                MemoryRegion("diagnostics", 512 * 1024, 0.05),
            )
        ),
    )
)
