"""MiniFE skeleton: unstructured-grid finite-element CG solver.

Per CG iteration: a halo exchange with the 3-D neighbors (MiniFE *does*
use ``MPI_ANY_SOURCE`` for these receives — it knows how many messages
to expect but not their arrival order — so the exchange lives inside a
declared pattern, paper section 6.1: "in MiniFE only one communication
pattern was modified"), then two dot-product allreduces.

The lightest logger in Table 1 (0.5-0.6 MB/s per process at 512
clusters): small faces, fast iterations, < 10% communication time.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.apps.base import (
    AppSpec,
    mix,
    mix_unordered,
    register,
    resume_acc,
    resume_iteration,
)
from repro.apps.calibration import grid3
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_HALO = 21


def _halo_neighbors(rank: int, size: int) -> List[int]:
    """3-D stencil neighborhood on the grid3 factorization of ``size``."""
    nx, ny, nz = grid3(size)
    x = rank % nx
    y = (rank // nx) % ny
    z = rank // (nx * ny)
    neighbors = []
    if x > 0:
        neighbors.append(rank - 1)
    if x < nx - 1:
        neighbors.append(rank + 1)
    if y > 0:
        neighbors.append(rank - nx)
    if y < ny - 1:
        neighbors.append(rank + nx)
    if z > 0:
        neighbors.append(rank - nx * ny)
    if z < nz - 1:
        neighbors.append(rank + nx * ny)
    return neighbors


#: size -> (per-rank accumulators after the last tabulated iteration,
#: per-iteration (dot1, dot2) allreduce totals).  The evolution is
#: deterministic and shared by every rank, so the table is computed once
#: per world size and extended on demand.
_TOTALS_CACHE: Dict[int, Tuple[List[int], List[Tuple[int, int]]]] = {}


def _allreduce_totals(size: int, upto: int) -> List[Tuple[int, int]]:
    """Totals of the two CG dot-product allreduces for iterations
    ``0..upto-1``, by replaying every rank's accumulator analytically.

    This is minife's warp-contract fast-forward state: a jumped rank
    folds these totals (and its neighbors' halo payloads) instead of
    exchanging the skipped iterations' messages.  Valid only for runs
    that started from iteration 0 — exactly the failure-free phases
    warp is allowed to engage in."""
    accs, totals = _TOTALS_CACHE.setdefault(size, ([0] * size, []))
    if len(totals) < upto:
        neighbors_of = [_halo_neighbors(r, size) for r in range(size)]
        for j in range(len(totals), upto):
            for r in range(size):
                accs[r] = mix_unordered(
                    accs[r], [mix(0, n, r, j) for n in neighbors_of[r]]
                )
            dot1 = sum((a >> 3) & 0xFFFF for a in accs)
            for r in range(size):
                accs[r] = mix(accs[r], dot1)
            dot2 = sum((a >> 3) & 0xFFFF for a in accs)
            for r in range(size):
                accs[r] = mix(accs[r], dot2)
            totals.append((dot1, dot2))
    return totals


def minife_app(
    iters: int = 20,
    face_bytes: int = 4 * 1024,
    compute_ns: int = 25_000_000,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        me = ctx.rank
        neighbors = _halo_neighbors(me, ctx.size)

        pattern = ctx.declare_pattern()
        start = resume_iteration(state)
        acc = resume_acc(state)
        # Warp contract (repro.sim.warp): the quiescent anchor sits in
        # the post-halo compute phase, so a jump lands at the same point
        # of iteration i+jump.  The span in between — iteration j's two
        # dot-product totals and iteration j+1's halo payloads (each
        # neighbor n delivers mix(0, n, me, j+1)) — is replayed
        # analytically below.
        ctx.declare_warpable()
        i = start
        while i < iters:
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            # SpMV: halo exchange with anonymous receives (the modified
            # pattern), then local matrix apply.
            ctx.begin_iteration(pattern)
            recvs = [ctx.irecv(src=ANY_SOURCE, tag=TAG_HALO) for _ in neighbors]
            sends = [
                ctx.isend(nb, mix(0, me, nb, i), nbytes=face_bytes, tag=TAG_HALO)
                for nb in neighbors
            ]
            statuses = yield from ctx.waitall(recvs)
            yield from ctx.waitall(sends)
            acc = mix_unordered(acc, [s.payload for s in statuses])
            ctx.end_iteration(pattern)
            yield from ctx.compute(compute_ns)
            jump = ctx.warp_jump()
            if jump:
                totals = _allreduce_totals(ctx.size, i + jump)
                for j in range(i, i + jump):
                    dot1, dot2 = totals[j]
                    acc = mix(acc, dot1)
                    acc = mix(acc, dot2)
                    acc = mix_unordered(
                        acc, [mix(0, n, me, j + 1) for n in neighbors]
                    )
                i += jump
            # Two CG dot products.
            for _ in range(2):
                total = yield from ctx.allreduce(
                    (acc >> 3) & 0xFFFF, lambda a, b: a + b, nbytes=8
                )
                acc = mix(acc, total)
            i += 1
        return acc

    return factory


register(
    AppSpec(
        name="minife",
        factory=minife_app,
        description="finite-element CG solver with ANY_SOURCE halo exchange",
        uses_anysource=True,
        paper_app=True,
        # The assembled stiffness matrix never changes during the solve;
        # only the CG vectors are hot — the strongest delta case.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("stiffness-matrix", 4 * MB, 0.0),
                MemoryRegion("cg-vectors", 1 * MB, 0.95),
                MemoryRegion("mesh", 512 * 1024, 0.0),
            )
        ),
    )
)
