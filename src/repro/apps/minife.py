"""MiniFE skeleton: unstructured-grid finite-element CG solver.

Per CG iteration: a halo exchange with the 3-D neighbors (MiniFE *does*
use ``MPI_ANY_SOURCE`` for these receives — it knows how many messages
to expect but not their arrival order — so the exchange lives inside a
declared pattern, paper section 6.1: "in MiniFE only one communication
pattern was modified"), then two dot-product allreduces.

The lightest logger in Table 1 (0.5-0.6 MB/s per process at 512
clusters): small faces, fast iterations, < 10% communication time.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import (
    AppSpec,
    mix,
    mix_unordered,
    register,
    resume_acc,
    resume_iteration,
)
from repro.apps.calibration import grid3
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_HALO = 21


def minife_app(
    iters: int = 20,
    face_bytes: int = 4 * 1024,
    compute_ns: int = 25_000_000,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        nx, ny, nz = grid3(ctx.size)
        x = ctx.rank % nx
        y = (ctx.rank // nx) % ny
        z = ctx.rank // (nx * ny)
        neighbors = []
        if x > 0:
            neighbors.append(ctx.rank - 1)
        if x < nx - 1:
            neighbors.append(ctx.rank + 1)
        if y > 0:
            neighbors.append(ctx.rank - nx)
        if y < ny - 1:
            neighbors.append(ctx.rank + nx)
        if z > 0:
            neighbors.append(ctx.rank - nx * ny)
        if z < nz - 1:
            neighbors.append(ctx.rank + nx * ny)

        pattern = ctx.declare_pattern()
        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            # SpMV: halo exchange with anonymous receives (the modified
            # pattern), then local matrix apply.
            ctx.begin_iteration(pattern)
            recvs = [ctx.irecv(src=ANY_SOURCE, tag=TAG_HALO) for _ in neighbors]
            sends = [
                ctx.isend(nb, mix(0, ctx.rank, nb, i), nbytes=face_bytes, tag=TAG_HALO)
                for nb in neighbors
            ]
            statuses = yield from ctx.waitall(recvs)
            yield from ctx.waitall(sends)
            acc = mix_unordered(acc, [s.payload for s in statuses])
            ctx.end_iteration(pattern)
            yield from ctx.compute(compute_ns)
            # Two CG dot products.
            for _ in range(2):
                total = yield from ctx.allreduce(
                    (acc >> 3) & 0xFFFF, lambda a, b: a + b, nbytes=8
                )
                acc = mix(acc, total)
        return acc

    return factory


register(
    AppSpec(
        name="minife",
        factory=minife_app,
        description="finite-element CG solver with ANY_SOURCE halo exchange",
        uses_anysource=True,
        paper_app=True,
        # The assembled stiffness matrix never changes during the solve;
        # only the CG vectors are hot — the strongest delta case.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("stiffness-matrix", 4 * MB, 0.0),
                MemoryRegion("cg-vectors", 1 * MB, 0.95),
                MemoryRegion("mesh", 512 * 1024, 0.0),
            )
        ),
    )
)
