"""BoomerAMG skeleton: algebraic multigrid V-cycles.

The paper's communication-heavy workload (> 50% of time communicating,
section 6.4) and its running example: AMG's assumed-partition exchange
(Figure 4) is *channel-deterministic but not send-deterministic* —
replies go out in arrival order — and three of its patterns use
``MPI_ANY_SOURCE`` (section 6.1: "in AMG three patterns include
MPI_ANY_SOURCE; for each pattern it was enough to enclose the function
that contains it between BEGIN_ITERATION and END_ITERATION").

Structure per V-cycle (down + up through ``levels`` grids):

* fine levels: named-neighbor halo exchange, message size shrinking with
  depth, compute shrinking ~8x per level with deterministic imbalance
  (coarse grids are poorly balanced — the waits are a large part of
  AMG's communication time);
* coarse levels: the Figure-4 exchange with data-dependent *long-range*
  partners (strides across the rank space — this is why AMG's traffic
  does not cluster well, Table 1) via ``MPI_Iprobe(ANY_SOURCE)`` +
  immediate replies.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.apps.base import (
    AppSpec,
    mix,
    mix_unordered,
    register,
    resume_acc,
    resume_iteration,
)
from repro.apps.calibration import det_jitter, grid3
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_HALO = 31
TAG_REQ = 32
TAG_REP = 33

# Long-range partner strides per coarse level (primes, so partners smear
# across the rank space instead of staying near-diagonal).
_STRIDES = [17, 29, 47, 71, 101]


def _fine_neighbors(rank: int, size: int) -> List[int]:
    nx, ny, nz = grid3(size)
    x = rank % nx
    y = (rank // nx) % ny
    z = rank // (nx * ny)
    out = []
    if x > 0:
        out.append(rank - 1)
    if x < nx - 1:
        out.append(rank + 1)
    if y > 0:
        out.append(rank - nx)
    if y < ny - 1:
        out.append(rank + nx)
    if z > 0:
        out.append(rank - nx * ny)
    if z < nz - 1:
        out.append(rank + nx * ny)
    return out


def _coarse_partners(rank: int, size: int, level: int, fanout: int) -> List[int]:
    stride = _STRIDES[level % len(_STRIDES)]
    out = []
    for k in range(1, fanout // 2 + 1):
        out.append((rank + k * stride) % size)
        out.append((rank - k * stride) % size)
    return [p for p in dict.fromkeys(out) if p != rank]


def _vcycle_path(levels: int) -> List[int]:
    """Down sweep then up sweep (coarsest visited once)."""
    return list(range(levels)) + list(range(levels - 2, -1, -1))


def _fold_levels(
    acc: int,
    rank: int,
    cyc: int,
    path: List[int],
    s0: int,
    s1: int,
    fine_levels: int,
    fine_nb: List[int],
    partners_at: Dict[int, List[int]],
) -> int:
    """Fold the exchange contributions of path positions ``[s0, s1)`` of
    cycle ``cyc`` into ``acc`` exactly as the live loop would: fine halo
    payloads in neighbor order, coarse requests order-insensitively
    (``mix_unordered`` — arrival order is data-dependent but the fold is
    commutative, which is what makes the Figure-4 pattern warpable at
    all), coarse replies in partner order."""
    for s in range(s0, s1):
        lvl = path[s]
        if lvl < fine_levels:
            for nb in fine_nb:
                acc = mix(acc, mix(0, nb, rank, cyc, lvl))
        else:
            partners = partners_at[lvl]
            acc = mix_unordered(
                acc, [mix(0, q, rank, cyc, lvl) for q in partners]
            )
            for p in partners:
                acc = mix(acc, mix(0, mix(0, rank, p, cyc, lvl)))
    return acc


#: (size, levels, fine_levels, coarse_fanout) -> (per-rank accumulators
#: after the last tabulated cycle, per-cycle residual allreduce totals).
#: Deterministic and shared by every rank: computed once per geometry,
#: extended on demand.
_TOTALS_CACHE: Dict[
    Tuple[int, int, int, int], Tuple[List[int], List[int]]
] = {}


def _cycle_totals(
    size: int, levels: int, fine_levels: int, coarse_fanout: int, upto: int
) -> List[int]:
    """Residual allreduce totals for cycles ``0..upto-1``, by replaying
    every rank's accumulator analytically.

    This is amg's warp-contract fast-forward state: a jumped rank folds
    these totals (and its own exchange payloads) instead of running the
    skipped V-cycles' communication."""
    key = (size, levels, fine_levels, coarse_fanout)
    accs, totals = _TOTALS_CACHE.setdefault(key, ([0] * size, []))
    if len(totals) < upto:
        path = _vcycle_path(levels)
        npos = len(path)
        fine_nb_of = [_fine_neighbors(r, size) for r in range(size)]
        partners_of: List[Dict[int, List[int]]] = [
            {
                lvl: _coarse_partners(r, size, lvl - fine_levels, coarse_fanout)
                for lvl in range(fine_levels, levels)
            }
            for r in range(size)
        ]
        for j in range(len(totals), upto):
            for r in range(size):
                accs[r] = _fold_levels(
                    accs[r], r, j, path, 0, npos,
                    fine_levels, fine_nb_of[r], partners_of[r],
                )
            total = sum((a >> 7) & 0xFFFF for a in accs)
            for r in range(size):
                accs[r] = mix(accs[r], total)
            totals.append(total)
    return totals


def amg_app(
    cycles: int = 8,
    levels: int = 6,
    fine_levels: int = 3,
    fine_bytes: int = 4096,
    coarse_bytes: int = 384,
    coarse_fanout: int = 6,
    compute_l0_ns: int = 7_000_000,
    imbalance: float = 0.6,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        n = ctx.size
        fine_nb = _fine_neighbors(ctx.rank, n)
        # One declared pattern per coarse level (the paper modified three
        # AMG patterns; with the default levels=6 / fine_levels=3 we also
        # get three).
        coarse_pids = {
            lvl: ctx.declare_pattern() for lvl in range(fine_levels, levels)
        }
        start = resume_iteration(state)
        acc = resume_acc(state)

        def level_compute(lvl: int, cyc: int) -> int:
            base = max(compute_l0_ns >> (3 * lvl), 40_000)
            return int(base * det_jitter(ctx.rank, lvl, cyc, spread=imbalance))

        def fine_exchange(lvl: int, cyc: int):
            nbytes = max(fine_bytes >> (2 * lvl), 64)
            recvs = [ctx.irecv(src=nb, tag=TAG_HALO) for nb in fine_nb]
            sends = [
                ctx.isend(nb, mix(0, ctx.rank, nb, cyc, lvl), nbytes=nbytes, tag=TAG_HALO)
                for nb in fine_nb
            ]
            statuses = yield from ctx.waitall(recvs)
            yield from ctx.waitall(sends)
            return [s.payload for s in statuses]

        def coarse_exchange(lvl: int, cyc: int):
            """Figure-4 pattern: send to data-dependent partners, serve
            incoming requests via Iprobe(ANY_SOURCE) with immediate
            replies, collect own replies."""
            partners = _coarse_partners(ctx.rank, n, lvl - fine_levels, coarse_fanout)
            expected = len(partners)  # symmetric strides: in == out
            pid = coarse_pids[lvl]
            ctx.begin_iteration(pid)
            reply_reqs = [ctx.irecv(src=p, tag=TAG_REP) for p in partners]
            for p in partners:
                ctx.isend(p, mix(0, ctx.rank, p, cyc, lvl), nbytes=coarse_bytes, tag=TAG_REQ)
            served = 0
            payloads = []
            while served < expected:
                flag, status = ctx.iprobe(src=ANY_SOURCE, tag=TAG_REQ)
                if flag:
                    s = yield from ctx.recv(src=status.source, tag=TAG_REQ)
                    # reply order == arrival order: channel-deterministic,
                    # NOT send-deterministic (section 3.4)
                    yield from ctx.send(
                        status.source, mix(0, s.payload), nbytes=coarse_bytes, tag=TAG_REP
                    )
                    payloads.append(s.payload)
                    served += 1
                else:
                    yield from ctx.compute(2_000)
            replies = yield from ctx.waitall(reply_reqs)
            # The AHB boundary between iterations of this pattern (the
            # termination algorithm in the real code).
            yield from ctx.barrier()
            ctx.end_iteration(pid)
            return payloads, [s.payload for s in replies]

        # Warp contract: the periodicity detector may anchor at *any*
        # level compute (a rank inside a coarse exchange vetoes the
        # snapshot through its posted receives, so anchors always sit on
        # a level boundary, before that level's communication).  Each
        # rank therefore consumes ``warp_jump()`` immediately after
        # every level compute and fast-forwards position-aware: the rest
        # of the current cycle, the skipped whole cycles, and the
        # already-executed prefix of the landing cycle are folded
        # analytically before communication resumes with the post-jump
        # cycle index.
        ctx.declare_warpable()
        path = _vcycle_path(levels)
        partners_at = {
            lvl: _coarse_partners(ctx.rank, n, lvl - fine_levels, coarse_fanout)
            for lvl in range(fine_levels, levels)
        }
        npos = len(path)
        cyc = start
        while cyc < cycles:
            yield from ctx.maybe_checkpoint(
                lambda cyc=cyc, acc=acc: {"iter": cyc, "acc": acc}
            )
            s = 0
            while s < npos:
                lvl = path[s]
                yield from ctx.compute(level_compute(lvl, cyc))
                jump = ctx.warp_jump()
                if jump:
                    totals = _cycle_totals(
                        n, levels, fine_levels, coarse_fanout, cyc + jump
                    )
                    acc = _fold_levels(
                        acc, ctx.rank, cyc, path, s, npos,
                        fine_levels, fine_nb, partners_at,
                    )
                    acc = mix(acc, totals[cyc])
                    for j in range(cyc + 1, cyc + jump):
                        acc = _fold_levels(
                            acc, ctx.rank, j, path, 0, npos,
                            fine_levels, fine_nb, partners_at,
                        )
                        acc = mix(acc, totals[j])
                    acc = _fold_levels(
                        acc, ctx.rank, cyc + jump, path, 0, s,
                        fine_levels, fine_nb, partners_at,
                    )
                    cyc += jump
                if lvl < fine_levels:
                    payloads = yield from fine_exchange(lvl, cyc)
                    for p in payloads:
                        acc = mix(acc, p)
                else:
                    got, replies = yield from coarse_exchange(lvl, cyc)
                    acc = mix_unordered(acc, got)
                    for p in replies:
                        acc = mix(acc, p)
                s += 1
            # Residual norm.
            total = yield from ctx.allreduce(
                (acc >> 7) & 0xFFFF, lambda a, b: a + b, nbytes=8
            )
            acc = mix(acc, total)
            cyc += 1
        return acc

    return factory


register(
    AppSpec(
        name="amg",
        factory=amg_app,
        description="algebraic multigrid V-cycles with Fig.4 ANY_SOURCE exchanges",
        uses_anysource=True,
        paper_app=True,
        # The multigrid hierarchy (operators, interpolation) is built in
        # setup and then read-only; V-cycles rewrite only the level
        # vectors.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("hierarchy-ops", 3 * MB, 0.02),
                MemoryRegion("level-vectors", 1536 * 1024, 0.85),
                MemoryRegion("setup", 512 * 1024, 0.0),
            )
        ),
    )
)
