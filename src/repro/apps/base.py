"""App registry and shared helpers for the workload skeletons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.ckptdata.regions import (
    WriteLocalityProfile,
    synthetic_default_profile,
)
from repro.mpi.context import RankContext

AppFactory = Callable[[RankContext, Optional[dict]], Generator]


@dataclass(frozen=True)
class AppSpec:
    """A registered workload.

    ``factory(**params)`` returns an app factory with the harness
    signature ``app(ctx, state=None)``; parameters default to the
    paper-calibrated problem size scaled for simulation.
    """

    name: str
    factory: Callable[..., AppFactory]
    description: str
    uses_anysource: bool
    paper_app: bool = False  # one of the six §6.1 applications
    nas_app: bool = False  # one of the §6.5 NAS benchmarks
    # Per-rank checkpointable state as memory regions with per-iteration
    # dirty fractions (drives the incremental checkpoint data plane and
    # the harness's modeled checkpoint sizes).  None falls back to the
    # synthetic default profile — every registered app therefore has a
    # *nonzero* modeled payload.
    write_locality: Optional[WriteLocalityProfile] = None

    @property
    def profile(self) -> WriteLocalityProfile:
        """The app's write-locality profile (synthetic default when the
        module didn't calibrate one)."""
        return self.write_locality or synthetic_default_profile()


_REGISTRY: Dict[str, AppSpec] = {}


def register(spec: AppSpec) -> AppSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"app {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_app(name: str) -> AppSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_apps(paper_only: bool = False, nas_only: bool = False) -> List[AppSpec]:
    specs = list(_REGISTRY.values())
    if paper_only:
        specs = [s for s in specs if s.paper_app]
    if nas_only:
        specs = [s for s in specs if s.nas_app]
    return sorted(specs, key=lambda s: s.name)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def resume_iteration(state: Optional[dict]) -> int:
    """First iteration to run (0 for a fresh start)."""
    return 0 if state is None else int(state["iter"])


def resume_acc(state: Optional[dict], default: int = 0) -> int:
    """Restored application checksum accumulator."""
    return default if state is None else int(state["acc"])


def mix(acc: int, *values: int) -> int:
    """Deterministic order-sensitive checksum fold (64-bit).

    Used by every app to produce a final value that differs if any
    message payload or delivery order changed — the recovery-correctness
    oracle."""
    for v in values:
        acc = (acc * 1_000_003 + (v & 0xFFFFFFFFFFFFFFFF)) & 0xFFFFFFFFFFFFFFFF
    return acc


def mix_unordered(acc: int, values) -> int:
    """Checksum fold insensitive to the order of ``values`` (for receive
    sets whose arrival order is legitimately nondeterministic)."""
    total = 0
    for v in values:
        total ^= (v * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    return mix(acc, total)
