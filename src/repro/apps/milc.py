"""MILC skeleton: SU(3) lattice QCD on a 4-D torus.

8x8x8x8 sites per rank (the paper's problem size); the conjugate-
gradient inner loop exchanges lattice faces with the 8 torus neighbors
(2 per dimension).  MILC's gathers complete with ``MPI_ANY_SOURCE``
receives, so the halo lives in a declared pattern; the CG residual
allreduce provides the AHB boundary between iterations.

The 4-D torus is fully symmetric — every rank sends the same volume —
which is why Table 1 shows Avg == Max for MILC at almost every cluster
count.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.apps.base import (
    AppSpec,
    mix,
    mix_unordered,
    register,
    resume_acc,
    resume_iteration,
)
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_GATHER = 51


def _grid4(n: int) -> List[int]:
    """Near-hypercubic 4-D factorization."""
    dims = [1, 1, 1, 1]
    rem = n
    for i in range(4):
        target = round(rem ** (1 / (4 - i)))
        d = max(1, target)
        while rem % d:
            d -= 1
        dims[i] = d
        rem //= d
    dims[3] *= rem if rem > 1 else 1
    return dims


def _torus_neighbors(rank: int, size: int) -> List[int]:
    """The 4-D torus gather partners on the ``_grid4`` factorization
    (2 per dimension with extent > 1, wrap-around duplicates folded)."""
    dims = _grid4(size)
    coords = []
    r = rank
    for d in dims:
        coords.append(r % d)
        r //= d

    def rank_of(cs: List[int]) -> int:
        out = 0
        mult = 1
        for c, d in zip(cs, dims):
            out += (c % d) * mult
            mult *= d
        return out

    neighbors = []
    for axis, d in enumerate(dims):
        if d == 1:
            continue
        for step in (+1, -1):
            cs = list(coords)
            cs[axis] += step
            nb = rank_of(cs)
            if nb != rank:
                neighbors.append(nb)
    return list(dict.fromkeys(neighbors))


#: size -> (per-rank accumulators after the last tabulated iteration,
#: per-iteration CG-residual allreduce totals).  Deterministic and
#: shared by every rank: computed once per world size, extended on
#: demand.
_TOTALS_CACHE: Dict[int, Tuple[List[int], List[int]]] = {}


def _allreduce_totals(size: int, upto: int) -> List[int]:
    """CG-residual allreduce totals for iterations ``0..upto-1``, by
    replaying every rank's accumulator analytically.

    This is milc's warp-contract fast-forward state: a jumped rank folds
    these totals (and its torus neighbors' gather payloads) instead of
    exchanging the skipped iterations' messages.  Valid only for runs
    that started from iteration 0 — exactly the failure-free phases warp
    is allowed to engage in."""
    accs, totals = _TOTALS_CACHE.setdefault(size, ([0] * size, []))
    if len(totals) < upto:
        neighbors_of = [_torus_neighbors(r, size) for r in range(size)]
        for j in range(len(totals), upto):
            for r in range(size):
                accs[r] = mix_unordered(
                    accs[r], [mix(0, n, r, j) for n in neighbors_of[r]]
                )
            total = sum((a >> 11) & 0xFFFF for a in accs)
            for r in range(size):
                accs[r] = mix(accs[r], total)
            totals.append(total)
    return totals


def milc_app(
    iters: int = 12,
    face_bytes: int = 6 * 1024,
    compute_ns: int = 80_000_000,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        me = ctx.rank
        neighbors = _torus_neighbors(me, ctx.size)

        pattern = ctx.declare_pattern()
        start = resume_iteration(state)
        acc = resume_acc(state)
        # Warp contract (repro.sim.warp): the CG compute *leads* the
        # iteration, so the quiescent anchor sits before any of
        # iteration i's communication — a granted jump of K replays K
        # whole iterations (gather fold + residual total per skipped j)
        # and lands at the same pre-gather point of iteration i+K.
        ctx.declare_warpable()
        i = start
        while i < iters:
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            yield from ctx.compute(compute_ns)
            jump = ctx.warp_jump()
            if jump:
                totals = _allreduce_totals(ctx.size, i + jump)
                for j in range(i, i + jump):
                    acc = mix_unordered(
                        acc, [mix(0, nb, me, j) for nb in neighbors]
                    )
                    acc = mix(acc, totals[j])
                i += jump
            if neighbors:
                ctx.begin_iteration(pattern)
                recvs = [ctx.irecv(src=ANY_SOURCE, tag=TAG_GATHER) for _ in neighbors]
                sends = [
                    ctx.isend(nb, mix(0, me, nb, i), nbytes=face_bytes, tag=TAG_GATHER)
                    for nb in neighbors
                ]
                statuses = yield from ctx.waitall(recvs)
                yield from ctx.waitall(sends)
                acc = mix_unordered(acc, [s.payload for s in statuses])
                ctx.end_iteration(pattern)
            # CG residual: the global AHB boundary.
            total = yield from ctx.allreduce(
                (acc >> 11) & 0xFFFF, lambda a, b: a + b, nbytes=8
            )
            acc = mix(acc, total)
            i += 1
        return acc

    return factory


register(
    AppSpec(
        name="milc",
        factory=milc_app,
        description="lattice QCD CG on a 4-D torus with ANY_SOURCE gathers",
        uses_anysource=True,
        paper_app=True,
        # CG iterations churn the fermion vectors; the gauge links are
        # read-mostly between trajectories — the classic incremental win.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("gauge-links", 4 * MB, 0.05),
                MemoryRegion("fermion-vectors", 2 * MB, 0.9),
                MemoryRegion("tables", 1 * MB, 0.0),
            )
        ),
    )
)
