"""MILC skeleton: SU(3) lattice QCD on a 4-D torus.

8x8x8x8 sites per rank (the paper's problem size); the conjugate-
gradient inner loop exchanges lattice faces with the 8 torus neighbors
(2 per dimension).  MILC's gathers complete with ``MPI_ANY_SOURCE``
receives, so the halo lives in a declared pattern; the CG residual
allreduce provides the AHB boundary between iterations.

The 4-D torus is fully symmetric — every rank sends the same volume —
which is why Table 1 shows Avg == Max for MILC at almost every cluster
count.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.apps.base import (
    AppSpec,
    mix,
    mix_unordered,
    register,
    resume_acc,
    resume_iteration,
)
from repro.ckptdata.regions import MemoryRegion, WriteLocalityProfile
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.context import RankContext
from repro.util.units import MB

TAG_GATHER = 51


def _grid4(n: int) -> List[int]:
    """Near-hypercubic 4-D factorization."""
    dims = [1, 1, 1, 1]
    rem = n
    for i in range(4):
        target = round(rem ** (1 / (4 - i)))
        d = max(1, target)
        while rem % d:
            d -= 1
        dims[i] = d
        rem //= d
    dims[3] *= rem if rem > 1 else 1
    return dims


def milc_app(
    iters: int = 12,
    face_bytes: int = 6 * 1024,
    compute_ns: int = 80_000_000,
):
    def factory(ctx: RankContext, state: Optional[dict] = None) -> Generator:
        n = ctx.size
        dims = _grid4(n)
        coords = []
        r = ctx.rank
        for d in dims:
            coords.append(r % d)
            r //= d

        def rank_of(cs: List[int]) -> int:
            out = 0
            mult = 1
            for c, d in zip(cs, dims):
                out += (c % d) * mult
                mult *= d
            return out

        neighbors = []
        for axis, d in enumerate(dims):
            if d == 1:
                continue
            for step in (+1, -1):
                cs = list(coords)
                cs[axis] += step
                nb = rank_of(cs)
                if nb != ctx.rank:
                    neighbors.append(nb)
        neighbors = list(dict.fromkeys(neighbors))

        pattern = ctx.declare_pattern()
        start = resume_iteration(state)
        acc = resume_acc(state)
        for i in range(start, iters):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            yield from ctx.compute(compute_ns)
            if neighbors:
                ctx.begin_iteration(pattern)
                recvs = [ctx.irecv(src=ANY_SOURCE, tag=TAG_GATHER) for _ in neighbors]
                sends = [
                    ctx.isend(nb, mix(0, ctx.rank, nb, i), nbytes=face_bytes, tag=TAG_GATHER)
                    for nb in neighbors
                ]
                statuses = yield from ctx.waitall(recvs)
                yield from ctx.waitall(sends)
                acc = mix_unordered(acc, [s.payload for s in statuses])
                ctx.end_iteration(pattern)
            # CG residual: the global AHB boundary.
            total = yield from ctx.allreduce(
                (acc >> 11) & 0xFFFF, lambda a, b: a + b, nbytes=8
            )
            acc = mix(acc, total)
        return acc

    return factory


register(
    AppSpec(
        name="milc",
        factory=milc_app,
        description="lattice QCD CG on a 4-D torus with ANY_SOURCE gathers",
        uses_anysource=True,
        paper_app=True,
        # CG iterations churn the fermion vectors; the gauge links are
        # read-mostly between trajectories — the classic incremental win.
        write_locality=WriteLocalityProfile(
            regions=(
                MemoryRegion("gauge-links", 4 * MB, 0.05),
                MemoryRegion("fermion-vectors", 2 * MB, 0.9),
                MemoryRegion("tables", 1 * MB, 0.0),
            )
        ),
    )
)
