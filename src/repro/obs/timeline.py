"""Timeline recorder emitting Chrome trace-event JSON.

Events are buffered as plain dicts in engine nanoseconds and converted
to the Chrome trace-event format (microsecond ``ts``/``dur``) by
:meth:`TimelineRecorder.to_chrome`; the result loads directly in
Perfetto or ``chrome://tracing``.

Lane layout (trace-event ``pid`` groups, ``tid`` rows):

====================  ====================================================
pid                   rows
====================  ====================================================
``PID_RANKS`` (1)     one row per simulated rank: ``compute`` /
                      ``mpi-wait`` / ``checkpoint`` / ``ckpt-write`` /
                      ``restart`` / ``restart-read`` spans, ``failure`` /
                      ``gc`` instants
``PID_ENGINE`` (2)    one row per shard (row 0 sequentially): the
                      ``queue depth`` counter sampled from the event heap
``PID_STORAGE`` (3)   one row per tier lane: per-flow read/write spans
                      and the ``occupancy`` counter (active flows)
``PID_SHARDS`` (4)    one row per PDES shard: YAWNS ``window`` grants and
                      ``barrier-wait`` gaps
====================  ====================================================

Rows inside ``PID_RANKS``/``PID_ENGINE``/``PID_SHARDS`` use the rank or
shard id as the ``tid`` directly; storage lanes hash their label to a
stable ``tid`` (:func:`stable_tid`) so independently recording shard
workers agree on row identity when the coordinator merges their
buffers.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple

PID_RANKS = 1
PID_ENGINE = 2
PID_STORAGE = 3
PID_SHARDS = 4

_PID_NAMES = {
    PID_RANKS: "ranks",
    PID_ENGINE: "engine",
    PID_STORAGE: "storage",
    PID_SHARDS: "shards",
}


def stable_tid(label: str) -> int:
    """A deterministic, process-independent row id for a named lane."""
    return zlib.crc32(label.encode()) & 0x3FFF


class TimelineRecorder:
    """Buffers lane events; converts/merges into Chrome trace JSON."""

    __slots__ = ("events", "tracks")

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        # (pid, tid) -> human row label, for thread_name metadata.
        self.tracks: Dict[Tuple[int, int], str] = {}

    # ------------------------------------------------------------------
    def track(self, pid: int, tid: int, label: str) -> None:
        self.tracks[(pid, tid)] = label

    def span(
        self,
        name: str,
        pid: int,
        tid: int,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        ev: Dict[str, Any] = {
            "ph": "X",
            "name": name,
            "pid": pid,
            "tid": tid,
            "ts_ns": start_ns,
            "dur_ns": max(0, end_ns - start_ns),
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def instant(
        self,
        name: str,
        pid: int,
        tid: int,
        t_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        ev: Dict[str, Any] = {
            "ph": "i",
            "name": name,
            "pid": pid,
            "tid": tid,
            "ts_ns": t_ns,
            "s": "t",
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def counter(
        self,
        name: str,
        pid: int,
        tid: int,
        t_ns: int,
        values: Dict[str, float],
    ) -> None:
        self.events.append(
            {
                "ph": "C",
                "name": name,
                "pid": pid,
                "tid": tid,
                "ts_ns": t_ns,
                "args": dict(values),
            }
        )

    # ------------------------------------------------------------------
    def export(self) -> Dict[str, Any]:
        """Picklable buffer (shard workers ship this to the coordinator)."""
        return {
            "events": self.events,
            "tracks": [[pid, tid, label] for (pid, tid), label in self.tracks.items()],
        }

    def merge(self, exported: Dict[str, Any]) -> None:
        self.events.extend(exported.get("events", ()))
        for pid, tid, label in exported.get("tracks", ()):
            self.tracks[(pid, tid)] = label

    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event document (``traceEvents`` container).

        Events are sorted by a total key so the document is byte-stable
        regardless of the order shard buffers were merged in.
        """
        out: List[Dict[str, Any]] = []
        seen: Dict[Tuple[int, int], str] = {}
        for pid, name in _PID_NAMES.items():
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
            out.append(
                {
                    "ph": "M",
                    "name": "process_sort_index",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        for ev in self.events:
            key = (ev["pid"], ev["tid"])
            if key not in seen:
                seen[key] = self.tracks.get(key) or _default_row_label(*key)
        for (pid, tid) in sorted(seen):
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": seen[(pid, tid)]},
                }
            )
        body = []
        for ev in self.events:
            ce = {k: v for k, v in ev.items() if k not in ("ts_ns", "dur_ns")}
            ce["ts"] = ev["ts_ns"] / 1e3
            if "dur_ns" in ev:
                ce["dur"] = ev["dur_ns"] / 1e3
            body.append(ce)
        body.sort(
            key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"], e["name"])
        )
        out.extend(body)
        return {"traceEvents": out, "displayTimeUnit": "ms"}


def _default_row_label(pid: int, tid: int) -> str:
    if pid == PID_RANKS:
        return f"rank {tid}"
    if pid in (PID_ENGINE, PID_SHARDS):
        return f"shard {tid}"
    return f"lane {tid}"
