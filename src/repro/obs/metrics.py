"""Label-aware metrics registry with snapshot/merge semantics.

Counters, gauges, and timing-span accumulators, each addressed by a
``name`` plus optional key=value labels.  Keys are canonicalized to
``name{k=v,...}`` (labels sorted), so the same logical series produced
by different call sites — or by different shard worker processes —
lands in the same slot.

The registry is deliberately dumb about time: callers pass durations
they measured on the simulation clock.  Aggregation across processes
works through :meth:`snapshot` (a plain JSON-able dict that survives a
pickle through the shard worker pipes) and :meth:`merge` on the
coordinator side:

* counters add,
* gauges keep the last value per contributor and the max across all
  contributors (the merged "last" is the max of lasts — there is no
  meaningful global "last" across concurrent shards),
* spans add both the invocation count and the total duration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.util.table import format_table


def series_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters / gauges / span accumulators with snapshot + merge."""

    __slots__ = ("counters", "gauges", "gauge_max", "spans")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.gauge_max: Dict[str, float] = {}
        # key -> [count, total_ns]
        self.spans: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1, **labels: Any) -> None:
        key = series_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = series_key(name, labels)
        self.gauges[key] = value
        prev = self.gauge_max.get(key)
        if prev is None or value > prev:
            self.gauge_max[key] = value

    def span_add(self, name: str, dur_ns: int, **labels: Any) -> None:
        key = series_key(name, labels)
        slot = self.spans.get(key)
        if slot is None:
            self.spans[key] = [1, dur_ns]
        else:
            slot[0] += 1
            slot[1] += dur_ns

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view, safe to pickle/JSON and to merge elsewhere."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "gauge_max": dict(self.gauge_max),
            "spans": {k: list(v) for k, v in self.spans.items()},
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for k, v in snap.get("counters", {}).items():
            self.counters[k] = self.counters.get(k, 0) + v
        for k, v in snap.get("gauges", {}).items():
            if k not in self.gauges or v > self.gauges[k]:
                self.gauges[k] = v
        for k, v in snap.get("gauge_max", {}).items():
            if k not in self.gauge_max or v > self.gauge_max[k]:
                self.gauge_max[k] = v
        for k, v in snap.get("spans", {}).items():
            slot = self.spans.get(k)
            if slot is None:
                self.spans[k] = list(v)
            else:
                slot[0] += v[0]
                slot[1] += v[1]


def format_metrics(snap: Dict[str, Any]) -> str:
    """Render a metrics snapshot as ``util.table`` tables.

    One table per series family (counters / gauges / spans), rows sorted
    by series key, so the output is stable and machine-greppable —
    ``grep 'spbc.commits'`` finds the same column layout every run.
    """
    parts: List[str] = []
    counters = snap.get("counters", {})
    if counters:
        parts.append(
            format_table(
                ["counter", "value"],
                [[k, counters[k]] for k in sorted(counters)],
                title="Counters",
            )
        )
    gauges = snap.get("gauges", {})
    if gauges:
        gmax = snap.get("gauge_max", {})
        parts.append(
            format_table(
                ["gauge", "last", "max"],
                [[k, gauges[k], gmax.get(k, gauges[k])] for k in sorted(gauges)],
                title="Gauges",
            )
        )
    spans = snap.get("spans", {})
    if spans:
        rows = []
        for k in sorted(spans):
            count, total_ns = spans[k]
            mean_us = (total_ns / count / 1e3) if count else 0.0
            rows.append([k, count, total_ns / 1e6, mean_us])
        parts.append(
            format_table(
                ["span", "count", "total_ms", "mean_us"],
                rows,
                title="Timing spans",
            )
        )
    if not parts:
        return "(no metrics recorded)"
    return "\n\n".join(parts)


def snapshot_overview(snap: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The headline numbers simperf and the CLI attach to run rows."""
    if not snap:
        return {}
    out: Dict[str, Any] = {}
    peak = snap.get("gauge_max", {}).get("engine.queue_depth")
    if peak is not None:
        out["peak_queue_depth"] = int(peak)
    return out
