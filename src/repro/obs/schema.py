"""Structural validator for Chrome trace-event JSON documents.

Chrome's trace-event format has no official JSON Schema; viewers are
famously tolerant.  This checker enforces the subset the repo's
:mod:`repro.obs.timeline` emits — the tests gate on it so a refactor
cannot silently start producing documents Perfetto renders as garbage.

``validate_chrome_trace`` returns a list of human-readable problems
(empty = valid), so a test can assert ``== []`` and get the full defect
list in the failure message.
"""

from __future__ import annotations

from numbers import Number
from typing import Any, Dict, List

#: Event phases the repo emits: complete spans, instants, counters,
#: metadata.
KNOWN_PHASES = ("X", "i", "C", "M")

_REQUIRED = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts"),
    "C": ("name", "pid", "tid", "ts", "args"),
    "M": ("name", "pid", "args"),
}

_METADATA_NAMES = ("process_name", "process_sort_index", "thread_name")


def validate_chrome_trace(doc: Any, max_problems: int = 20) -> List[str]:
    """Check a trace document; returns problems (empty list = valid)."""
    problems: List[str] = []

    def bad(msg: str) -> bool:
        problems.append(msg)
        return len(problems) >= max_problems

    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            if bad(f"event {i}: not an object"):
                return problems
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            if bad(f"event {i}: unknown phase {ph!r}"):
                return problems
            continue
        for key in _REQUIRED[ph]:
            if key not in ev:
                if bad(f"event {i} (ph={ph}, name={ev.get('name')!r}): missing {key!r}"):
                    return problems
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            if bad(f"event {i}: name must be a non-empty string"):
                return problems
        for key in ("ts", "dur"):
            if key in ev and (
                not isinstance(ev[key], Number) or ev[key] < 0
            ):
                if bad(f"event {i} ({name!r}): {key} must be a number >= 0"):
                    return problems
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                if bad(f"event {i} ({name!r}): {key} must be an integer"):
                    return problems
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                if bad(f"event {i} ({name!r}): counter args must be a non-empty object"):
                    return problems
            elif not all(isinstance(v, Number) for v in args.values()):
                if bad(f"event {i} ({name!r}): counter values must be numbers"):
                    return problems
        if ph == "M":
            if name not in _METADATA_NAMES:
                if bad(f"event {i}: unknown metadata record {name!r}"):
                    return problems
            elif not isinstance(ev.get("args"), dict):
                if bad(f"event {i} ({name!r}): metadata args must be an object"):
                    return problems
    return problems


def trace_lane_counts(doc: Dict[str, Any]) -> Dict[str, int]:
    """Event counts per process-group lane — the CLI's trace summary."""
    names: Dict[int, str] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            names[ev["pid"]] = ev["args"].get("name", str(ev["pid"]))
    counts: Dict[str, int] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") == "M":
            continue
        lane = names.get(ev.get("pid"), str(ev.get("pid")))
        counts[lane] = counts.get(lane, 0) + 1
    return counts
