"""Run telemetry: metrics registry + Chrome-trace timeline recording.

The subsystem is **zero-overhead when disabled**: every instrumented
hot path in the engine, runtime, protocol, recovery, and storage layers
holds a reference to a telemetry object and guards its calls with the
``enabled`` flag.  When telemetry is off that reference is the shared
:data:`NULL_TELEMETRY` null object (``enabled=False``), so the cost is
one attribute load and a false branch — no method call, no allocation,
no event.  ``tests/obs/test_telemetry_off.py`` enforces this with a
counting probe (zero telemetry method invocations across a full
failure/recovery run when disabled) and with bit-identity checks.

When enabled, recording is **observation-only**: spans and counters
read the simulation clock and engine state but never mutate them, and
the optional queue-depth sampler schedules only self-rescheduling
no-op events — so a telemetry-on run produces the same observables
(makespan, results, commit history, journal stream) as a telemetry-off
run, which the replay-strict tests pin.

Entry points accept ``telemetry=`` specs resolved by
:func:`resolve_telemetry`:

* ``None``/``False`` — off (:data:`NULL_TELEMETRY`),
* ``True``/``"full"`` — metrics + timeline,
* ``"metrics"`` — metrics only (no timeline buffers),
* a :class:`Telemetry` instance — used as-is (callers pre-configure the
  shard id or sampler interval this way).

See ``docs/observability.md`` for the metric catalog and lane layout.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import (
    MetricsRegistry,
    format_metrics,
    snapshot_overview,
)
from repro.obs.timeline import (
    PID_ENGINE,
    PID_RANKS,
    PID_SHARDS,
    PID_STORAGE,
    TimelineRecorder,
    stable_tid,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "resolve_telemetry",
    "MetricsRegistry",
    "TimelineRecorder",
    "format_metrics",
    "snapshot_overview",
    "PID_RANKS",
    "PID_ENGINE",
    "PID_STORAGE",
    "PID_SHARDS",
]

#: Default sampling period of the event-queue depth counter (engine ns).
QUEUE_SAMPLE_INTERVAL_NS = 250_000


class Telemetry:
    """Live telemetry sink: a metrics registry plus (optionally) a
    timeline recorder, with the lane-aware helpers the instrumented
    layers call."""

    enabled = True

    def __init__(
        self,
        metrics: bool = True,
        timeline: bool = True,
        shard: int = 0,
        sample_queue: bool = True,
        queue_sample_interval_ns: int = QUEUE_SAMPLE_INTERVAL_NS,
    ) -> None:
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.timeline: Optional[TimelineRecorder] = (
            TimelineRecorder() if timeline else None
        )
        self.shard = shard
        self.sample_queue = sample_queue
        self.queue_sample_interval_ns = queue_sample_interval_ns

    # -- metrics passthrough -------------------------------------------
    def inc(self, name: str, value: int = 1, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name, value, **labels)

    # -- rank lanes ----------------------------------------------------
    def rank_span(
        self,
        name: str,
        rank: int,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self.timeline is not None:
            self.timeline.span(name, PID_RANKS, rank, start_ns, end_ns, args)
        if self.metrics is not None:
            self.metrics.span_add(f"rank.{name}", end_ns - start_ns)

    def rank_instant(
        self,
        name: str,
        rank: int,
        t_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self.timeline is not None:
            self.timeline.instant(name, PID_RANKS, rank, t_ns, args)

    # -- shard lanes ---------------------------------------------------
    def shard_span(
        self,
        name: str,
        shard: int,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self.timeline is not None:
            self.timeline.span(name, PID_SHARDS, shard, start_ns, end_ns, args)
        if self.metrics is not None:
            self.metrics.span_add(f"shard.{name}", end_ns - start_ns)

    # -- engine lane ---------------------------------------------------
    def queue_depth(self, t_ns: int, depth: int) -> None:
        if self.metrics is not None:
            self.metrics.gauge("engine.queue_depth", depth)
        if self.timeline is not None:
            self.timeline.counter(
                "queue depth", PID_ENGINE, self.shard, t_ns, {"events": depth}
            )

    def start_queue_sampler(self, engine) -> None:
        """Schedule the self-rescheduling queue-depth sampler.

        The sampler re-arms only while the queue holds *other* events
        (its own entry is already popped when it fires), so it never
        keeps an otherwise-drained engine alive: ``run()`` still
        terminates, deadlock detection still fires, and a shard worker
        still reports ``next_ns=None`` once its real work is done.
        """
        if not self.sample_queue or (
            self.metrics is None and self.timeline is None
        ):
            return
        interval = self.queue_sample_interval_ns

        def _sample() -> None:
            depth = engine.pending_events
            self.queue_depth(engine.now, depth)
            if depth:
                engine.schedule_fast(interval, _sample)

        engine.schedule_fast(0, _sample)

    # -- storage lanes -------------------------------------------------
    def storage_span(
        self,
        name: str,
        lane: str,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self.timeline is not None:
            tid = stable_tid(lane)
            self.timeline.track(PID_STORAGE, tid, lane)
            self.timeline.span(name, PID_STORAGE, tid, start_ns, end_ns, args)
        if self.metrics is not None:
            self.metrics.span_add(f"storage.{name}", end_ns - start_ns)

    def storage_level(self, lane: str, t_ns: int, level: int) -> None:
        if self.timeline is not None:
            tid = stable_tid(lane)
            self.timeline.track(PID_STORAGE, tid, lane)
            self.timeline.counter(
                "occupancy", PID_STORAGE, tid, t_ns, {"flows": level}
            )

    # -- aggregation ---------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable view of everything recorded (shard -> coordinator)."""
        return {
            "metrics": self.metrics.snapshot() if self.metrics else None,
            "timeline": self.timeline.export() if self.timeline else None,
        }

    def merge_snapshot(self, snap: Optional[Dict[str, Any]]) -> None:
        if not snap:
            return
        if self.metrics is not None and snap.get("metrics"):
            self.metrics.merge(snap["metrics"])
        if self.timeline is not None and snap.get("timeline"):
            self.timeline.merge(snap["timeline"])

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot() if self.metrics else {}

    def to_chrome(self) -> Dict[str, Any]:
        if self.timeline is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return self.timeline.to_chrome()


class _NullTelemetry:
    """The disabled-telemetry null object (shared singleton).

    Instrumented code never calls methods on it — every call site is
    gated on ``enabled`` — but the methods exist as no-ops so an
    unguarded call is a silent miss rather than a crash (the probe test
    is what keeps call sites honest)."""

    __slots__ = ()

    enabled = False
    metrics = None
    timeline = None
    shard = 0
    sample_queue = False

    def inc(self, *a: Any, **kw: Any) -> None:
        pass

    def gauge(self, *a: Any, **kw: Any) -> None:
        pass

    def rank_span(self, *a: Any, **kw: Any) -> None:
        pass

    def rank_instant(self, *a: Any, **kw: Any) -> None:
        pass

    def shard_span(self, *a: Any, **kw: Any) -> None:
        pass

    def queue_depth(self, *a: Any, **kw: Any) -> None:
        pass

    def start_queue_sampler(self, engine) -> None:
        pass

    def storage_span(self, *a: Any, **kw: Any) -> None:
        pass

    def storage_level(self, *a: Any, **kw: Any) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge_snapshot(self, snap) -> None:
        pass

    def metrics_snapshot(self) -> Dict[str, Any]:
        return {}

    def to_chrome(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


NULL_TELEMETRY = _NullTelemetry()


def resolve_telemetry(spec: Any):
    """Resolve a runner's ``telemetry=`` argument (see module docstring)."""
    if spec is None or spec is False:
        return NULL_TELEMETRY
    if isinstance(spec, (Telemetry, _NullTelemetry)):
        return spec
    if spec is True or spec == "full":
        return Telemetry()
    if spec == "metrics":
        return Telemetry(timeline=False)
    raise ValueError(
        f"telemetry= accepts None/True/'full'/'metrics' or a Telemetry "
        f"instance, got {spec!r}"
    )
