"""Journal -> timeline converter: render a trace without re-simulating.

A committed journal already contains the observable protocol timeline
(commits with taken/committed instants, gc notices, failures with their
blast radius, completed restarts), so a Chrome trace can be *projected*
from it — the Event Replay pattern from :mod:`repro.journal.project`,
applied to visualization.  The reconstruction is coarser than a live
:class:`repro.obs.Telemetry` recording (no compute/MPI-wait spans, no
engine or storage lanes — the journal never recorded those), but it
turns ``tests/data/golden.journal`` into a Perfetto-loadable file in
milliseconds, which is what the nightly CI artifact and the
``python -m repro trace`` subcommand do.

Span reconstruction:

* ``commit`` events become per-rank ``checkpoint`` spans from the
  checkpoint's ``taken_at`` instant (``t``) to ``committed_at_ns``.
* ``failure``/``restart`` pairs become per-rank ``restart`` spans: a
  failure remembers its killed ranks per cluster, and the cluster's
  next completed restart closes the span for each of them.
* ``gc`` and ``finish`` events become instants; failures are instants
  on every killed rank at the moment of impact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.journal.format import Journal
from repro.obs import Telemetry


def timeline_from_journal(journal: Journal) -> Telemetry:
    """Project a journal's canonical events into a telemetry timeline.

    Designed as a ``project()`` metric function:
    ``project(path, timeline_from_journal)`` loads and converts.  Works
    on torn journals too (folds over whatever events exist).
    """
    tele = Telemetry(sample_queue=False)
    open_failures: Dict[int, Tuple[int, List[int]]] = {}
    for ev in journal.canonical_events():
        kind = ev["k"]
        t = ev["t"]
        if kind == "commit":
            end = ev.get("committed_at_ns", t)
            tele.rank_span(
                "checkpoint",
                ev["rank"],
                t,
                end,
                args={
                    "round": ev.get("round"),
                    "nbytes": ev.get("nbytes"),
                    "durable": ev.get("durable"),
                },
            )
            tele.inc("spbc.commits")
            tele.inc("spbc.ckpt_bytes", ev.get("nbytes", 0))
        elif kind == "gc":
            tele.rank_instant(
                "gc", ev["rank"], t, args={"round": ev.get("round")}
            )
            tele.inc("spbc.gc_notices", ev.get("peers", 1))
        elif kind == "failure":
            killed = list(ev.get("killed_ranks") or [ev.get("rank")])
            for r in killed:
                tele.rank_instant(
                    "failure",
                    r,
                    t,
                    args={
                        "kind": ev.get("failure_kind"),
                        "cluster": ev.get("cluster"),
                    },
                )
            # The earliest open failure of a cluster anchors its restart
            # span (a failure superseded before its restart ran extends
            # the window — same convention as projections.downtime_ns).
            cluster = ev.get("cluster")
            if cluster in open_failures:
                open_failures[cluster][1].extend(killed)
            else:
                open_failures[cluster] = (t, killed)
            tele.inc("recovery.failures")
        elif kind == "restart":
            cluster = ev.get("cluster")
            fell = open_failures.pop(cluster, None)
            if fell is not None:
                t_fail, killed = fell
                for r in sorted(set(killed)):
                    tele.rank_span(
                        "restart",
                        r,
                        t_fail,
                        t,
                        args={
                            "round": ev.get("round"),
                            "tier": ev.get("tier"),
                        },
                    )
            tele.inc("recovery.restarts")
        elif kind == "finish":
            tele.rank_instant("finish", ev["rank"], t)
    return tele


def chrome_trace_from_journal(journal: Any) -> Dict[str, Any]:
    """Load (if needed) and convert a journal to a Chrome trace dict."""
    from repro.journal.project import project

    return project(journal, timeline_from_journal).to_chrome()
