"""Event-driven storage I/O: tier transfers expressed as flows.

The closed-form tier models in :mod:`repro.storage.model` price a
transfer with ``bandwidth / concurrent_writers`` computed at the call
site — so staggering has to *assume* perfect de-confliction and nothing
can overlap compute.  The :class:`IOScheduler` turns each tier into a
pair of :class:`~repro.sim.resources.BandwidthResource` objects (write
side and read side, honoring a tier's asymmetric read bandwidth) on the
simulation engine, so concurrent checkpoint flushes, restart reads, and
partner-rebuild copies genuinely share the medium and re-share it as
flows start and finish.

Used by :class:`~repro.storage.backend.TieredBackend` for

* **async checkpoint flushes** (``--storage ...:async``): the shared
  durable tier's copy drains in the background overlapping compute;
* **overlapped restart reads**: each rank reads its delta chain as a
  pipeline of read flows + decompression stages (:class:`ChainRead`),
  with every rank's pipeline in flight concurrently;
* **partner rebuild**: re-replication flows after a failed node returns.

By default a tier's read and write sides are separate resources, so
restart reads do not steal bandwidth from an in-flight flush on the same
tier (the common modeling of PFS read/write lanes, and the only sound
choice when the tier declares an asymmetric read bandwidth).  Tiers
built with ``StorageTier(unified_lane=True)`` instead share ONE lane
between directions: a restore read slows a draining flush and vice
versa, processor-sharing-exact across the mixed flow set.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Engine, EventHandle
from repro.sim.resources import BandwidthResource, Flow
from repro.storage.model import StorageTier


class IOScheduler:
    """Per-tier bandwidth resources plus flow bookkeeping."""

    def __init__(self, engine: Engine, tiers: Sequence[StorageTier]) -> None:
        self.engine = engine
        self._tiers: Dict[str, StorageTier] = {}
        self._write: Dict[str, BandwidthResource] = {}
        self._read: Dict[str, BandwidthResource] = {}
        # Every distinct lane by resource name ("pfs.write", "pfs.read",
        # ...) — the key space of the cross-shard flow records.
        self._lanes: Dict[str, BandwidthResource] = {}
        for t in tiers:
            self._tiers[t.name] = t
            self._write[t.name] = BandwidthResource(
                engine,
                f"{t.name}.write",
                t.bandwidth_bytes_per_s,
                shared=t.shared,
            )
            if t.unified_lane:
                # One lane for both directions: restart reads and
                # in-flight flushes genuinely contend for the same
                # bandwidth (ROADMAP follow-up from PR 4).
                self._read[t.name] = self._write[t.name]
            else:
                self._read[t.name] = BandwidthResource(
                    engine,
                    f"{t.name}.read",
                    t.read_bandwidth_bytes_per_s or t.bandwidth_bytes_per_s,
                    shared=t.shared,
                )
            self._lanes[self._write[t.name].name] = self._write[t.name]
            self._lanes[self._read[t.name].name] = self._read[t.name]
        # Sharded mirroring (enable_shard_mirroring): records exported by
        # this shard's real flows on shared lanes, drained once per
        # window into the worker report, and the registry of mirror
        # flows replaying the *other* shards' records locally.
        self.flow_outbox: Optional[List[tuple]] = None
        self._mirrors: Dict[Tuple[str, Tuple[int, int]], Flow] = {}
        # Completed write flows on *shared* tiers, as (start_ns, end_ns,
        # rank, round_no) windows — the measured (not assumed) PFS burst
        # timeline behind ``SPBC.peak_concurrent_pfs_writers``.
        self.shared_write_windows: List[Tuple[int, int, int, int]] = []
        # Completed read flows on *shared* tiers (restart-read bursts),
        # same shape — the timeline the cross-cluster restart stagger
        # (``RecoveryManager(restart_stagger_ns=...)``) flattens.
        self.shared_read_windows: List[Tuple[int, int, int, int]] = []

    def tier(self, name: str) -> StorageTier:
        return self._tiers[name]

    # -- sharded mirroring (repro.harness.parallel) --------------------
    def enable_shard_mirroring(self, shard_id: int) -> None:
        """Export every real flow on a *shared* lane as start/cancel
        records (worker report -> coordinator -> other shards), so all
        shards maintain identical active sets on the shared media.
        Unshared lanes (per-node RAM/SSD, partner links) drain each flow
        at full bandwidth regardless of the others, so their completion
        times are shard-local facts that need no mirroring."""
        self.flow_outbox = []
        for res in self._lanes.values():
            if res.shared:
                res.shard_tag = shard_id
                res.export_sink = self.flow_outbox.append

    def drain_flow_records(self) -> List[tuple]:
        out, self.flow_outbox = self.flow_outbox, []
        return out

    def schedule_flow_record(self, rec: tuple) -> None:
        """Replay another shard's exported flow record: create the
        mirror flow now and admit it at the exported absolute time, or
        cancel it at the exported instant.  Admission safety is the
        coordinator's lookahead cap (a shared tier's latency bounds the
        window length), so ``admit_at_ns``/``t_ns`` never lie in this
        shard's past."""
        if rec[0] == "start":
            _kind, lane, gid, nbytes, admit_at_ns = rec
            res = self._lanes[lane]
            key = (lane, tuple(gid))
            flow = res.mirror_flow(key[1], nbytes)
            self._mirrors[key] = flow
            flow.on_done = lambda _f, key=key: self._mirrors.pop(key, None)
            self.engine.schedule_at(admit_at_ns, res._admit, flow)
        else:
            _kind, lane, gid, t_ns = rec
            self.engine.schedule_at(
                t_ns, self._apply_mirror_cancel, lane, tuple(gid)
            )

    def _apply_mirror_cancel(self, lane: str, gid: Tuple[int, int]) -> None:
        flow = self._mirrors.pop((lane, gid), None)
        if flow is not None:
            self._lanes[lane].cancel(flow)

    # ------------------------------------------------------------------
    def write(
        self,
        tier_name: str,
        nbytes: int,
        delay_ns: int = 0,
        on_done: Optional[Callable[[Flow], None]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Flow:
        """Start a write flow on ``tier_name`` (latency from the tier)."""
        tier = self._tiers[tier_name]
        meta = dict(meta or {})
        meta.setdefault("tier", tier_name)

        def _done(flow: Flow) -> None:
            if tier.shared:
                self.shared_write_windows.append(
                    (
                        flow.start_ns,
                        flow.end_ns,
                        flow.meta.get("rank", -1),
                        flow.meta.get("round_no", 0),
                    )
                )
            tele = self.engine.telemetry
            if tele.enabled:
                tele.storage_span(
                    "write",
                    f"{tier_name}.write",
                    flow.start_ns,
                    flow.end_ns,
                    args={
                        "bytes": flow.nbytes,
                        "rank": flow.meta.get("rank", -1),
                        "round": flow.meta.get("round_no", 0),
                    },
                )
            if on_done is not None:
                on_done(flow)

        return self._write[tier_name].start_flow(
            nbytes,
            latency_ns=tier.latency_ns,
            delay_ns=delay_ns,
            on_done=_done,
            meta=meta,
        )

    def read(
        self,
        tier_name: str,
        nbytes: int,
        on_done: Optional[Callable[[Flow], None]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Flow:
        """Start a read flow on ``tier_name``'s read side."""
        tier = self._tiers[tier_name]
        meta = dict(meta or {})
        meta.setdefault("tier", tier_name)

        def _done(flow: Flow) -> None:
            if tier.shared:
                self.shared_read_windows.append(
                    (
                        flow.start_ns,
                        flow.end_ns,
                        flow.meta.get("rank", -1),
                        flow.meta.get("round_no", 0),
                    )
                )
            tele = self.engine.telemetry
            if tele.enabled:
                tele.storage_span(
                    "read",
                    f"{tier_name}.read",
                    flow.start_ns,
                    flow.end_ns,
                    args={
                        "bytes": flow.nbytes,
                        "rank": flow.meta.get("rank", -1),
                        "round": flow.meta.get("round_no", 0),
                    },
                )
            if on_done is not None:
                on_done(flow)

        return self._read[tier_name].start_flow(
            nbytes, latency_ns=tier.latency_ns, on_done=_done, meta=meta
        )

    def cancel(self, flow: Flow) -> bool:
        return flow.resource.cancel(flow)


class ChainRead:
    """One rank's restart read as a pipeline of flows.

    Links are read base-full first (a delta is useless before its base),
    each link's read flow followed by its modeled decompression stage on
    the CPU.  Different ranks' chains run concurrently and share the
    tiers' read bandwidth; a failure mid-restore cancels the pipeline
    (the bytes already moved are not refunded).
    """

    def __init__(
        self,
        sched: IOScheduler,
        links: Sequence[Tuple[str, int, int]],  # (tier, nbytes, decompress_ns)
        on_done: Callable[["ChainRead"], None],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sched = sched
        self.links = list(links)
        self.on_done = on_done
        self.meta = dict(meta or {})
        self.start_ns = sched.engine.now
        self.end_ns: Optional[int] = None
        self.decompress_ns_total = sum(d for _t, _n, d in self.links)
        self.cancelled = False
        self._flow: Optional[Flow] = None
        self._pending: Optional[EventHandle] = None
        self._pending_at: Optional[int] = None  # decompress completion
        self._next = 0
        self._step()

    @property
    def elapsed_ns(self) -> int:
        if self.end_ns is None:
            raise ValueError("chain read still in flight")
        return self.end_ns - self.start_ns

    @property
    def read_ns(self) -> int:
        """Measured end-to-end time minus the decompression stages."""
        return self.elapsed_ns - self.decompress_ns_total

    def cancel(self) -> None:
        if self.cancelled or self.end_ns is not None:
            return
        self.cancelled = True
        if self._flow is not None:
            self.sched.cancel(self._flow)
            self._flow = None
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
            self._pending_at = None

    def next_event_ns(self) -> Optional[int]:
        """Conservative lower bound on this pipeline's next stage event
        (decompress completion, pending flow admission, or the current
        lane's next completion tick) — the shard coordinator's hold
        point while a flow-based restore is in flight, recomputed every
        window as the pipeline advances."""
        if self._pending_at is not None:
            return self._pending_at
        flow = self._flow
        if flow is not None:
            if flow.start_ns is None:
                return flow.admit_at_ns
            return flow.resource.tick_at_ns
        return None

    # ------------------------------------------------------------------
    def _step(self) -> None:
        if self.cancelled:
            return
        if self._next >= len(self.links):
            self.end_ns = self.sched.engine.now
            self.on_done(self)
            return
        tier, nbytes, _dec = self.links[self._next]
        self._flow = self.sched.read(
            tier, nbytes, on_done=self._link_read, meta=self.meta
        )

    def _link_read(self, _flow: Flow) -> None:
        if self.cancelled:
            return
        self._flow = None
        _tier, _nbytes, dec_ns = self.links[self._next]
        self._next += 1
        if dec_ns > 0:
            self._pending = self.sched.engine.schedule(dec_ns, self._decompressed)
            self._pending_at = self.sched.engine.now + dec_ns
        else:
            self._step()

    def _decompressed(self) -> None:
        self._pending = None
        self._pending_at = None
        self._step()
