"""Pluggable checkpoint storage backends.

The protocol's stable-storage abstraction ("save (State, Logs), read it
back at restart") is decoupled here from *where* the bytes live and what
that costs.  Two implementations:

* :class:`InMemoryBackend` — the paper's experimental configuration:
  writes are free and every copy survives any failure.  This is the
  default, so failure-free benchmark numbers are identical to a world
  without any storage model.
* :class:`TieredBackend` — executes a :class:`~repro.storage.multilevel.
  MultiLevelPlan`: each checkpoint round writes to the tiers the plan
  schedules, write/read time comes from the :class:`~repro.storage.model.
  StorageTier` cost models (including shared-PFS contention), and every
  copy remembers which tier holds it so a node failure can invalidate
  the copies that died with the node.

Backends return receipts instead of charging time themselves: the
protocol charges ``SaveReceipt.write_ns`` to the simulation clock inside
the coordinated checkpoint, and the recovery manager delays the restart
by ``RestoreReceipt.read_ns`` (the paper's "IO burst when retrieving the
last checkpoint").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.storage.model import StorageTier, local_ssd_tier, pfs_tier, ram_tier
from repro.storage.multilevel import MultiLevelPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core<->storage cycle)
    from repro.core.checkpoint import Checkpoint


@dataclass(frozen=True)
class SaveReceipt:
    """Outcome of persisting one checkpoint."""

    round_no: int
    write_ns: int  # modeled time, charged to the writer's simulation clock
    tiers: Tuple[str, ...]  # tiers that received a copy this round
    durable: bool  # True when some copy this round survives node failure


@dataclass(frozen=True)
class RestoreReceipt:
    """Outcome of reading one checkpoint back at restart."""

    ckpt: "Checkpoint"
    tier: str  # tier the copy was read from
    read_ns: int  # modeled restart-read time


class StorageBackend(ABC):
    """Where checkpoints live and what writing/reading them costs."""

    def __init__(self) -> None:
        self.writes = 0  # save() calls (checkpoint commits)
        self.bytes_written = 0  # modeled bytes across all copies
        self.write_ns_total = 0
        self.read_ns_total = 0

    # -- write path ----------------------------------------------------
    def write_cost_ns(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> int:
        """Modeled time to persist ``ckpt``, without committing it.

        The protocol charges this to the simulation clock *before*
        calling :meth:`save`: a copy must not become restorable until
        its write has finished (a failure mid-write falls back to the
        previous round)."""
        return 0

    @abstractmethod
    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        """Persist ``ckpt`` and return the modeled cost receipt."""

    # -- failure model -------------------------------------------------
    @abstractmethod
    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        """A node hosting ``ranks`` was lost: drop their checkpoint
        copies held in tiers that do not survive node failure.  Returns
        the number of copies invalidated."""

    # -- read path -----------------------------------------------------
    @abstractmethod
    def surviving_rounds(self, rank: int) -> List[int]:
        """Rounds of ``rank`` with at least one surviving copy, ascending."""

    @abstractmethod
    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        """Read back ``rank``'s checkpoint of ``round_no`` from the
        cheapest surviving copy."""

    # -- cost-free inspection (tests, reporting, failure events) -------
    @abstractmethod
    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        """Latest *surviving* checkpoint of ``rank`` (no cost charged)."""

    @abstractmethod
    def rounds_of(self, rank: int) -> List[int]:
        """Every round ever saved for ``rank`` (including copies that
        were later invalidated), ascending."""

    def has_checkpoint(self, rank: int) -> bool:
        return self.load_latest(rank) is not None


class InMemoryBackend(StorageBackend):
    """Free, indestructible checkpoint store (the paper's configuration:
    "none of our experiments include checkpointing [I/O]")."""

    def __init__(self) -> None:
        super().__init__()
        self._latest: Dict[int, "Checkpoint"] = {}
        self._history: Dict[int, List["Checkpoint"]] = {}

    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        self._latest[ckpt.rank] = ckpt
        self._history.setdefault(ckpt.rank, []).append(ckpt)
        self.writes += 1
        self.bytes_written += ckpt.nbytes
        return SaveReceipt(
            round_no=ckpt.round_no, write_ns=0, tiers=("memory",), durable=True
        )

    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        return 0  # survives everything, by definition

    def surviving_rounds(self, rank: int) -> List[int]:
        return self.rounds_of(rank)

    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        for c in reversed(self._history.get(rank, [])):
            if c.round_no == round_no:
                return RestoreReceipt(ckpt=c, tier="memory", read_ns=0)
        return None

    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        return self._latest.get(rank)

    def rounds_of(self, rank: int) -> List[int]:
        return [c.round_no for c in self._history.get(rank, [])]


class TieredBackend(StorageBackend):
    """Executes a :class:`MultiLevelPlan` with per-tier cost accounting."""

    def __init__(self, plan: MultiLevelPlan) -> None:
        super().__init__()
        self.plan = plan
        names = [t.name for t in plan.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in plan: {names}")
        # rank -> round -> tier name -> checkpoint copy
        self._copies: Dict[int, Dict[int, Dict[str, "Checkpoint"]]] = {}
        self._all_rounds: Dict[int, List[int]] = {}
        self.tier_writes: Dict[str, int] = {t.name: 0 for t in plan.tiers}
        self.tier_bytes: Dict[str, int] = {t.name: 0 for t in plan.tiers}
        self.invalidated_copies = 0

    def _tier(self, name: str) -> StorageTier:
        for t in self.plan.tiers:
            if t.name == name:
                return t
        raise KeyError(name)

    def scheduled_tiers(self, round_no: int) -> List[StorageTier]:
        """Tiers the plan writes on checkpoint round ``round_no``."""
        return [
            t
            for t, period in zip(self.plan.tiers, self.plan.periods)
            if round_no % period == 0
        ]

    def write_cost_ns(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> int:
        return sum(
            t.write_time_ns(ckpt.nbytes, concurrent_writers)
            for t in self.scheduled_tiers(ckpt.round_no)
        )

    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        tiers = self.scheduled_tiers(ckpt.round_no)
        write_ns = 0
        per_round = self._copies.setdefault(ckpt.rank, {}).setdefault(
            ckpt.round_no, {}
        )
        for t in tiers:
            write_ns += t.write_time_ns(ckpt.nbytes, concurrent_writers)
            per_round[t.name] = ckpt
            self.tier_writes[t.name] += 1
            self.tier_bytes[t.name] += ckpt.nbytes
            self.bytes_written += ckpt.nbytes
        self.writes += 1
        self.write_ns_total += write_ns
        rounds = self._all_rounds.setdefault(ckpt.rank, [])
        if ckpt.round_no not in rounds:
            # A rolled-back cluster re-takes rounds it already saved;
            # keep the history sorted and duplicate-free.
            insort(rounds, ckpt.round_no)
        return SaveReceipt(
            round_no=ckpt.round_no,
            write_ns=write_ns,
            tiers=tuple(t.name for t in tiers),
            durable=any(t.survives_node_failure for t in tiers),
        )

    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        dropped = 0
        for rank in ranks:
            for per_round in self._copies.get(rank, {}).values():
                for name in [
                    n
                    for n in per_round
                    if not self._tier(n).survives_node_failure
                ]:
                    del per_round[name]
                    dropped += 1
        self.invalidated_copies += dropped
        return dropped

    def surviving_rounds(self, rank: int) -> List[int]:
        return sorted(
            rnd for rnd, copies in self._copies.get(rank, {}).items() if copies
        )

    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        copies = self._copies.get(rank, {}).get(round_no) or {}
        if not copies:
            return None
        best_name = min(
            copies,
            key=lambda n: self._tier(n).read_time_ns(
                copies[n].nbytes, concurrent_readers
            ),
        )
        ckpt = copies[best_name]
        read_ns = self._tier(best_name).read_time_ns(ckpt.nbytes, concurrent_readers)
        self.read_ns_total += read_ns
        return RestoreReceipt(ckpt=ckpt, tier=best_name, read_ns=read_ns)

    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        rounds = self.surviving_rounds(rank)
        if not rounds:
            return None
        receipt = self.retrieve(rank, rounds[-1])
        self.read_ns_total -= receipt.read_ns  # inspection is cost-free
        return receipt.ckpt

    def rounds_of(self, rank: int) -> List[int]:
        return list(self._all_rounds.get(rank, []))


# ----------------------------------------------------------------------
# Registry: build a backend from a CLI-friendly spec string
# ----------------------------------------------------------------------

_TIER_FACTORIES = {
    "ram": ram_tier,
    "ssd": local_ssd_tier,
    "pfs": pfs_tier,
}


def default_plan() -> MultiLevelPlan:
    """SCR/FTI-flavoured default: RAM every round, local SSD every 4th,
    the parallel file system every 16th."""
    return MultiLevelPlan(
        tiers=[ram_tier(), local_ssd_tier(), pfs_tier()], periods=[1, 4, 16]
    )


def parse_plan(spec: str) -> MultiLevelPlan:
    """Parse ``"ram@1,ssd@4,pfs@16"`` into a :class:`MultiLevelPlan`."""
    tiers: List[StorageTier] = []
    periods: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, period = part.partition("@")
        factory = _TIER_FACTORIES.get(name.strip())
        if factory is None:
            raise ValueError(
                f"unknown tier {name!r} (choose from {sorted(_TIER_FACTORIES)})"
            )
        tiers.append(factory())
        periods.append(int(period) if period else 1)
    if not tiers:
        raise ValueError(f"empty tier plan: {spec!r}")
    return MultiLevelPlan(tiers=tiers, periods=periods)


def make_backend(spec: str) -> StorageBackend:
    """Build a backend from a spec string.

    * ``"memory"`` — the free in-memory default;
    * ``"tiered"`` — :func:`default_plan` (ram@1, ssd@4, pfs@16);
    * ``"tiered:ram@1,pfs@4"`` — an explicit tier plan.
    """
    name, _, rest = spec.partition(":")
    if name == "memory":
        if rest:
            raise ValueError("the memory backend takes no arguments")
        return InMemoryBackend()
    if name == "tiered":
        return TieredBackend(parse_plan(rest) if rest else default_plan())
    raise ValueError(f"unknown storage backend {name!r} (memory, tiered)")
