"""Pluggable checkpoint storage backends.

The protocol's stable-storage abstraction ("save (State, Logs), read it
back at restart") is decoupled here from *where* the bytes live and what
that costs.  Two implementations:

* :class:`InMemoryBackend` — the paper's experimental configuration:
  writes are free and every copy survives any failure.  This is the
  default, so failure-free benchmark numbers are identical to a world
  without any storage model.
* :class:`TieredBackend` — executes a :class:`~repro.storage.multilevel.
  MultiLevelPlan`: each checkpoint round writes to the tiers the plan
  schedules, write/read time comes from the :class:`~repro.storage.model.
  StorageTier` cost models (including shared-PFS contention), and every
  copy remembers which tier holds it so a node failure can invalidate
  the copies that died with the node.

Backends return receipts instead of charging time themselves: the
protocol charges ``SaveReceipt.write_ns`` to the simulation clock inside
the coordinated checkpoint, and the recovery manager delays the restart
by ``RestoreReceipt.read_ns`` (the paper's "IO burst when retrieving the
last checkpoint").

With ``async_flush=True`` (spec suffix ``:async``) a ``TieredBackend``
moves its shared-tier (PFS) writes onto the event-driven I/O scheduler
(:mod:`repro.storage.iosched`): the receipt charges only the local
tiers, the PFS copy drains as a background flow overlapping compute,
and it becomes restorable only when the flow lands — see
``docs/storage.md``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.ckptdata.compression import compression_model
from repro.obs import NULL_TELEMETRY
from repro.storage.iosched import ChainRead, IOScheduler
from repro.storage.model import (
    StorageTier,
    local_ssd_tier,
    partner_tier,
    pfs_tier,
    ram_tier,
)
from repro.storage.multilevel import MultiLevelPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core<->storage cycle)
    from repro.core.checkpoint import Checkpoint
    from repro.sim.engine import Engine
    from repro.sim.network import Topology
    from repro.sim.resources import Flow


@dataclass(frozen=True)
class SaveReceipt:
    """Outcome of persisting one checkpoint."""

    round_no: int
    write_ns: int  # modeled time, charged to the writer's simulation clock
    tiers: Tuple[str, ...]  # tiers that received a copy this round
    durable: bool  # True when some copy this round survives node failure
    # Tiers whose copy is still draining in the background (async flush).
    # Such a copy is NOT yet restorable: it registers only when its flow
    # completes, and a failure mid-flush cancels it.
    pending_tiers: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RestoreReceipt:
    """Outcome of reading one checkpoint back at restart."""

    ckpt: "Checkpoint"
    tier: str  # tier the copy was read from
    read_ns: int  # modeled restart-read time (sums over a delta chain)
    # Rounds read to reconstruct the state, base-full first.  Empty for
    # payload-less checkpoints (the opaque-blob model reads one round).
    chain: Tuple[int, ...] = ()
    # Modeled decompression CPU time to reinflate the chain's payloads
    # (charged to the restart only by backends with charge_decompress —
    # the seed's closed-form path keeps its original read-only delay).
    decompress_ns: int = 0


@dataclass(frozen=True)
class RestoreLink:
    """One chain link of a flow-based restart read."""

    round_no: int
    tier: str
    nbytes: int
    decompress_ns: int


@dataclass(frozen=True)
class RestorePlan:
    """A restart read expressed as sequential link stages (base first),
    executable either closed-form (sum the links) or as overlapping
    flows on the I/O scheduler."""

    ckpt: "Checkpoint"  # the target round's checkpoint
    tier: str  # tier the target round is read from
    chain: Tuple[int, ...]
    links: Tuple[RestoreLink, ...] = ()


class StorageBackend(ABC):
    """Where checkpoints live and what writing/reading them costs."""

    def __init__(self) -> None:
        self.writes = 0  # save() calls (checkpoint commits)
        self.bytes_written = 0  # modeled bytes across all copies
        self.write_ns_total = 0
        self.read_ns_total = 0

    # -- write path ----------------------------------------------------
    def write_cost_ns(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> int:
        """Modeled time to persist ``ckpt``, without committing it.

        The protocol charges this to the simulation clock *before*
        calling :meth:`save`: a copy must not become restorable until
        its write has finished (a failure mid-write falls back to the
        previous round)."""
        return 0

    @abstractmethod
    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        """Persist ``ckpt`` and return the modeled cost receipt."""

    def amortized_write_cost_ns(
        self, nbytes: int, concurrent_writers: int = 1
    ) -> int:
        """Expected per-round cost of writing ``nbytes`` under this
        backend's plan (averaged over a full tier cycle).  Feeds the
        Young/Daly cadence when the data plane supplies an *expected*
        payload size instead of the committed round's actual one."""
        return 0

    # -- plan introspection (data plane + stagger hooks) ---------------
    def durable_tier_scheduled(self, round_no: int) -> bool:
        """True when round ``round_no`` writes a tier that survives node
        failure.  The data plane forces a *full* payload on such rounds
        (``full_on_durable``) so the durable copy is self-contained."""
        return False

    def durable_round_period(self) -> Optional[int]:
        """Every how many rounds a durable tier is scheduled (None when
        the plan has no durable tier).  Lets the auto cadence price the
        fulls that ``full_on_durable`` forces on those rounds."""
        return None

    def shared_tier_scheduled(self, round_no: int) -> bool:
        """True when round ``round_no`` writes a shared-bandwidth tier
        (the PFS) — the rounds cross-cluster staggering spreads out."""
        return False

    def shared_write_cost_ns(
        self, ckpt: "Checkpoint", concurrent_writers: int = 1
    ) -> int:
        """The shared-tier portion of :meth:`write_cost_ns` (0 when the
        round writes no shared tier)."""
        return 0

    # -- topology ------------------------------------------------------
    def bind_topology(self, topology: "Topology") -> None:
        """Tell the backend where ranks physically live.  Called once
        when the protocol attaches to a world; backends that place copies
        by node (partner copies) need it, the rest ignore it."""

    # -- event-driven I/O (async flush / flow-based restarts) ----------
    def bind_engine(self, engine: "Engine") -> None:
        """Give the backend the simulation engine.  Called once when the
        protocol attaches to a world; backends that run background I/O
        flows (async flush, partner rebuild, overlapped restart reads)
        build their :class:`~repro.storage.iosched.IOScheduler` here."""

    @property
    def flows_active(self) -> bool:
        """True when this backend runs restart reads / flushes as flows
        on an I/O scheduler (async mode with a bound engine)."""
        return False

    @property
    def charge_decompress(self) -> bool:
        """True when the restart path charges the modeled decompression
        time (``RestoreReceipt.decompress_ns``) to the restart delay."""
        return False

    def cancel_inflight_above(self, rank: int, round_no: int) -> int:
        """A restarted rank is re-executing rounds above ``round_no``:
        abort its in-flight background flushes for those rounds (the
        re-execution will commit fresh copies; letting a stale flow land
        would register a dead incarnation's cut).  Returns the number of
        flows cancelled."""
        return 0

    def shared_flow_windows(self) -> List[Tuple[int, int, int, int]]:
        """Completed background write bursts on shared tiers, as
        ``(start_ns, end_ns, rank, round_no)`` — the *measured* PFS
        timeline feeding ``SPBC.peak_concurrent_pfs_writers``."""
        return []

    # -- failure model -------------------------------------------------
    @abstractmethod
    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        """The node(s) hosting ``ranks`` were lost: drop every checkpoint
        copy *hosted on those nodes* whose tier does not survive node
        failure.  With a bound topology this includes copies owned by
        ranks on other nodes but placed here (partner copies).  Returns
        the number of copies invalidated."""

    def guaranteed_round(self, rank: int) -> int:
        """Latest round ``rank`` can never be forced to roll back past,
        no matter what fails later (0 when only volatile copies exist).
        Receiver-driven log GC keys off this: a sender may delete log
        records a receiver has delivered and saved in a guaranteed
        round."""
        return 0

    # -- read path -----------------------------------------------------
    @abstractmethod
    def surviving_rounds(self, rank: int) -> List[int]:
        """Rounds of ``rank`` with at least one surviving copy, ascending."""

    def restorable_rounds(self, rank: int) -> List[int]:
        """Rounds a restart can actually reconstruct, ascending.  For
        opaque blobs this is :meth:`surviving_rounds`; chain-aware
        backends additionally require every base link of a delta round
        to survive (a delta whose base was lost is unusable)."""
        return self.surviving_rounds(rank)

    @abstractmethod
    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        """Read back ``rank``'s checkpoint of ``round_no`` from the
        cheapest surviving copy."""

    # -- cost-free inspection (tests, reporting, failure events) -------
    @abstractmethod
    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        """Latest *surviving* checkpoint of ``rank`` (no cost charged)."""

    @abstractmethod
    def rounds_of(self, rank: int) -> List[int]:
        """Every round ever saved for ``rank`` (including copies that
        were later invalidated), ascending."""

    def has_checkpoint(self, rank: int) -> bool:
        return self.load_latest(rank) is not None


class InMemoryBackend(StorageBackend):
    """Free, indestructible checkpoint store (the paper's configuration:
    "none of our experiments include checkpointing [I/O]")."""

    def __init__(self) -> None:
        super().__init__()
        self._latest: Dict[int, "Checkpoint"] = {}
        self._history: Dict[int, List["Checkpoint"]] = {}

    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        self._latest[ckpt.rank] = ckpt
        self._history.setdefault(ckpt.rank, []).append(ckpt)
        self.writes += 1
        self.bytes_written += ckpt.stored_bytes
        return SaveReceipt(
            round_no=ckpt.round_no, write_ns=0, tiers=("memory",), durable=True
        )

    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        return 0  # survives everything, by definition

    def guaranteed_round(self, rank: int) -> int:
        rounds = self.rounds_of(rank)
        return rounds[-1] if rounds else 0  # indestructible store

    def surviving_rounds(self, rank: int) -> List[int]:
        return self.rounds_of(rank)

    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        for c in reversed(self._history.get(rank, [])):
            if c.round_no == round_no:
                return RestoreReceipt(ckpt=c, tier="memory", read_ns=0)
        return None

    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        return self._latest.get(rank)

    def rounds_of(self, rank: int) -> List[int]:
        return [c.round_no for c in self._history.get(rank, [])]


class TieredBackend(StorageBackend):
    """Executes a :class:`MultiLevelPlan` with per-tier cost accounting.

    With a bound :class:`~repro.sim.network.Topology`, copies are placed
    by *node*: regular volatile tiers (ram, ssd) live on the owner's
    node, the ``partner`` tier lives on the buddy node's RAM (ring
    partner, SCR/FTI style).  A node failure then invalidates exactly
    the copies hosted on the lost nodes — a partner copy survives the
    owner's node dying and is lost only when the buddy dies.

    ``async_flush=True`` (spec suffix ``:async``) switches shared-tier
    (PFS) writes to the event-driven I/O scheduler: the coordinated
    checkpoint commits once the local tiers land, the PFS copy drains in
    the background as a bandwidth flow overlapping compute, and the copy
    becomes restorable only when the flow completes — a failure
    mid-flush cancels the flow, so recovery restarts from the last
    *fully drained* round.  ``charge_decompress`` (default: follows
    ``async_flush``) additionally charges the payloads' modeled
    decompression time to the restart path.
    """

    def __init__(
        self,
        plan: MultiLevelPlan,
        async_flush: bool = False,
        partner_rebuild: bool = True,
        charge_decompress: Optional[bool] = None,
    ) -> None:
        super().__init__()
        self.plan = plan
        names = [t.name for t in plan.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in plan: {names}")
        self.async_flush = async_flush
        self.partner_rebuild = partner_rebuild
        self._charge_decompress = (
            async_flush if charge_decompress is None else charge_decompress
        )
        # rank -> round -> tier name -> checkpoint copy
        self._copies: Dict[int, Dict[int, Dict[str, "Checkpoint"]]] = {}
        self._all_rounds: Dict[int, List[int]] = {}
        self.tier_writes: Dict[str, int] = {t.name: 0 for t in plan.tiers}
        self.tier_bytes: Dict[str, int] = {t.name: 0 for t in plan.tiers}
        self.invalidated_copies = 0
        self._topology: Optional["Topology"] = None
        # Event-driven I/O (built at bind_engine).
        self.iosched: Optional[IOScheduler] = None
        self._inflight: Dict[int, List["Flow"]] = {}  # rank -> live flows
        self._rebuilding: Set[Tuple[int, int]] = set()  # (rank, round)
        self.flush_flows_started = 0
        self.flush_flows_completed = 0
        self.flush_flows_cancelled = 0
        self.rebuild_flows_started = 0
        self.rebuild_flows_completed = 0
        self.background_write_ns_total = 0  # flow durations, not app stall

    def bind_topology(self, topology: "Topology") -> None:
        self._topology = topology

    def bind_engine(self, engine: "Engine") -> None:
        if self.iosched is not None and self.iosched.engine is engine:
            return
        self.iosched = IOScheduler(engine, self.plan.tiers)

    @property
    def flows_active(self) -> bool:
        return self.async_flush and self.iosched is not None

    def _telemetry(self):
        """The bound engine's telemetry (null until bind_engine)."""
        if self.iosched is None:
            return NULL_TELEMETRY
        return self.iosched.engine.telemetry

    @property
    def charge_decompress(self) -> bool:
        return self._charge_decompress

    def _tier(self, name: str) -> StorageTier:
        for t in self.plan.tiers:
            if t.name == name:
                return t
        raise KeyError(name)

    def host_node(self, tier_name: str, rank: int) -> Optional[int]:
        """Node a copy of ``rank`` in ``tier_name`` physically lives on
        (None without a bound topology).  Partner copies live on the next
        node around the ring; everything else on the owner's node."""
        if self._topology is None:
            return None
        node = self._topology.node_of(rank)
        if tier_name == "partner":
            return (node + 1) % self._topology.nnodes
        return node

    def scheduled_tiers(self, round_no: int) -> List[StorageTier]:
        """Tiers the plan writes on checkpoint round ``round_no``."""
        return [
            t
            for t, period in zip(self.plan.tiers, self.plan.periods)
            if round_no % period == 0
        ]

    def durable_tier_scheduled(self, round_no: int) -> bool:
        return any(
            t.survives_node_failure for t in self.scheduled_tiers(round_no)
        )

    def durable_round_period(self) -> Optional[int]:
        periods = [
            period
            for t, period in zip(self.plan.tiers, self.plan.periods)
            if t.survives_node_failure
        ]
        return min(periods) if periods else None

    def shared_tier_scheduled(self, round_no: int) -> bool:
        return any(t.shared for t in self.scheduled_tiers(round_no))

    def deferred_tiers(self, round_no: int) -> List[StorageTier]:
        """Tiers this round flushes in the background instead of inside
        the commit barrier, under async flush: the shared (PFS) tiers,
        plus node-local tiers that declare ``background_drain`` (the
        local SSD — its copy drains behind the commit exactly like a PFS
        flush, and a node loss mid-drain cancels it)."""
        if not self.async_flush:
            return []
        return [
            t
            for t in self.scheduled_tiers(round_no)
            if t.shared or t.background_drain
        ]

    def shared_write_cost_ns(
        self, ckpt: "Checkpoint", concurrent_writers: int = 1
    ) -> int:
        return sum(
            t.write_time_ns(ckpt.stored_bytes, concurrent_writers)
            for t in self.scheduled_tiers(ckpt.round_no)
            if t.shared
        )

    def amortized_write_cost_ns(
        self, nbytes: int, concurrent_writers: int = 1
    ) -> int:
        if not self.async_flush:
            return int(self.plan.amortized_cost_ns(nbytes, concurrent_writers))
        # Async flush: the app only stalls for the non-deferred tiers —
        # the PFS/SSD drains overlap compute, so the Young/Daly cadence
        # must optimize against the *stall* cost, not the hidden drain.
        cycle = self.plan.periods[-1]
        total = 0
        for r in range(1, cycle + 1):
            total += sum(
                t.write_time_ns(nbytes, concurrent_writers)
                for t, period in zip(self.plan.tiers, self.plan.periods)
                if r % period == 0 and not (t.shared or t.background_drain)
            )
        return total // cycle

    def write_cost_ns(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> int:
        deferred = {t.name for t in self.deferred_tiers(ckpt.round_no)}
        return sum(
            t.write_time_ns(ckpt.stored_bytes, concurrent_writers)
            for t in self.scheduled_tiers(ckpt.round_no)
            if t.name not in deferred
        )

    def save(
        self,
        ckpt: "Checkpoint",
        concurrent_writers: int = 1,
        flush_delay_ns: int = 0,
    ) -> SaveReceipt:
        tiers = self.scheduled_tiers(ckpt.round_no)
        deferred = {t.name for t in self.deferred_tiers(ckpt.round_no)}
        if deferred and self.iosched is None:
            raise RuntimeError(
                "async flush needs the simulation engine for its I/O "
                "scheduler; the protocol binds one at attach() — call "
                "backend.bind_engine(engine) when driving the backend "
                "directly"
            )
        write_ns = 0
        per_round = self._copies.setdefault(ckpt.rank, {}).setdefault(
            ckpt.round_no, {}
        )
        tele = self._telemetry()
        for t in tiers:
            if t.name in deferred:
                self._start_flush(t, ckpt, flush_delay_ns)
                continue
            write_ns += t.write_time_ns(ckpt.stored_bytes, concurrent_writers)
            per_round[t.name] = ckpt
            self.tier_writes[t.name] += 1
            self.tier_bytes[t.name] += ckpt.stored_bytes
            self.bytes_written += ckpt.stored_bytes
            if tele.enabled:
                tele.inc("storage.tier_bytes", ckpt.stored_bytes, tier=t.name)
        self.writes += 1
        self.write_ns_total += write_ns
        rounds = self._all_rounds.setdefault(ckpt.rank, [])
        if ckpt.round_no not in rounds:
            # A rolled-back cluster re-takes rounds it already saved;
            # keep the history sorted and duplicate-free.
            insort(rounds, ckpt.round_no)
        return SaveReceipt(
            round_no=ckpt.round_no,
            write_ns=write_ns,
            tiers=tuple(t.name for t in tiers if t.name not in deferred),
            durable=any(
                t.survives_node_failure
                for t in tiers
                if t.name not in deferred
            ),
            pending_tiers=tuple(sorted(deferred)),
        )

    # -- background flushes (async mode) -------------------------------
    def _start_flush(
        self, tier: StorageTier, ckpt: "Checkpoint", delay_ns: int
    ) -> None:
        # A rolled-back cluster re-taking a round supersedes any stale
        # in-flight flush of the same (rank, round, tier).
        for old in list(self._inflight.get(ckpt.rank, [])):
            if (
                old.meta.get("round_no") == ckpt.round_no
                and old.meta.get("tier") == tier.name
            ):
                self._cancel_flow(old)
        meta = {
            "kind": "flush",
            "rank": ckpt.rank,
            "round_no": ckpt.round_no,
            "tier": tier.name,
            "ckpt": ckpt,
            "src_node": self.host_node(tier.name, ckpt.rank),
        }
        flow = self.iosched.write(
            tier.name,
            ckpt.stored_bytes,
            delay_ns=delay_ns,
            on_done=self._flow_landed,
            meta=meta,
        )
        self._inflight.setdefault(ckpt.rank, []).append(flow)
        self.flush_flows_started += 1

    def _flow_landed(self, flow: "Flow") -> None:
        """A background flow completed: the copy becomes restorable."""
        rank = flow.meta["rank"]
        live = self._inflight.get(rank)
        if live is not None and flow in live:
            live.remove(flow)
            if not live:
                del self._inflight[rank]
        ckpt: "Checkpoint" = flow.meta["ckpt"]
        name = flow.meta["tier"]
        per_round = self._copies.setdefault(rank, {}).setdefault(
            ckpt.round_no, {}
        )
        per_round[name] = ckpt
        self.tier_writes[name] += 1
        self.tier_bytes[name] += ckpt.stored_bytes
        self.bytes_written += ckpt.stored_bytes
        tele = self._telemetry()
        if tele.enabled:
            tele.inc("storage.tier_bytes", ckpt.stored_bytes, tier=name)
        self.background_write_ns_total += flow.duration_ns
        if flow.meta["kind"] == "flush":
            self.flush_flows_completed += 1
        else:
            self.rebuild_flows_completed += 1
            self._rebuilding.discard((rank, ckpt.round_no))

    def _cancel_flow(self, flow: "Flow") -> bool:
        rank = flow.meta["rank"]
        if self.iosched is not None and not self.iosched.cancel(flow):
            # The flow's bytes had fully drained by this very instant:
            # the lane completed (reaped) it instead of cancelling —
            # ``_flow_landed`` already ran and the copy is restorable.
            return False
        live = self._inflight.get(rank)
        if live is not None and flow in live:
            live.remove(flow)
            if not live:
                del self._inflight[rank]
        if flow.meta["kind"] == "flush":
            self.flush_flows_cancelled += 1
        else:
            self._rebuilding.discard((rank, flow.meta["round_no"]))
        return True

    def cancel_inflight_above(self, rank: int, round_no: int) -> int:
        cancelled = 0
        for flow in list(self._inflight.get(rank, [])):
            if flow.meta["round_no"] > round_no:
                if self._cancel_flow(flow):
                    cancelled += 1
        return cancelled

    def shared_flow_windows(self) -> List[Tuple[int, int, int, int]]:
        if self.iosched is None:
            return []
        return list(self.iosched.shared_write_windows)

    def shared_read_flow_windows(self) -> List[Tuple[int, int, int, int]]:
        """Completed restart-read bursts on shared tiers, as
        ``(start_ns, end_ns, rank, round_no)`` — the measured PFS read
        timeline the cross-cluster restart stagger flattens."""
        if self.iosched is None:
            return []
        return list(self.iosched.shared_read_windows)

    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        dropped = 0
        dead = set(ranks)
        if self._topology is None:
            # No placement information: conservatively drop every
            # volatile copy owned by the dead ranks (pre-topology model).
            for rank in dead:
                for per_round in self._copies.get(rank, {}).values():
                    for name in [
                        n
                        for n in per_round
                        if not self._tier(n).survives_node_failure
                    ]:
                        del per_round[name]
                        dropped += 1
            self.invalidated_copies += dropped
            self._cancel_dead_flows(dead, dead_nodes=None)
            return dropped
        dead_nodes = {self._topology.node_of(r) for r in dead}
        # Placement-aware blast radius: a copy dies when the node hosting
        # it died — including partner copies owned by ranks on *live*
        # nodes whose buddy was lost.
        for rank, per_rank in self._copies.items():
            for per_round in per_rank.values():
                for name in [
                    n
                    for n in per_round
                    if not self._tier(n).survives_node_failure
                    and self.host_node(n, rank) in dead_nodes
                ]:
                    del per_round[name]
                    dropped += 1
        self.invalidated_copies += dropped
        self._cancel_dead_flows(dead, dead_nodes)
        return dropped

    def _cancel_dead_flows(
        self, dead_ranks: Set[int], dead_nodes: Optional[Set[int]]
    ) -> None:
        """A lost node takes its in-flight background flows with it: a
        flush sourced from the dead node never lands (the data it was
        draining died in RAM), and a rebuild copy headed *to* a dead
        node has nowhere to land."""
        for flows in list(self._inflight.values()):
            for flow in list(flows):
                src = flow.meta.get("src_node")
                dst = flow.meta.get("dst_node")
                doomed = (
                    flow.meta["rank"] in dead_ranks
                    if dead_nodes is None
                    else (src in dead_nodes or dst in dead_nodes)
                )
                if doomed:
                    self._cancel_flow(flow)

    # -- delta chains --------------------------------------------------
    def _chain_rounds(self, rank: int, round_no: int) -> Optional[List[int]]:
        """Rounds needed to reconstruct ``round_no``, base-full first.

        Walks ``payload.base_round`` links.  Returns None when any link
        (including ``round_no`` itself) has no surviving copy — a delta
        whose base died with a node is unusable.  Opaque (payload-less)
        checkpoints are their own one-element chain."""
        chain: List[int] = []
        rnd = round_no
        while True:
            copies = self._copies.get(rank, {}).get(rnd)
            if not copies:
                return None
            chain.append(rnd)
            ckpt = next(iter(copies.values()))
            payload = ckpt.payload
            if payload is None or payload.base_round is None:
                chain.reverse()
                return chain
            if payload.base_round in chain or len(chain) > len(
                self._copies.get(rank, {})
            ):
                raise ValueError(
                    f"rank {rank}: corrupt delta chain at round {rnd} "
                    f"(base {payload.base_round} cycles)"
                )
            rnd = payload.base_round

    def _round_durable(self, rank: int, round_no: int) -> bool:
        copies = self._copies.get(rank, {}).get(round_no) or {}
        return any(self._tier(n).survives_node_failure for n in copies)

    def guaranteed_round(self, rank: int) -> int:
        """Latest round whose *whole chain* sits on tiers that survive
        node failure.  Partner copies do not qualify: they survive any
        *single* node loss, but a later failure of the buddy can still
        take them.  A durable delta whose base is only volatile does not
        qualify either — losing the base loses the round."""
        # Newest-first: the common case (latest round durably chained)
        # returns after one chain walk instead of walking every round.
        for rnd in sorted(self._copies.get(rank, {}), reverse=True):
            chain = self._chain_rounds(rank, rnd)
            if chain is not None and all(
                self._round_durable(rank, link) for link in chain
            ):
                return rnd
        return 0

    def surviving_rounds(self, rank: int) -> List[int]:
        return sorted(
            rnd for rnd, copies in self._copies.get(rank, {}).items() if copies
        )

    def restorable_rounds(self, rank: int) -> List[int]:
        """Surviving rounds whose full delta chain also survives."""
        return [
            rnd
            for rnd in self.surviving_rounds(rank)
            if self._chain_rounds(rank, rnd) is not None
        ]

    def _cheapest_read(
        self, rank: int, round_no: int, concurrent_readers: int
    ) -> Tuple[str, "Checkpoint", int]:
        copies = self._copies[rank][round_no]
        best_name = min(
            copies,
            key=lambda n: self._tier(n).read_time_ns(
                copies[n].stored_bytes, concurrent_readers
            ),
        )
        ckpt = copies[best_name]
        read_ns = self._tier(best_name).read_time_ns(
            ckpt.stored_bytes, concurrent_readers
        )
        return best_name, ckpt, read_ns

    @staticmethod
    def _link_decompress_ns(ckpt: "Checkpoint") -> int:
        """Modeled CPU time to reinflate one chain link's payload on the
        restart path (0 for opaque/uncompressed payloads)."""
        payload = ckpt.payload
        if payload is None or payload.compression == "none":
            return 0
        model = compression_model(payload.compression)
        return model.decompress_cost_ns(payload.delta_bytes)

    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        chain = self._chain_rounds(rank, round_no)
        if chain is None:
            return None
        read_ns = 0
        decompress_ns = 0
        tier_of_target = ""
        target: Optional["Checkpoint"] = None
        for link in chain:
            name, ckpt, link_ns = self._cheapest_read(
                rank, link, concurrent_readers
            )
            read_ns += link_ns
            decompress_ns += self._link_decompress_ns(ckpt)
            if link == round_no:
                tier_of_target, target = name, ckpt
        self.read_ns_total += read_ns
        return RestoreReceipt(
            ckpt=target,
            tier=tier_of_target,
            read_ns=read_ns,
            chain=tuple(chain) if len(chain) > 1 else (),
            decompress_ns=decompress_ns,
        )

    def restore_plan(self, rank: int, round_no: int) -> Optional[RestorePlan]:
        """The restart read as per-link stages, for the flow-based path
        (each link: cheapest surviving tier, stored bytes, modeled
        decompression)."""
        chain = self._chain_rounds(rank, round_no)
        if chain is None:
            return None
        links: List[RestoreLink] = []
        tier_of_target = ""
        target: Optional["Checkpoint"] = None
        for link in chain:
            name, ckpt, _ns = self._cheapest_read(rank, link, 1)
            links.append(
                RestoreLink(
                    round_no=link,
                    tier=name,
                    nbytes=ckpt.stored_bytes,
                    decompress_ns=self._link_decompress_ns(ckpt),
                )
            )
            if link == round_no:
                tier_of_target, target = name, ckpt
        return RestorePlan(
            ckpt=target,
            tier=tier_of_target,
            chain=tuple(chain) if len(chain) > 1 else (),
            links=tuple(links),
        )

    def start_restore(
        self,
        rank: int,
        round_no: int,
        on_done: Callable[[Optional[RestoreReceipt]], None],
    ) -> Optional[ChainRead]:
        """Run ``rank``'s restart read as an overlapping flow pipeline.

        Returns the cancellable :class:`ChainRead` (None when the round
        is not restorable — ``on_done(None)`` fires synchronously then).
        The receipt's ``read_ns`` is *measured* from the flow timeline,
        so concurrent restores genuinely contend for the tiers' read
        bandwidth instead of assuming a reader count."""
        if self.iosched is None:
            raise RuntimeError(
                "flow-based restores need the simulation engine; call "
                "bind_engine(engine) first"
            )
        plan = self.restore_plan(rank, round_no)
        if plan is None:
            on_done(None)
            return None

        def _finish(chain_read: ChainRead) -> None:
            read_ns = chain_read.read_ns
            self.read_ns_total += read_ns
            on_done(
                RestoreReceipt(
                    ckpt=plan.ckpt,
                    tier=plan.tier,
                    read_ns=read_ns,
                    chain=plan.chain,
                    # Always *reported* (matching the closed-form path),
                    # even when charge_decompress leaves the pipeline's
                    # decode stages uncharged.
                    decompress_ns=sum(l.decompress_ns for l in plan.links),
                )
            )

        return ChainRead(
            self.iosched,
            [
                (
                    link.tier,
                    link.nbytes,
                    link.decompress_ns if self.charge_decompress else 0,
                )
                for link in plan.links
            ],
            on_done=_finish,
            meta={"rank": rank, "round_no": round_no},
        )

    # -- partner rebuild (after a failed node returns) ------------------
    def rebuild_partner_copies(self, node: int) -> int:
        """A failed node's ranks restarted — the node is back.  Ranks
        whose ``partner`` copies were hosted there (the ring predecessors)
        lost their buddy mirror with it; re-replicate their latest
        restorable round to the returned node as background flows, so a
        *sequential* failure of the buddy pair restarts from the latest
        round again instead of falling back to the last PFS round.
        Returns the number of rebuild flows started."""
        if (
            not self.partner_rebuild
            or self.iosched is None
            or self._topology is None
            or not any(t.name == "partner" for t in self.plan.tiers)
        ):
            return 0
        started = 0
        for rank in range(self._topology.nranks):
            if self.host_node("partner", rank) != node:
                continue
            rounds = self.restorable_rounds(rank)
            if not rounds:
                continue
            rnd = rounds[-1]
            copies = self._copies[rank][rnd]
            if "partner" in copies or (rank, rnd) in self._rebuilding:
                continue
            ckpt = next(iter(copies.values()))
            meta = {
                "kind": "rebuild",
                "rank": rank,
                "round_no": rnd,
                "tier": "partner",
                "ckpt": ckpt,
                "src_node": self._topology.node_of(rank),
                "dst_node": node,
            }
            flow = self.iosched.write(
                "partner", ckpt.stored_bytes, on_done=self._flow_landed, meta=meta
            )
            self._inflight.setdefault(rank, []).append(flow)
            self._rebuilding.add((rank, rnd))
            self.rebuild_flows_started += 1
            started += 1
        return started

    def has_copy(self, rank: int, round_no: int, tier_name: str) -> bool:
        """True while ``rank``'s ``round_no`` copy in ``tier_name`` is
        alive — an in-flight restore read whose source copy this returns
        False for is reading data the model has declared lost."""
        return tier_name in (self._copies.get(rank, {}).get(round_no) or {})

    def load_round(self, rank: int, round_no: int) -> Optional["Checkpoint"]:
        """A specific round's checkpoint, if any copy survives (no cost
        charged) — used by the deferred GC path to fetch the LR of the
        last *drained* round."""
        copies = self._copies.get(rank, {}).get(round_no)
        if not copies:
            return None
        return next(iter(copies.values()))

    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        rounds = self.restorable_rounds(rank)
        if not rounds:
            return None
        receipt = self.retrieve(rank, rounds[-1])
        self.read_ns_total -= receipt.read_ns  # inspection is cost-free
        return receipt.ckpt

    def rounds_of(self, rank: int) -> List[int]:
        return list(self._all_rounds.get(rank, []))


class PartnerCopyBackend(TieredBackend):
    """A :class:`TieredBackend` whose plan mirrors checkpoints into a
    buddy node's RAM (the ``partner`` tier).  The partner copy survives
    the owner's node dying — a single-node failure restarts from the
    latest round instead of falling back to the last durable round — and
    is invalidated only when both partners' nodes are lost."""

    def __init__(
        self,
        plan: Optional[MultiLevelPlan] = None,
        async_flush: bool = False,
        partner_rebuild: bool = True,
        charge_decompress: Optional[bool] = None,
    ) -> None:
        plan = plan or partner_default_plan()
        if not any(t.name == "partner" for t in plan.tiers):
            raise ValueError(
                "a PartnerCopyBackend plan must include the 'partner' "
                f"tier, got {[t.name for t in plan.tiers]} "
                "(e.g. 'partner:ram@1,partner@1,pfs@16')"
            )
        super().__init__(
            plan,
            async_flush=async_flush,
            partner_rebuild=partner_rebuild,
            charge_decompress=charge_decompress,
        )


# ----------------------------------------------------------------------
# Registry: build a backend from a CLI-friendly spec string
# ----------------------------------------------------------------------

_TIER_FACTORIES = {
    "ram": ram_tier,
    "ssd": local_ssd_tier,
    "pfs": pfs_tier,
    "partner": partner_tier,
}

_BACKEND_NAMES = ("memory", "tiered", "partner")


def default_plan() -> MultiLevelPlan:
    """SCR/FTI-flavoured default: RAM every round, local SSD every 4th,
    the parallel file system every 16th."""
    return MultiLevelPlan(
        tiers=[ram_tier(), local_ssd_tier(), pfs_tier()], periods=[1, 4, 16]
    )


def partner_default_plan() -> MultiLevelPlan:
    """Partner-copy default: RAM + buddy-node mirror every round, the
    parallel file system every 16th."""
    return MultiLevelPlan(
        tiers=[ram_tier(), partner_tier(), pfs_tier()], periods=[1, 1, 16]
    )


def parse_plan(spec: str) -> MultiLevelPlan:
    """Parse ``"ram@1,ssd@4,pfs@16"`` into a :class:`MultiLevelPlan`."""
    tiers: List[StorageTier] = []
    periods: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, period = part.partition("@")
        factory = _TIER_FACTORIES.get(name.strip())
        if factory is None:
            raise ValueError(
                f"unknown tier {name.strip()!r} in plan {spec!r} "
                f"(valid tiers: {', '.join(sorted(_TIER_FACTORIES))})"
            )
        if period:
            try:
                period_val = int(period)
            except ValueError:
                raise ValueError(
                    f"bad tier period {part!r} in plan {spec!r}: "
                    f"{period!r} is not an integer (write e.g. "
                    f"'{name.strip()}@4')"
                ) from None
            if period_val < 1:
                raise ValueError(
                    f"bad tier period {part!r} in plan {spec!r}: "
                    "periods must be >= 1"
                )
        else:
            period_val = 1
        tiers.append(factory())
        periods.append(period_val)
    if not tiers:
        raise ValueError(
            f"empty tier plan {spec!r} (write e.g. 'ram@1,pfs@4')"
        )
    return MultiLevelPlan(tiers=tiers, periods=periods)


def _split_flush_mode(spec: str, rest: str) -> Tuple[str, bool]:
    """Strip a trailing ``:async`` flush-mode token off a plan spec."""
    plan_part, sep, opt = rest.rpartition(":")
    if sep:
        opt = opt.strip()
        if opt == "async":
            return plan_part, True
        raise ValueError(
            f"unknown storage option {opt!r} in spec {spec!r} "
            "(valid options: async)"
        )
    if rest.strip() == "async":
        return "", True
    return rest, False


def make_backend(spec: str) -> StorageBackend:
    """Build a backend from a spec string.

    * ``"memory"`` — the free in-memory default;
    * ``"tiered"`` — :func:`default_plan` (ram@1, ssd@4, pfs@16);
    * ``"tiered:ram@1,pfs@4"`` — an explicit tier plan;
    * ``"partner"`` — :func:`partner_default_plan` (ram@1, partner@1,
      pfs@16);
    * ``"partner:ram@1,partner@1,pfs@8"`` — an explicit plan that must
      include the ``partner`` tier;
    * a trailing ``:async`` (``"tiered:ram@1,pfs@16:async"``,
      ``"tiered:async"``) turns on the **async flush mode**: PFS writes
      drain in the background on the event-driven I/O scheduler, the
      checkpoint commits once the local tiers land, and restart reads
      run as overlapping flows (see ``docs/storage.md``).
    """
    name, _, rest = spec.partition(":")
    if name == "memory":
        if rest:
            raise ValueError(
                f"the memory backend takes no arguments, got {rest!r} "
                f"in spec {spec!r}"
            )
        return InMemoryBackend()
    if name == "tiered":
        rest, async_flush = _split_flush_mode(spec, rest)
        return TieredBackend(
            parse_plan(rest) if rest else default_plan(),
            async_flush=async_flush,
        )
    if name == "partner":
        rest, async_flush = _split_flush_mode(spec, rest)
        return PartnerCopyBackend(
            parse_plan(rest) if rest else None, async_flush=async_flush
        )
    raise ValueError(
        f"unknown storage backend {name!r} in spec {spec!r} "
        f"(valid backends: {', '.join(_BACKEND_NAMES)})"
    )
