"""Pluggable checkpoint storage backends.

The protocol's stable-storage abstraction ("save (State, Logs), read it
back at restart") is decoupled here from *where* the bytes live and what
that costs.  Two implementations:

* :class:`InMemoryBackend` — the paper's experimental configuration:
  writes are free and every copy survives any failure.  This is the
  default, so failure-free benchmark numbers are identical to a world
  without any storage model.
* :class:`TieredBackend` — executes a :class:`~repro.storage.multilevel.
  MultiLevelPlan`: each checkpoint round writes to the tiers the plan
  schedules, write/read time comes from the :class:`~repro.storage.model.
  StorageTier` cost models (including shared-PFS contention), and every
  copy remembers which tier holds it so a node failure can invalidate
  the copies that died with the node.

Backends return receipts instead of charging time themselves: the
protocol charges ``SaveReceipt.write_ns`` to the simulation clock inside
the coordinated checkpoint, and the recovery manager delays the restart
by ``RestoreReceipt.read_ns`` (the paper's "IO burst when retrieving the
last checkpoint").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.storage.model import (
    StorageTier,
    local_ssd_tier,
    partner_tier,
    pfs_tier,
    ram_tier,
)
from repro.storage.multilevel import MultiLevelPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core<->storage cycle)
    from repro.core.checkpoint import Checkpoint
    from repro.sim.network import Topology


@dataclass(frozen=True)
class SaveReceipt:
    """Outcome of persisting one checkpoint."""

    round_no: int
    write_ns: int  # modeled time, charged to the writer's simulation clock
    tiers: Tuple[str, ...]  # tiers that received a copy this round
    durable: bool  # True when some copy this round survives node failure


@dataclass(frozen=True)
class RestoreReceipt:
    """Outcome of reading one checkpoint back at restart."""

    ckpt: "Checkpoint"
    tier: str  # tier the copy was read from
    read_ns: int  # modeled restart-read time (sums over a delta chain)
    # Rounds read to reconstruct the state, base-full first.  Empty for
    # payload-less checkpoints (the opaque-blob model reads one round).
    chain: Tuple[int, ...] = ()


class StorageBackend(ABC):
    """Where checkpoints live and what writing/reading them costs."""

    def __init__(self) -> None:
        self.writes = 0  # save() calls (checkpoint commits)
        self.bytes_written = 0  # modeled bytes across all copies
        self.write_ns_total = 0
        self.read_ns_total = 0

    # -- write path ----------------------------------------------------
    def write_cost_ns(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> int:
        """Modeled time to persist ``ckpt``, without committing it.

        The protocol charges this to the simulation clock *before*
        calling :meth:`save`: a copy must not become restorable until
        its write has finished (a failure mid-write falls back to the
        previous round)."""
        return 0

    @abstractmethod
    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        """Persist ``ckpt`` and return the modeled cost receipt."""

    def amortized_write_cost_ns(
        self, nbytes: int, concurrent_writers: int = 1
    ) -> int:
        """Expected per-round cost of writing ``nbytes`` under this
        backend's plan (averaged over a full tier cycle).  Feeds the
        Young/Daly cadence when the data plane supplies an *expected*
        payload size instead of the committed round's actual one."""
        return 0

    # -- plan introspection (data plane + stagger hooks) ---------------
    def durable_tier_scheduled(self, round_no: int) -> bool:
        """True when round ``round_no`` writes a tier that survives node
        failure.  The data plane forces a *full* payload on such rounds
        (``full_on_durable``) so the durable copy is self-contained."""
        return False

    def durable_round_period(self) -> Optional[int]:
        """Every how many rounds a durable tier is scheduled (None when
        the plan has no durable tier).  Lets the auto cadence price the
        fulls that ``full_on_durable`` forces on those rounds."""
        return None

    def shared_tier_scheduled(self, round_no: int) -> bool:
        """True when round ``round_no`` writes a shared-bandwidth tier
        (the PFS) — the rounds cross-cluster staggering spreads out."""
        return False

    def shared_write_cost_ns(
        self, ckpt: "Checkpoint", concurrent_writers: int = 1
    ) -> int:
        """The shared-tier portion of :meth:`write_cost_ns` (0 when the
        round writes no shared tier)."""
        return 0

    # -- topology ------------------------------------------------------
    def bind_topology(self, topology: "Topology") -> None:
        """Tell the backend where ranks physically live.  Called once
        when the protocol attaches to a world; backends that place copies
        by node (partner copies) need it, the rest ignore it."""

    # -- failure model -------------------------------------------------
    @abstractmethod
    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        """The node(s) hosting ``ranks`` were lost: drop every checkpoint
        copy *hosted on those nodes* whose tier does not survive node
        failure.  With a bound topology this includes copies owned by
        ranks on other nodes but placed here (partner copies).  Returns
        the number of copies invalidated."""

    def guaranteed_round(self, rank: int) -> int:
        """Latest round ``rank`` can never be forced to roll back past,
        no matter what fails later (0 when only volatile copies exist).
        Receiver-driven log GC keys off this: a sender may delete log
        records a receiver has delivered and saved in a guaranteed
        round."""
        return 0

    # -- read path -----------------------------------------------------
    @abstractmethod
    def surviving_rounds(self, rank: int) -> List[int]:
        """Rounds of ``rank`` with at least one surviving copy, ascending."""

    def restorable_rounds(self, rank: int) -> List[int]:
        """Rounds a restart can actually reconstruct, ascending.  For
        opaque blobs this is :meth:`surviving_rounds`; chain-aware
        backends additionally require every base link of a delta round
        to survive (a delta whose base was lost is unusable)."""
        return self.surviving_rounds(rank)

    @abstractmethod
    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        """Read back ``rank``'s checkpoint of ``round_no`` from the
        cheapest surviving copy."""

    # -- cost-free inspection (tests, reporting, failure events) -------
    @abstractmethod
    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        """Latest *surviving* checkpoint of ``rank`` (no cost charged)."""

    @abstractmethod
    def rounds_of(self, rank: int) -> List[int]:
        """Every round ever saved for ``rank`` (including copies that
        were later invalidated), ascending."""

    def has_checkpoint(self, rank: int) -> bool:
        return self.load_latest(rank) is not None


class InMemoryBackend(StorageBackend):
    """Free, indestructible checkpoint store (the paper's configuration:
    "none of our experiments include checkpointing [I/O]")."""

    def __init__(self) -> None:
        super().__init__()
        self._latest: Dict[int, "Checkpoint"] = {}
        self._history: Dict[int, List["Checkpoint"]] = {}

    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        self._latest[ckpt.rank] = ckpt
        self._history.setdefault(ckpt.rank, []).append(ckpt)
        self.writes += 1
        self.bytes_written += ckpt.stored_bytes
        return SaveReceipt(
            round_no=ckpt.round_no, write_ns=0, tiers=("memory",), durable=True
        )

    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        return 0  # survives everything, by definition

    def guaranteed_round(self, rank: int) -> int:
        rounds = self.rounds_of(rank)
        return rounds[-1] if rounds else 0  # indestructible store

    def surviving_rounds(self, rank: int) -> List[int]:
        return self.rounds_of(rank)

    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        for c in reversed(self._history.get(rank, [])):
            if c.round_no == round_no:
                return RestoreReceipt(ckpt=c, tier="memory", read_ns=0)
        return None

    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        return self._latest.get(rank)

    def rounds_of(self, rank: int) -> List[int]:
        return [c.round_no for c in self._history.get(rank, [])]


class TieredBackend(StorageBackend):
    """Executes a :class:`MultiLevelPlan` with per-tier cost accounting.

    With a bound :class:`~repro.sim.network.Topology`, copies are placed
    by *node*: regular volatile tiers (ram, ssd) live on the owner's
    node, the ``partner`` tier lives on the buddy node's RAM (ring
    partner, SCR/FTI style).  A node failure then invalidates exactly
    the copies hosted on the lost nodes — a partner copy survives the
    owner's node dying and is lost only when the buddy dies.
    """

    def __init__(self, plan: MultiLevelPlan) -> None:
        super().__init__()
        self.plan = plan
        names = [t.name for t in plan.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in plan: {names}")
        # rank -> round -> tier name -> checkpoint copy
        self._copies: Dict[int, Dict[int, Dict[str, "Checkpoint"]]] = {}
        self._all_rounds: Dict[int, List[int]] = {}
        self.tier_writes: Dict[str, int] = {t.name: 0 for t in plan.tiers}
        self.tier_bytes: Dict[str, int] = {t.name: 0 for t in plan.tiers}
        self.invalidated_copies = 0
        self._topology: Optional["Topology"] = None

    def bind_topology(self, topology: "Topology") -> None:
        self._topology = topology

    def _tier(self, name: str) -> StorageTier:
        for t in self.plan.tiers:
            if t.name == name:
                return t
        raise KeyError(name)

    def host_node(self, tier_name: str, rank: int) -> Optional[int]:
        """Node a copy of ``rank`` in ``tier_name`` physically lives on
        (None without a bound topology).  Partner copies live on the next
        node around the ring; everything else on the owner's node."""
        if self._topology is None:
            return None
        node = self._topology.node_of(rank)
        if tier_name == "partner":
            return (node + 1) % self._topology.nnodes
        return node

    def scheduled_tiers(self, round_no: int) -> List[StorageTier]:
        """Tiers the plan writes on checkpoint round ``round_no``."""
        return [
            t
            for t, period in zip(self.plan.tiers, self.plan.periods)
            if round_no % period == 0
        ]

    def durable_tier_scheduled(self, round_no: int) -> bool:
        return any(
            t.survives_node_failure for t in self.scheduled_tiers(round_no)
        )

    def durable_round_period(self) -> Optional[int]:
        periods = [
            period
            for t, period in zip(self.plan.tiers, self.plan.periods)
            if t.survives_node_failure
        ]
        return min(periods) if periods else None

    def shared_tier_scheduled(self, round_no: int) -> bool:
        return any(t.shared for t in self.scheduled_tiers(round_no))

    def shared_write_cost_ns(
        self, ckpt: "Checkpoint", concurrent_writers: int = 1
    ) -> int:
        return sum(
            t.write_time_ns(ckpt.stored_bytes, concurrent_writers)
            for t in self.scheduled_tiers(ckpt.round_no)
            if t.shared
        )

    def amortized_write_cost_ns(
        self, nbytes: int, concurrent_writers: int = 1
    ) -> int:
        return int(self.plan.amortized_cost_ns(nbytes, concurrent_writers))

    def write_cost_ns(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> int:
        return sum(
            t.write_time_ns(ckpt.stored_bytes, concurrent_writers)
            for t in self.scheduled_tiers(ckpt.round_no)
        )

    def save(self, ckpt: "Checkpoint", concurrent_writers: int = 1) -> SaveReceipt:
        tiers = self.scheduled_tiers(ckpt.round_no)
        write_ns = 0
        per_round = self._copies.setdefault(ckpt.rank, {}).setdefault(
            ckpt.round_no, {}
        )
        for t in tiers:
            write_ns += t.write_time_ns(ckpt.stored_bytes, concurrent_writers)
            per_round[t.name] = ckpt
            self.tier_writes[t.name] += 1
            self.tier_bytes[t.name] += ckpt.stored_bytes
            self.bytes_written += ckpt.stored_bytes
        self.writes += 1
        self.write_ns_total += write_ns
        rounds = self._all_rounds.setdefault(ckpt.rank, [])
        if ckpt.round_no not in rounds:
            # A rolled-back cluster re-takes rounds it already saved;
            # keep the history sorted and duplicate-free.
            insort(rounds, ckpt.round_no)
        return SaveReceipt(
            round_no=ckpt.round_no,
            write_ns=write_ns,
            tiers=tuple(t.name for t in tiers),
            durable=any(t.survives_node_failure for t in tiers),
        )

    def invalidate_node_copies(self, ranks: Iterable[int]) -> int:
        dropped = 0
        dead = set(ranks)
        if self._topology is None:
            # No placement information: conservatively drop every
            # volatile copy owned by the dead ranks (pre-topology model).
            for rank in dead:
                for per_round in self._copies.get(rank, {}).values():
                    for name in [
                        n
                        for n in per_round
                        if not self._tier(n).survives_node_failure
                    ]:
                        del per_round[name]
                        dropped += 1
            self.invalidated_copies += dropped
            return dropped
        dead_nodes = {self._topology.node_of(r) for r in dead}
        # Placement-aware blast radius: a copy dies when the node hosting
        # it died — including partner copies owned by ranks on *live*
        # nodes whose buddy was lost.
        for rank, per_rank in self._copies.items():
            for per_round in per_rank.values():
                for name in [
                    n
                    for n in per_round
                    if not self._tier(n).survives_node_failure
                    and self.host_node(n, rank) in dead_nodes
                ]:
                    del per_round[name]
                    dropped += 1
        self.invalidated_copies += dropped
        return dropped

    # -- delta chains --------------------------------------------------
    def _chain_rounds(self, rank: int, round_no: int) -> Optional[List[int]]:
        """Rounds needed to reconstruct ``round_no``, base-full first.

        Walks ``payload.base_round`` links.  Returns None when any link
        (including ``round_no`` itself) has no surviving copy — a delta
        whose base died with a node is unusable.  Opaque (payload-less)
        checkpoints are their own one-element chain."""
        chain: List[int] = []
        rnd = round_no
        while True:
            copies = self._copies.get(rank, {}).get(rnd)
            if not copies:
                return None
            chain.append(rnd)
            ckpt = next(iter(copies.values()))
            payload = ckpt.payload
            if payload is None or payload.base_round is None:
                chain.reverse()
                return chain
            if payload.base_round in chain or len(chain) > len(
                self._copies.get(rank, {})
            ):
                raise ValueError(
                    f"rank {rank}: corrupt delta chain at round {rnd} "
                    f"(base {payload.base_round} cycles)"
                )
            rnd = payload.base_round

    def _round_durable(self, rank: int, round_no: int) -> bool:
        copies = self._copies.get(rank, {}).get(round_no) or {}
        return any(self._tier(n).survives_node_failure for n in copies)

    def guaranteed_round(self, rank: int) -> int:
        """Latest round whose *whole chain* sits on tiers that survive
        node failure.  Partner copies do not qualify: they survive any
        *single* node loss, but a later failure of the buddy can still
        take them.  A durable delta whose base is only volatile does not
        qualify either — losing the base loses the round."""
        # Newest-first: the common case (latest round durably chained)
        # returns after one chain walk instead of walking every round.
        for rnd in sorted(self._copies.get(rank, {}), reverse=True):
            chain = self._chain_rounds(rank, rnd)
            if chain is not None and all(
                self._round_durable(rank, link) for link in chain
            ):
                return rnd
        return 0

    def surviving_rounds(self, rank: int) -> List[int]:
        return sorted(
            rnd for rnd, copies in self._copies.get(rank, {}).items() if copies
        )

    def restorable_rounds(self, rank: int) -> List[int]:
        """Surviving rounds whose full delta chain also survives."""
        return [
            rnd
            for rnd in self.surviving_rounds(rank)
            if self._chain_rounds(rank, rnd) is not None
        ]

    def _cheapest_read(
        self, rank: int, round_no: int, concurrent_readers: int
    ) -> Tuple[str, "Checkpoint", int]:
        copies = self._copies[rank][round_no]
        best_name = min(
            copies,
            key=lambda n: self._tier(n).read_time_ns(
                copies[n].stored_bytes, concurrent_readers
            ),
        )
        ckpt = copies[best_name]
        read_ns = self._tier(best_name).read_time_ns(
            ckpt.stored_bytes, concurrent_readers
        )
        return best_name, ckpt, read_ns

    def retrieve(
        self, rank: int, round_no: int, concurrent_readers: int = 1
    ) -> Optional[RestoreReceipt]:
        chain = self._chain_rounds(rank, round_no)
        if chain is None:
            return None
        read_ns = 0
        tier_of_target = ""
        target: Optional["Checkpoint"] = None
        for link in chain:
            name, ckpt, link_ns = self._cheapest_read(
                rank, link, concurrent_readers
            )
            read_ns += link_ns
            if link == round_no:
                tier_of_target, target = name, ckpt
        self.read_ns_total += read_ns
        return RestoreReceipt(
            ckpt=target,
            tier=tier_of_target,
            read_ns=read_ns,
            chain=tuple(chain) if len(chain) > 1 else (),
        )

    def load_latest(self, rank: int) -> Optional["Checkpoint"]:
        rounds = self.restorable_rounds(rank)
        if not rounds:
            return None
        receipt = self.retrieve(rank, rounds[-1])
        self.read_ns_total -= receipt.read_ns  # inspection is cost-free
        return receipt.ckpt

    def rounds_of(self, rank: int) -> List[int]:
        return list(self._all_rounds.get(rank, []))


class PartnerCopyBackend(TieredBackend):
    """A :class:`TieredBackend` whose plan mirrors checkpoints into a
    buddy node's RAM (the ``partner`` tier).  The partner copy survives
    the owner's node dying — a single-node failure restarts from the
    latest round instead of falling back to the last durable round — and
    is invalidated only when both partners' nodes are lost."""

    def __init__(self, plan: Optional[MultiLevelPlan] = None) -> None:
        plan = plan or partner_default_plan()
        if not any(t.name == "partner" for t in plan.tiers):
            raise ValueError(
                "a PartnerCopyBackend plan must include the 'partner' "
                f"tier, got {[t.name for t in plan.tiers]} "
                "(e.g. 'partner:ram@1,partner@1,pfs@16')"
            )
        super().__init__(plan)


# ----------------------------------------------------------------------
# Registry: build a backend from a CLI-friendly spec string
# ----------------------------------------------------------------------

_TIER_FACTORIES = {
    "ram": ram_tier,
    "ssd": local_ssd_tier,
    "pfs": pfs_tier,
    "partner": partner_tier,
}

_BACKEND_NAMES = ("memory", "tiered", "partner")


def default_plan() -> MultiLevelPlan:
    """SCR/FTI-flavoured default: RAM every round, local SSD every 4th,
    the parallel file system every 16th."""
    return MultiLevelPlan(
        tiers=[ram_tier(), local_ssd_tier(), pfs_tier()], periods=[1, 4, 16]
    )


def partner_default_plan() -> MultiLevelPlan:
    """Partner-copy default: RAM + buddy-node mirror every round, the
    parallel file system every 16th."""
    return MultiLevelPlan(
        tiers=[ram_tier(), partner_tier(), pfs_tier()], periods=[1, 1, 16]
    )


def parse_plan(spec: str) -> MultiLevelPlan:
    """Parse ``"ram@1,ssd@4,pfs@16"`` into a :class:`MultiLevelPlan`."""
    tiers: List[StorageTier] = []
    periods: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, period = part.partition("@")
        factory = _TIER_FACTORIES.get(name.strip())
        if factory is None:
            raise ValueError(
                f"unknown tier {name.strip()!r} in plan {spec!r} "
                f"(valid tiers: {', '.join(sorted(_TIER_FACTORIES))})"
            )
        if period:
            try:
                period_val = int(period)
            except ValueError:
                raise ValueError(
                    f"bad tier period {part!r} in plan {spec!r}: "
                    f"{period!r} is not an integer (write e.g. "
                    f"'{name.strip()}@4')"
                ) from None
            if period_val < 1:
                raise ValueError(
                    f"bad tier period {part!r} in plan {spec!r}: "
                    "periods must be >= 1"
                )
        else:
            period_val = 1
        tiers.append(factory())
        periods.append(period_val)
    if not tiers:
        raise ValueError(
            f"empty tier plan {spec!r} (write e.g. 'ram@1,pfs@4')"
        )
    return MultiLevelPlan(tiers=tiers, periods=periods)


def make_backend(spec: str) -> StorageBackend:
    """Build a backend from a spec string.

    * ``"memory"`` — the free in-memory default;
    * ``"tiered"`` — :func:`default_plan` (ram@1, ssd@4, pfs@16);
    * ``"tiered:ram@1,pfs@4"`` — an explicit tier plan;
    * ``"partner"`` — :func:`partner_default_plan` (ram@1, partner@1,
      pfs@16);
    * ``"partner:ram@1,partner@1,pfs@8"`` — an explicit plan that must
      include the ``partner`` tier.
    """
    name, _, rest = spec.partition(":")
    if name == "memory":
        if rest:
            raise ValueError(
                f"the memory backend takes no arguments, got {rest!r} "
                f"in spec {spec!r}"
            )
        return InMemoryBackend()
    if name == "tiered":
        return TieredBackend(parse_plan(rest) if rest else default_plan())
    if name == "partner":
        return PartnerCopyBackend(parse_plan(rest) if rest else None)
    raise ValueError(
        f"unknown storage backend {name!r} in spec {spec!r} "
        f"(valid backends: {', '.join(_BACKEND_NAMES)})"
    )
