"""Storage tiers with bandwidth/latency and shared-medium contention.

A tier models where checkpoints (state + logs) can be written:

* the parallel file system — high capacity, survives any failure, but
  its aggregate bandwidth is *shared by every writer* (the PFS
  contention the paper's introduction warns about);
* node-local storage (SSD) — per-node bandwidth, survives process
  crashes but not node loss (hence multi-level schemes);
* RAM (partner-copy style) — fastest, least resilient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.units import GB, MB, MS, SEC, US


@dataclass(frozen=True)
class StorageTier:
    """One level of the checkpoint storage hierarchy."""

    name: str
    latency_ns: int
    bandwidth_bytes_per_s: float
    shared: bool  # True: bandwidth divided among concurrent writers
    survives_node_failure: bool
    # Restart-read bandwidth.  Real media are asymmetric (a PFS's read
    # side dodges the RAID/commit write penalty); None keeps the read
    # side equal to the write side.
    read_bandwidth_bytes_per_s: Optional[float] = None
    # Event-driven I/O only (repro.storage.iosched): True makes reads
    # and writes share ONE bandwidth lane, so a restart read genuinely
    # steals bandwidth from an in-flight async flush on the same tier
    # (the default keeps the classic separate read/write lane model).
    # Incompatible with an asymmetric read bandwidth — one lane has one
    # capacity.
    unified_lane: bool = False
    # Under TieredBackend(async_flush=True), defer this tier's writes to
    # the background I/O scheduler even though it is not shared.  Set on
    # the node-local SSD: its write sits behind a local controller, so
    # the checkpoint can commit on RAM and let the SSD copy drain
    # overlapping compute (it becomes restorable only when the flow
    # lands, like an async PFS flush).
    background_drain: bool = False

    def __post_init__(self) -> None:
        if (
            self.read_bandwidth_bytes_per_s is not None
            and self.read_bandwidth_bytes_per_s <= 0
        ):
            raise ValueError(f"{self.name}: read bandwidth must be positive")
        if self.unified_lane and self.read_bandwidth_bytes_per_s is not None:
            raise ValueError(
                f"{self.name}: unified_lane shares one lane between reads "
                "and writes, so an asymmetric read bandwidth cannot apply"
            )

    def _xfer_time_ns(self, nbytes: int, bw: float, concurrent: int) -> int:
        if nbytes < 0:
            raise ValueError("negative size")
        if concurrent < 1:
            raise ValueError("need at least one writer/reader")
        if self.shared:
            bw /= concurrent
        return self.latency_ns + int(nbytes / bw * SEC)

    def write_time_ns(self, nbytes: int, concurrent_writers: int = 1) -> int:
        """Time for one writer to persist ``nbytes``."""
        return self._xfer_time_ns(
            nbytes, self.bandwidth_bytes_per_s, concurrent_writers
        )

    def read_time_ns(self, nbytes: int, concurrent_readers: int = 1) -> int:
        """Restart-time read (the paper's 'IO burst when retrieving the
        last checkpoint' applies on the shared tier), priced at the
        tier's read-side bandwidth."""
        return self._xfer_time_ns(
            nbytes,
            self.read_bandwidth_bytes_per_s or self.bandwidth_bytes_per_s,
            concurrent_readers,
        )


def pfs_tier(
    aggregate_gb_s: float = 20.0, read_gb_s: Optional[float] = None
) -> StorageTier:
    """A parallel file system: tens-of-minutes full-system checkpoints
    at scale (paper section 2.1 cites [27]).

    ``read_gb_s`` sets the read-side aggregate bandwidth; real PFS
    installations read measurably faster than they write (no parity /
    commit penalty), and the ``ioverlap`` experiment models that with
    ``read_gb_s=24.0``.  The default (None) keeps the read side equal to
    the write side so existing cost-model pins stay bit-identical."""
    return StorageTier(
        name="pfs",
        latency_ns=5 * MS,
        bandwidth_bytes_per_s=aggregate_gb_s * GB,
        shared=True,
        survives_node_failure=True,
        read_bandwidth_bytes_per_s=(
            read_gb_s * GB if read_gb_s is not None else None
        ),
    )


def local_ssd_tier(gb_s: float = 0.5) -> StorageTier:
    return StorageTier(
        name="local-ssd",
        latency_ns=100 * US,
        bandwidth_bytes_per_s=gb_s * GB,
        shared=False,
        survives_node_failure=False,
        background_drain=True,
    )


def ram_tier(gb_s: float = 5.0) -> StorageTier:
    return StorageTier(
        name="ram",
        latency_ns=2 * US,
        bandwidth_bytes_per_s=gb_s * GB,
        shared=False,
        survives_node_failure=False,
    )


def partner_tier(gb_s: float = 1.25) -> StorageTier:
    """Partner copy: each checkpoint is mirrored into a *buddy node's*
    RAM (SCR's PARTNER scheme, FTI level 2).  Bandwidth is the inter-node
    fabric, not local memory.  ``survives_node_failure`` is False because
    the copy still lives in somebody's RAM; what makes it useful is
    *placement* — a topology-aware backend invalidates it only when the
    buddy's node is lost, so it survives the common single-node failure
    (see :class:`~repro.storage.backend.PartnerCopyBackend`)."""
    return StorageTier(
        name="partner",
        latency_ns=8 * US,
        bandwidth_bytes_per_s=gb_s * GB,
        shared=False,
        survives_node_failure=False,
    )
