"""Multi-level checkpoint planning (SCR/FTI-style, paper refs [3], [27]).

SPBC composes with multi-level checkpointing (paper reference [4]):
cluster checkpoints and logs go to fast local tiers at high frequency,
with periodic propagation to the PFS.  The planner here computes write
times per tier and a Young/Daly-style optimal interval, used by the
clustering-trade-off example to put the log-size numbers in context.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.storage.model import StorageTier
from repro.util.units import SEC


@dataclass
class MultiLevelPlan:
    """Checkpoint levels, cheapest/most-frequent first."""

    tiers: Sequence[StorageTier]
    # every level-i checkpoint happens once per `period[i]` level-0 rounds
    periods: Sequence[int]

    def __post_init__(self) -> None:
        if len(self.tiers) != len(self.periods):
            raise ValueError("one period per tier")
        if not self.tiers:
            raise ValueError("at least one tier")
        if list(self.periods) != sorted(self.periods):
            raise ValueError("periods must be non-decreasing (rarer upward)")
        if self.periods[0] != 1:
            raise ValueError("the first tier runs every round")

    def round_cost_ns(
        self, ckpt_bytes: int, round_no: int, concurrent_writers: int = 1
    ) -> int:
        """Write cost of checkpoint round ``round_no`` (1-based)."""
        cost = 0
        for tier, period in zip(self.tiers, self.periods):
            if round_no % period == 0:
                cost += tier.write_time_ns(ckpt_bytes, concurrent_writers)
        return cost

    def amortized_cost_ns(self, ckpt_bytes: int, concurrent_writers: int = 1) -> float:
        """Average per-round write cost over a full cycle."""
        cycle = self.periods[-1]
        total = sum(
            self.round_cost_ns(ckpt_bytes, r, concurrent_writers)
            for r in range(1, cycle + 1)
        )
        return total / cycle


def optimal_interval_ns(ckpt_cost_ns: int, mtbf_ns: int) -> int:
    """Young's first-order optimal checkpoint interval:
    sqrt(2 * C * MTBF)."""
    if ckpt_cost_ns <= 0 or mtbf_ns <= 0:
        raise ValueError("costs and MTBF must be positive")
    return int(math.sqrt(2.0 * ckpt_cost_ns * mtbf_ns))


#: Public name used by ``checkpoint_every="auto"`` and the docs.
optimal_interval = optimal_interval_ns


def optimal_interval_rounds(
    ckpt_cost_ns: int, mtbf_ns: int, iter_ns: float, max_rounds: int = 1_000_000
) -> int:
    """Young/Daly interval expressed in application iterations: the
    number of ``maybe_checkpoint`` boundaries between checkpoints when
    one iteration takes ``iter_ns``.  Never below 1 (checkpointing less
    than every boundary is the only knob the protocol has) and clamped
    to ``max_rounds``."""
    if iter_ns <= 0:
        raise ValueError("iteration time must be positive")
    t_opt = optimal_interval_ns(ckpt_cost_ns, mtbf_ns)
    return max(1, min(max_rounds, round(t_opt / iter_ns)))
