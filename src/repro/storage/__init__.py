"""Checkpoint storage cost models (PFS, node-local, multi-level).

The paper excludes checkpoint-writing time from its measurements and
cites multi-level checkpointing work (FTI [3], SCR [27]) for that side
of the problem; this package provides the corresponding cost models so
examples and ablations can reason about end-to-end checkpoint budgets
(e.g. why logs-to-local-storage beats everything-to-PFS).
"""

from repro.storage.model import StorageTier, pfs_tier, local_ssd_tier, ram_tier
from repro.storage.multilevel import MultiLevelPlan, optimal_interval_ns

__all__ = [
    "StorageTier",
    "pfs_tier",
    "local_ssd_tier",
    "ram_tier",
    "MultiLevelPlan",
    "optimal_interval_ns",
]
