"""Checkpoint storage: tier cost models and pluggable backends.

The paper excludes checkpoint-writing time from its measurements and
cites multi-level checkpointing work (FTI [3], SCR [27]) for that side
of the problem; this package provides the corresponding cost models
(PFS, node-local SSD, RAM) *and* the backends that execute them inside
the protocol: the free :class:`InMemoryBackend` default and the
:class:`TieredBackend` that runs a :class:`MultiLevelPlan` with write
and restart-read time charged to the simulation clock (see
``docs/storage.md``).
"""

from repro.storage.backend import (
    InMemoryBackend,
    PartnerCopyBackend,
    RestoreLink,
    RestorePlan,
    RestoreReceipt,
    SaveReceipt,
    StorageBackend,
    TieredBackend,
    default_plan,
    make_backend,
    parse_plan,
    partner_default_plan,
)
from repro.storage.iosched import ChainRead, IOScheduler
from repro.storage.model import (
    StorageTier,
    local_ssd_tier,
    partner_tier,
    pfs_tier,
    ram_tier,
)
from repro.storage.multilevel import (
    MultiLevelPlan,
    optimal_interval,
    optimal_interval_ns,
    optimal_interval_rounds,
)

__all__ = [
    "StorageTier",
    "pfs_tier",
    "local_ssd_tier",
    "ram_tier",
    "partner_tier",
    "MultiLevelPlan",
    "optimal_interval",
    "optimal_interval_ns",
    "optimal_interval_rounds",
    "StorageBackend",
    "InMemoryBackend",
    "TieredBackend",
    "PartnerCopyBackend",
    "SaveReceipt",
    "RestoreReceipt",
    "RestorePlan",
    "RestoreLink",
    "IOScheduler",
    "ChainRead",
    "make_backend",
    "parse_plan",
    "default_plan",
    "partner_default_plan",
]
