#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from benchmarks/results/*.json.

Run the benchmark suite first:

    pytest benchmarks/ --benchmark-only

then:

    python tools/generate_experiments_md.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

PAPER_TABLE1 = """\
clusters   AMG        CM1        GTC        MILC       MiniFE     MiniGhost
           avg / max  avg / max  avg / max  avg / max  avg / max  avg / max
2          0.1 / 0.4  0.1 / 0.8  0.1 / 0.9  0.1 / 0.1  0.1 / 0.1  0.3 / 1.1
4          0.2 / 0.7  0.1 / 0.7  0.1 / 0.9  0.1 / 0.1  0.1 / 0.2  0.5 / 2.1
8          0.4 / 0.7  0.2 / 1.5  0.2 / 0.9  0.2 / 0.2  0.1 / 0.3  1.1 / 2.1
16         0.5 / 0.7  0.4 / 1.5  0.4 / 0.9  0.2 / 0.3  0.1 / 0.3  1.6 / 2.1
64         1.2 / 1.4  1.5 / 2.2  1.7 / 1.7  0.4 / 0.4  0.2 / 0.3  3.7 / 4.2
512        1.7 / 2.0  2.8 / 2.9  1.7 / 1.8  0.6 / 0.6  0.5 / 0.6  5.5 / 6.3"""

PAPER_TABLE2 = """\
AMG 0.26%   CM1 0.63%   GTC 1.14%   MILC 0.07%   MiniFE 0.08%   MiniGhost 0.36%"""


def load(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def main() -> int:
    sections = []
    sections.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Regenerated from `benchmarks/results/*.json` by "
        "`tools/generate_experiments_md.py`.  Paper numbers are from the "
        "SC'13 evaluation at 512 ranks / 64 nodes; measured numbers come "
        "from the simulator at the scale noted per section "
        "(`REPRO_BENCH_RANKS`).  The reproduction target is the *shape* "
        "of each result (orderings, trends, crossovers); the absolute "
        "values depend on the calibrated compute/network model "
        "(repro/apps/calibration.py) and are expected to be in the same "
        "ballpark, not identical.\n"
    )

    t1 = load("table1")
    if t1:
        sections.append(
            f"## Table 1 — log growth rate per process (MB/s)\n\n"
            f"**Paper (512 ranks):**\n\n```\n{PAPER_TABLE1}\n```\n\n"
            f"**Measured ({t1['nranks']} ranks; cluster counts scale "
            f"accordingly, last row = pure message logging):**\n\n"
            f"```\n{t1['rendered']}\n```\n\n"
            "Shape checks (asserted by the benchmark): growth increases "
            "with cluster count for every app; MiniGhost logs the most; "
            "MiniFE/MILC the least; MILC balanced (avg = max); GTC's max "
            "constant over small cluster counts; hybrid clustering cuts "
            "logging by 2-10x versus pure message logging.\n"
        )

    t2 = load("table2")
    if t2:
        lines = [
            f"{r['app']}: {r['overhead_pct']:.3f}%" for r in t2["rows"]
        ]
        sections.append(
            f"## Table 2 — failure-free overhead (16 clusters)\n\n"
            f"**Paper:** {PAPER_TABLE2}\n\n"
            f"**Measured ({t2['nranks']} ranks):** " + "   ".join(lines) + "\n\n"
            f"```\n{t2['rendered']}\n```\n\n"
            "Shape: every app well below 1%; overhead follows the logged "
            "volume (MiniGhost/GTC highest, MILC lowest), the same "
            "relationship as the paper.  Where magnitudes differ (GTC, "
            "CM1) it is because the simulator charges only the direct "
            "logging copy, not the cache pollution a real memcpy "
            "inflicts on the surrounding computation.\n"
        )

    t2s = load("table2_sweep")
    if t2s:
        sections.append(
            f"## Section 6.3 — overhead vs cluster count (MiniGhost)\n\n"
            f"```\n{t2s['rendered']}\n```\n\n"
            "Paper: \"for lower numbers of clusters, we observed even "
            "smaller overhead\" — reproduced: overhead is monotone in the "
            "cluster count.\n"
        )

    f5 = load("fig5")
    if f5:
        sections.append(
            f"## Figure 5 — recovery time normalized to failure-free\n\n"
            "**Paper (512 ranks):** all bars < 1.0; AMG up to ~25% faster; "
            "CM1/GTC/MiniFE at best ~4% faster; smaller clusters (more "
            "inter-cluster traffic) recover faster.\n\n"
            f"**Measured ({f5['nranks']} ranks):**\n\n"
            f"```\n{f5['rendered']}\n```\n\n"
            "Shape: every configuration ≤ 1.0; AMG gains the most (its "
            "communication is latency-bound and crosses clusters); the "
            "compute-bound trio gains the least; gains grow with the "
            "cluster count.  Magnitudes are milder than the paper's "
            "(AMG: 25% there, ~12% here): with 8x fewer ranks the "
            "replayed-message share of execution time is smaller.\n"
        )

    f6 = load("fig6")
    if f6:
        sections.append(
            f"## Figure 6 — SPBC vs HydEE recovery (NAS, 8 clusters)\n\n"
            "**Paper (512 ranks):** SPBC at or below failure-free on all "
            "four; HydEE noticeably slower (up to ~2x), in some "
            "benchmarks slower than failure-free execution.\n\n"
            f"**Measured ({f6['nranks']} ranks):**\n\n"
            f"```\n{f6['rendered']}\n```\n\n"
            "Shape: SPBC ≤ 1.0 everywhere; HydEE slower on every "
            "benchmark, exceeding failure-free time where replay chains "
            "are dense (the centralized, delivery-coupled coordination "
            "cannot pre-send messages and serializes every grant).\n"
        )

    for name, title in [
        ("ablation_window", "Ablation — replay pre-post window (section 5.2.2)"),
        ("ablation_clustering", "Ablation — clustering strategy (sections 6.2/6.6)"),
        ("ablation_containment", "Ablation — containment vs logging trade-off"),
        ("ablation_online", "Ablation — online recovery, contained vs global rollback"),
    ]:
        data = load(name)
        if data:
            sections.append(f"## {title}\n\n```\n{data['rendered']}\n```\n")

    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(sections))
    print(f"wrote {out} ({len(sections)-1} result sections)")
    missing = [
        n for n in (
            "table1", "table2", "table2_sweep", "fig5", "fig6",
            "ablation_window", "ablation_clustering",
            "ablation_containment", "ablation_online",
        ) if load(n) is None
    ]
    if missing:
        print(f"note: no results yet for: {', '.join(missing)} "
              "(run pytest benchmarks/ --benchmark-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
