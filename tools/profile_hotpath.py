#!/usr/bin/env python
"""Profile the simulator's hot path on the Tier-1-shaped workloads.

The profiling run behind the PR-5 hot-path overhaul, committed so the
measurement is reproducible::

    PYTHONPATH=src python tools/profile_hotpath.py                 # all
    PYTHONPATH=src python tools/profile_hotpath.py logging --ranks 128
    PYTHONPATH=src python tools/profile_hotpath.py sync --sort cumulative

Workloads (the shapes the simperf matrix and docs/performance.md talk
about):

* ``logging`` — the Table 1 shape: ring under SPBC with singleton
  clusters (every message logged), no checkpointing;
* ``sync``    — coordinated checkpoints every 4 iterations against a
  ram+pfs plan (collective-heavy);
* ``halo``    — the 2-D halo exchange (waitall-heavy);
* ``eventq``  — not a simulation: the hold-model event-queue
  microbenchmark head-to-head on both queue backends
  (``repro.harness.simperf.queue_microbench``), then a cProfile of the
  calendar queue at the deepest depth — where the bucket hot path's
  time actually goes.

Output: raw wall-clock (profiler off), events/sec, then the cProfile
top-N by the requested sort key.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import time

from repro.apps.synthetic import halo2d_app, ring_app
from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_spbc

WORKLOADS = ("logging", "sync", "halo", "eventq")


def build(workload: str, nranks: int):
    if workload == "logging":
        factory = ring_app(iters=20, msg_bytes=4096, compute_ns=200_000)
        cm = ClusterMap.singletons(nranks)
        return lambda: run_spbc(factory, nranks, cm, trace=False)
    if workload == "sync":
        factory = ring_app(iters=20, msg_bytes=4096, compute_ns=200_000)
        cm = ClusterMap.block(nranks, max(2, nranks // 8))
        cfg = lambda: SPBCConfig(  # noqa: E731 - fresh config per run
            clusters=cm, checkpoint_every=4, state_nbytes=1 << 20
        )
        return lambda: run_spbc(
            factory, nranks, cm, config=cfg(),
            storage="tiered:ram@1,pfs@4", trace=False,
        )
    if workload == "halo":
        factory = halo2d_app(iters=10, msg_bytes=8192, compute_ns=400_000)
        cm = ClusterMap.block(nranks, max(2, nranks // 8))
        return lambda: run_spbc(factory, nranks, cm, trace=False)
    raise SystemExit(f"unknown workload {workload!r} (pick from {WORKLOADS})")


def profile_eventq(sort: str, top: int) -> None:
    from repro.harness.simperf import (
        QUEUE_BENCH_DEPTHS,
        QUEUE_BENCH_OPS,
        _hold_once,
        format_queue_microbench,
        queue_microbench,
    )
    from repro.sim.eventq import CalendarEventQueue

    print("== eventq: hold-model microbenchmark (both backends) ==")
    print(format_queue_microbench(queue_microbench()))
    depth = max(QUEUE_BENCH_DEPTHS)
    pr = cProfile.Profile()
    pr.enable()
    _hold_once(CalendarEventQueue(), depth, QUEUE_BENCH_OPS, seed=42)
    pr.disable()
    print(f"-- cProfile of the calendar queue at depth {depth} --")
    buf = io.StringIO()
    pstats.Stats(pr, stream=buf).sort_stats(sort).print_stats(top)
    print(buf.getvalue())


def profile_one(workload: str, nranks: int, sort: str, top: int) -> None:
    if workload == "eventq":
        profile_eventq(sort, top)
        return
    run = build(workload, nranks)
    # Raw wall first (profiler overhead excluded), best of 3.
    wall = min(_timed(run) for _ in range(3))
    res = run()
    events = res.world.engine.events_executed
    print(f"== {workload} @ {nranks} ranks ==")
    print(
        f"wall {wall:.3f}s   events {events}   "
        f"{events / wall / 1e3:.0f} kev/s"
    )
    pr = cProfile.Profile()
    pr.enable()
    run()
    pr.disable()
    buf = io.StringIO()
    pstats.Stats(pr, stream=buf).sort_stats(sort).print_stats(top)
    print(buf.getvalue())


def _timed(run) -> float:
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "workload", nargs="?", default=None,
        help=f"one of {WORKLOADS} (default: all)",
    )
    ap.add_argument("--ranks", type=int, default=128)
    ap.add_argument(
        "--sort", default="tottime",
        help="pstats sort key (tottime, cumulative, ncalls, ...)",
    )
    ap.add_argument("--top", type=int, default=25)
    args = ap.parse_args()
    for w in [args.workload] if args.workload else WORKLOADS:
        profile_one(w, args.ranks, args.sort, args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
