#!/usr/bin/env python3
"""Quickstart: run an MPI app under SPBC, crash a cluster, recover.

Demonstrates the three layers of the library in ~60 lines of user code:

1. write an MPI application against :class:`repro.RankContext`
   (generator style: ``yield from`` is a blocking MPI call);
2. run it failure-free under SPBC and inspect what got logged;
3. inject a mid-run crash of one cluster and watch online recovery
   (Algorithm 1) reproduce the exact failure-free results while only
   the failed cluster's processes restart.

Run:  python examples/quickstart.py
"""

from repro import ClusterMap, SPBCConfig, run_native, run_online_failure, run_spbc
from repro.apps.base import mix

NRANKS = 16
ITERS = 10


def my_stencil(ctx, state=None):
    """A tiny 1-D stencil: exchange halos with both ring neighbors, fold
    the received payloads into a checksum, checkpoint every iteration
    boundary (the protocol decides when to actually take one)."""
    start = 0 if state is None else state["iter"]
    acc = 0 if state is None else state["acc"]
    left, right = (ctx.rank - 1) % ctx.size, (ctx.rank + 1) % ctx.size
    for i in range(start, ITERS):
        yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
        yield from ctx.compute(2_000_000)  # 2 ms of "physics"
        s1 = yield from ctx.sendrecv(right, mix(0, ctx.rank, i), nbytes=8192, src=left)
        s2 = yield from ctx.sendrecv(left, mix(1, ctx.rank, i), nbytes=8192, src=right)
        acc = mix(acc, s1.payload, s2.payload)
    return acc


def main():
    clusters = ClusterMap.block(NRANKS, 4)  # 4 clusters of 4 ranks

    print("== failure-free reference (native MPI) ==")
    ref = run_native(my_stencil, NRANKS, ranks_per_node=4)
    print(f"makespan: {ref.makespan_ns/1e6:.2f} ms")

    print("\n== failure-free under SPBC ==")
    res = run_spbc(my_stencil, NRANKS, clusters, ranks_per_node=4)
    spbc = res.hooks
    print(f"makespan: {res.makespan_ns/1e6:.2f} ms "
          f"(overhead {(res.makespan_ns/ref.makespan_ns - 1)*100:.2f}%)")
    print(f"logged: {spbc.total_bytes_logged()/1024:.0f} KiB across "
          f"{sum(s.log.records_logged for s in spbc.state.values())} messages "
          f"(only inter-cluster traffic)")
    assert res.results == ref.results

    print("\n== crash cluster 0 at 60% of the run, online recovery ==")
    cfg = SPBCConfig(clusters=clusters, checkpoint_every=3)
    out = run_online_failure(
        my_stencil, NRANKS, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.6),
        fail_rank=0,
        config=cfg,
        ranks_per_node=4,
    )
    ev = out.manager.failures[0]
    print(f"failed cluster: {ev.cluster}; restarted ranks: {sorted(out.restarted_ranks)} "
          f"(from checkpoint round {ev.restarted_from_round})")
    print(f"makespan with failure: {out.makespan_ns/1e6:.2f} ms "
          f"({out.makespan_ns/ref.makespan_ns:.2f}x failure-free)")
    assert out.results == ref.results, "recovery must reproduce the results"
    print("results identical to the failure-free run: OK")
    print(f"failure containment: {NRANKS - len(out.restarted_ranks)} of "
          f"{NRANKS} ranks never rolled back")


if __name__ == "__main__":
    main()
