#!/usr/bin/env python3
"""Distributed vs centralized recovery: SPBC against HydEE on NAS LU.

LU's wavefront sweeps produce thousands of small, latency-bound messages
on deep dependency chains — the worst case for HydEE's coordinator,
which must order every replayed message behind everything it causally
depends on.  SPBC replays each channel independently and never
synchronizes (paper section 6.5 / Figure 6).

Run:  python examples/recovery_comparison.py   (~1 min)
"""

from repro.apps.base import get_app
from repro.apps.calibration import PAPER_NET
from repro.baselines.hydee import HydEEPlan, compute_levels, run_hydee_recovery
from repro.core.clusters import ClusterMap
from repro.core.emulated import ReplayPlan
from repro.harness.runner import run_emulated_recovery, run_native, run_spbc
from repro.util.table import format_table

NRANKS = 64
RPN = 8
K = 8
APP_PARAMS = dict(iters=4)


def main():
    app = get_app("lu").factory(**APP_PARAMS)
    clusters = ClusterMap.block(NRANKS, K)

    print(f"NAS LU, {NRANKS} ranks, {K} clusters")
    native = run_native(app, NRANKS, ranks_per_node=RPN, net_params=PAPER_NET, trace=False)
    print(f"failure-free: {native.makespan_ns/1e6:.1f} ms")

    res = run_spbc(app, NRANKS, clusters, ranks_per_node=RPN, net_params=PAPER_NET)
    plan = ReplayPlan.from_run(res.hooks, res.makespan_ns)
    print(f"logged messages to replay into the failed cluster: {plan.total_records}")

    spbc_rec = run_emulated_recovery(
        app, NRANKS, clusters, plan,
        reference_ns=native.makespan_ns, ranks_per_node=RPN, net_params=PAPER_NET,
    )

    hplan = HydEEPlan.from_run(res.hooks, res.trace, res.makespan_ns)
    hydee_rec = run_hydee_recovery(
        app, NRANKS, clusters, hplan,
        reference_ns=native.makespan_ns, ranks_per_node=RPN, net_params=PAPER_NET,
    )

    print(format_table(
        ["protocol", "rework (ms)", "normalized", "coordination msgs"],
        [
            ["SPBC", spbc_rec.rework_ns / 1e6, spbc_rec.normalized, 0],
            ["HydEE", hydee_rec.rework_ns / 1e6, hydee_rec.normalized,
             hydee_rec.grants + hydee_rec.acks],
        ],
        title="\nrecovery of the cluster containing rank 0",
        float_fmt="{:.3f}",
    ))
    ratio = hydee_rec.rework_ns / spbc_rec.rework_ns
    print(f"\nSPBC recovers {ratio:.2f}x faster than HydEE here.")
    print("SPBC < 1.0: recovery is *faster* than failure-free execution "
          "(skipped sends,\npre-replayed messages); HydEE pays a grant "
          "round-trip per replayed message\nthrough one serialized coordinator.")


if __name__ == "__main__":
    main()
