#!/usr/bin/env python3
"""Multi-level checkpointing end to end: tier costs and survivability.

Runs the same ring workload three times under SPBC with a two-level
checkpoint plan (RAM every round, PFS every 2nd round):

* failure-free — checkpoint write time shows up in the makespan;
* a *process* failure — RAM partner copies survive, so the cluster
  restarts from the latest round at RAM read speed;
* a *node* failure at the same instant — the RAM copies die with the
  machines, so the restart falls back to the PFS copy of an earlier
  round (deeper tier, longer read, more rework), yet the run still
  converges to the reference results.

Run:  python examples/multilevel_checkpoint.py   (a few seconds)
"""

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_native, run_online_failure, run_spbc
from repro.storage.backend import make_backend
from repro.apps.synthetic import ring_app

NRANKS = 8
RPN = 2
PLAN = "tiered:ram@1,pfs@2"
APP = dict(iters=8, msg_bytes=64 * 1024, compute_ns=400_000)


def fresh_config(clusters):
    return SPBCConfig(
        clusters=clusters, checkpoint_every=2, storage=make_backend(PLAN)
    )


def main():
    app = ring_app(**APP)
    clusters = ClusterMap.block(NRANKS, 4)

    native = run_native(app, NRANKS, ranks_per_node=RPN, trace=False)
    free = run_spbc(
        app, NRANKS, clusters, config=fresh_config(clusters),
        ranks_per_node=RPN, trace=False,
    )
    backend = free.hooks.storage
    print(f"failure-free: native {native.makespan_ns/1e6:.2f} ms, "
          f"SPBC+tiered {free.makespan_ns/1e6:.2f} ms "
          f"(checkpoint writes: {backend.write_ns_total/1e6:.2f} ms total)")
    for name in backend.tier_writes:
        print(f"  tier {name:>4}: {backend.tier_writes[name]} copies, "
              f"{backend.tier_bytes[name]/1e6:.2f} MB")

    # Fail rank 0's cluster between its 3rd and 4th checkpoint rounds:
    # round 3 exists only in RAM, round 2 is the newest PFS copy.
    latest = backend.load_latest(0)
    assert latest is not None and latest.round_no >= 4
    t3 = backend.retrieve(0, 3).ckpt.taken_at_ns
    t4 = backend.retrieve(0, 4).ckpt.taken_at_ns
    fail_at = (t3 + t4) // 2

    print(f"\ninjecting failures at {fail_at/1e6:.2f} ms "
          f"(cluster of rank 0; restart reads charged to the clock):")
    rows = []
    for kind in ("process", "node"):
        out = run_online_failure(
            app, NRANKS, clusters,
            fail_at_ns=fail_at, fail_rank=0,
            config=fresh_config(clusters),
            ranks_per_node=RPN, failure_kind=kind, trace=False,
        )
        assert out.results == native.results, f"{kind} recovery diverged"
        ev = out.manager.failures[0]
        rows.append((kind, ev.restarted_from_round, ev.restored_tier or "-",
                     ev.invalidated_copies, ev.restore_read_ns / 1e6,
                     out.makespan_ns / 1e6))

    print(f"\n{'failure':>8} {'round':>6} {'tier':>6} {'lost copies':>12} "
          f"{'read (ms)':>10} {'makespan (ms)':>14}")
    for kind, rnd, tier, lost, read_ms, mk in rows:
        print(f"{kind:>8} {rnd:>6} {tier:>6} {lost:>12} "
              f"{read_ms:>10.3f} {mk:>14.2f}")
    print(
        "\nReading the table: a process crash restarts from the newest\n"
        "round out of RAM; a node loss invalidates the RAM copies and\n"
        "falls back to the PFS round — an older cut, a slower read, and\n"
        "a longer run, but identical final results."
    )


if __name__ == "__main__":
    main()
