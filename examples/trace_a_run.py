#!/usr/bin/env python3
"""Trace a run: record a timeline + metrics while simulating.

Runs a small ring workload under SPBC with a node failure injected
mid-run, telemetry enabled (``repro.obs``), and then:

* writes a Chrome trace-event file — open it at https://ui.perfetto.dev
  or ``chrome://tracing`` to see per-rank compute / mpi-wait /
  checkpoint / restart lanes, the engine's queue-depth counter, and the
  storage-tier flow lanes;
* prints the metrics snapshot as the same tables ``--metrics`` prints.

Recording is observation-only: the run's observables are bit-identical
with telemetry on or off (tests/obs/test_telemetry_off.py gates this).

Run:  python examples/trace_a_run.py [out.trace.json]
"""

import json
import sys

from repro import ClusterMap, SPBCConfig
from repro.apps.synthetic import ring_app
from repro.harness.runner import run_failure_schedule
from repro.obs import Telemetry, format_metrics
from repro.obs.schema import trace_lane_counts, validate_chrome_trace

NRANKS = 32


def main(out_path: str = "ring_failure.trace.json") -> int:
    cm = ClusterMap.block(NRANKS, 8)
    tele = Telemetry()
    res = run_failure_schedule(
        ring_app(iters=12, msg_bytes=4096, compute_ns=200_000),
        NRANKS,
        cm,
        # One node failure at t=3 ms: kills a node, rolls back its
        # cluster, restarts from the latest durable checkpoint.
        [(3_000_000, 5, "node")],
        config=SPBCConfig(clusters=cm, checkpoint_every=3,
                          state_nbytes=1 << 16),
        storage="tiered:ram@1,pfs@4:async",
        ranks_per_node=8,
        telemetry=tele,
    )
    print(f"makespan: {res.makespan_ns / 1e6:.2f} ms simulated, "
          f"restarted ranks: {sorted(res.restarted_ranks)}")

    doc = tele.to_chrome()
    problems = validate_chrome_trace(doc)
    assert not problems, problems
    with open(out_path, "w") as fh:
        json.dump(doc, fh)
    lanes = ", ".join(
        f"{name}={n}" for name, n in sorted(trace_lane_counts(doc).items())
    )
    print(f"wrote {len(doc['traceEvents'])} trace events to {out_path} "
          f"({lanes})")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    print()
    print(format_metrics(tele.metrics_snapshot()))
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
