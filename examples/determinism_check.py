#!/usr/bin/env python3
"""Check whether *your* application is safe for SPBC.

SPBC requires channel-determinism (Definition 2).  This example runs two
programs under several network timings and reports:

* the AMG-style probe/reply exchange: channel-deterministic (SPBC-safe)
  but NOT send-deterministic (protocols like HydEE that rely on
  per-process send order would infer wrong dependencies);
* a first-come-first-served master/worker: not even channel-
  deterministic — the checker pinpoints the diverging channel, and SPBC
  must not be used (section 3.4 excludes this class).

Run:  python examples/determinism_check.py
"""

from repro.core.determinism import check_channel_determinism, check_send_determinism
from repro.harness.runner import run_native
from repro.apps.synthetic import master_worker_app, probe_reply_app
from repro.sim.network import NetworkParams


def sample_traces(app, nranks, nseeds=4):
    traces = []
    for seed in range(nseeds):
        res = run_native(
            app, nranks, ranks_per_node=4, seed=seed,
            net_params=NetworkParams(jitter_max_ns=100_000),
        )
        traces.append(res.trace)
    return traces


def verdict(name, traces):
    chan = check_channel_determinism(traces)
    send = check_send_determinism(traces)
    print(f"\n{name}:")
    print(f"  channel-deterministic: {chan.deterministic}  "
          f"{'-> SPBC applies' if chan.deterministic else '-> SPBC does NOT apply'}")
    print(f"  send-deterministic:    {send.deterministic}")
    shown = (chan.mismatches or send.mismatches)[:2]
    for m in shown:
        print(f"    divergence: {m}")


def main():
    print("sampling 4 executions per app under different network timings...")
    verdict(
        "probe/reply exchange (AMG Figure 4 pattern)",
        sample_traces(probe_reply_app(iters=2, contacts_per_rank=3), nranks=8),
    )
    verdict(
        "master/worker (first-come-first-served)",
        sample_traces(master_worker_app(tasks=12), nranks=5),
    )


if __name__ == "__main__":
    main()
