#!/usr/bin/env python3
"""The hybrid protocol's core trade-off, on MiniGhost (paper section 6.6).

Sweeps the cluster count and reports, per configuration:

* how many ranks roll back on a failure (containment),
* the per-process log growth (memory cost, Table 1's metric),
* the recovery speed (Figure 5's metric),
* a multi-level-checkpoint context line: how long the logs + state take
  to persist on node-local storage vs the PFS.

Run:  python examples/clustering_tradeoff.py   (~1 min)
"""

from repro.apps.base import get_app
from repro.apps.calibration import PAPER_NET
from repro.core.emulated import ReplayPlan
from repro.harness.runner import run_emulated_recovery, run_native, run_spbc
from repro.core.clusters import ClusterMap
from repro.clustering.partition import cluster_by_communication
from repro.sim.network import Topology
from repro.storage.model import local_ssd_tier, pfs_tier
from repro.util.table import format_table
from repro.util.units import MB, mb_per_s

NRANKS = 64
RPN = 8
APP_PARAMS = dict(iters=3, nvars=12)


def main():
    app = get_app("minighost").factory(**APP_PARAMS)
    print(f"profiling MiniGhost on {NRANKS} ranks...")
    native = run_native(app, NRANKS, ranks_per_node=RPN, net_params=PAPER_NET, trace=False)
    full = run_spbc(
        app, NRANKS, ClusterMap.singletons(NRANKS),
        ranks_per_node=RPN, net_params=PAPER_NET,
    )
    bytes_mat = full.trace.comm_bytes_matrix(NRANKS).astype(float)
    topo = Topology(NRANKS, RPN)

    rows = []
    for k in sorted({2, 4, 8, NRANKS // RPN}):
        cm = cluster_by_communication(bytes_mat + bytes_mat.T, k, topology=topo)
        assign = cm.cluster_of
        logged = [
            sum(bytes_mat[r, d] for d in range(NRANKS) if assign[r] != assign[d])
            for r in range(NRANKS)
        ]
        plan = ReplayPlan.from_run(full.hooks, full.makespan_ns, clusters=cm)
        rec = run_emulated_recovery(
            app, NRANKS, cm, plan,
            reference_ns=native.makespan_ns,
            ranks_per_node=RPN, net_params=PAPER_NET,
        )
        max_logged = max(logged)
        rows.append([
            k,
            NRANKS // k,
            mb_per_s(int(sum(logged) / NRANKS), full.makespan_ns),
            mb_per_s(int(max_logged), full.makespan_ns),
            rec.normalized,
            local_ssd_tier().write_time_ns(int(max_logged) + 200 * MB) / 1e6,
            pfs_tier().write_time_ns(int(max_logged) + 200 * MB, NRANKS) / 1e6,
        ])

    print(format_table(
        ["clusters", "ranks/failure", "avg log MB/s", "max log MB/s",
         "recovery (norm.)", "ckpt->SSD (ms)", "ckpt->PFS (ms)"],
        rows,
        title=f"\nMiniGhost, {NRANKS} ranks: containment vs logging vs recovery",
        float_fmt="{:.2f}",
    ))
    print(
        "\nReading the table: more clusters -> fewer ranks roll back and\n"
        "recovery gets faster (more messages come from logs), but every\n"
        "process logs more. The paper's section 6.6 discussion, quantified."
    )


if __name__ == "__main__":
    main()
