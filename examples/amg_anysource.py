#!/usr/bin/env python3
"""The paper's Figure 2 scenario: why SPBC needs the pattern API.

Three processes; p0 and p1 share a cluster, p2 lives in another.  The
program guarantees deliver(m0) always-happens-before deliver(m2) — but
p1 receives both with MPI_ANY_SOURCE.  After a failure of {p0, p1}, m2
is replayed from p2's log *immediately*, overtaking the re-executed m0.

Without identifiers the recovery delivers ["m2", "m0"]: an execution
that can never happen failure-free (a mismatch, section 4.2.1).  With
the section 5.1 API (DECLARE_PATTERN / BEGIN_ITERATION / END_ITERATION)
the matching engine refuses the cross-iteration match and recovery is
correct.

Run:  python examples/amg_anysource.py
"""

from repro import ClusterMap, SPBC, SPBCConfig, run_emulated_recovery, run_spbc
from repro.core.emulated import ReplayPlan
from repro.apps.synthetic import fig2_app

CLUSTERS = ClusterMap([0, 0, 1])  # {p0, p1} | {p2}


def run_one(use_pattern_api: bool):
    app = fig2_app(use_pattern_api=use_pattern_api)
    # Phase 1: failure-free run, sender-side logs fill up.
    res = run_spbc(app, 3, CLUSTERS, ranks_per_node=2)
    assert res.results[1] == ["m0", "m2"], "failure-free is always valid"
    plan = ReplayPlan.from_run(res.hooks, res.makespan_ns)
    # Phase 2: cluster {p0, p1} re-executes; p2 replays m2 from its log.
    hooks = SPBC(SPBCConfig(
        clusters=CLUSTERS,
        ident_matching=use_pattern_api,
        emulated_recovering=set(plan.recovering_ranks),
    ))
    rec = run_emulated_recovery(app, 3, CLUSTERS, plan, hooks=hooks, ranks_per_node=2)
    return rec.results[1]


def main():
    print("failure-free delivery order at p1:   ['m0', 'm2']")
    got = run_one(use_pattern_api=False)
    print(f"recovery WITHOUT identifiers:        {got}   <- mismatch, invalid execution")
    assert got == ["m2", "m0"]
    got = run_one(use_pattern_api=True)
    print(f"recovery WITH the pattern API:       {got}   <- correct")
    assert got == ["m0", "m2"]
    print("\nThe identifier (pattern_id, iteration_id) travels with every "
          "message and request;\nthe modified matching function only pairs "
          "equals — exactly the two conditions of section 4.3.")


if __name__ == "__main__":
    main()
