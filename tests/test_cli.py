"""CLI entry point (`python -m repro ...`)."""

import os

import pytest

from repro.__main__ import main


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_RANKS", raising=False)
    monkeypatch.delenv("REPRO_BENCH_RPN", raising=False)
    yield
    # main() writes these into os.environ; scrub them so later-collected
    # tests (the benchmarks) don't inherit this test's tiny scale.
    os.environ.pop("REPRO_BENCH_RANKS", None)
    os.environ.pop("REPRO_BENCH_RPN", None)


def test_apps_listing(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("amg", "minighost", "bt", "ring"):
        assert name in out
    assert "ANY_SOURCE" in out


def test_table1_small_scale(capsys):
    assert main(["table1", "--ranks", "8", "--rpn", "2", "--apps", "milc"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "milc.max" in out


def test_env_propagation(capsys, monkeypatch):
    main(["table1", "--ranks", "8", "--rpn", "4", "--apps", "minife"])
    assert os.environ["REPRO_BENCH_RANKS"] == "8"
    assert os.environ["REPRO_BENCH_RPN"] == "4"


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["tableX"])


def test_ckptcost_small_scale(capsys):
    assert main(["ckptcost", "--ranks", "8", "--rpn", "2"]) == 0
    out = capsys.readouterr().out
    assert "Checkpoint cost" in out
    for plan in ("memory", "local", "multilevel", "pfs-only"):
        assert plan in out


def test_ckptcost_explicit_storage_spec(capsys):
    assert main(
        ["ckptcost", "--ranks", "8", "--rpn", "2",
         "--storage", "tiered:ram@1,pfs@2"]
    ) == 0
    out = capsys.readouterr().out
    assert "tiered:ram@1,pfs@2" in out
