"""CLI entry point (`python -m repro ...`)."""

import os

import pytest

from repro.__main__ import main


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_RANKS", raising=False)
    monkeypatch.delenv("REPRO_BENCH_RPN", raising=False)
    yield
    # main() writes these into os.environ; scrub them so later-collected
    # tests (the benchmarks) don't inherit this test's tiny scale.
    os.environ.pop("REPRO_BENCH_RANKS", None)
    os.environ.pop("REPRO_BENCH_RPN", None)


def test_apps_listing(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("amg", "minighost", "bt", "ring"):
        assert name in out
    assert "ANY_SOURCE" in out


def test_table1_small_scale(capsys):
    assert main(["table1", "--ranks", "8", "--rpn", "2", "--apps", "milc"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "milc.max" in out


def test_env_propagation(capsys, monkeypatch):
    main(["table1", "--ranks", "8", "--rpn", "4", "--apps", "minife"])
    assert os.environ["REPRO_BENCH_RANKS"] == "8"
    assert os.environ["REPRO_BENCH_RPN"] == "4"


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["tableX"])


def test_ckptcost_small_scale(capsys):
    assert main(["ckptcost", "--ranks", "8", "--rpn", "2"]) == 0
    out = capsys.readouterr().out
    assert "Checkpoint cost" in out
    for plan in ("memory", "local", "multilevel", "pfs-only"):
        assert plan in out


def test_ckptcost_explicit_storage_spec(capsys):
    assert main(
        ["ckptcost", "--ranks", "8", "--rpn", "2",
         "--storage", "tiered:ram@1,pfs@2"]
    ) == 0
    out = capsys.readouterr().out
    assert "tiered:ram@1,pfs@2" in out


def test_blastradius_small_scale(capsys):
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2", "--mtbf", "0.02"]
    ) == 0
    out = capsys.readouterr().out
    assert "Blast radius" in out
    assert "no-partner" in out
    # a bare-partner row, not just the "partner" inside "no-partner"
    assert any(
        "partner" in line and "no-partner" not in line
        for line in out.splitlines()
    )
    assert "Auto checkpoint interval" in out


def test_blastradius_explicit_storage(capsys):
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2",
         "--storage", "partner:ram@1,partner@1,pfs@3", "--mtbf", "0.02"]
    ) == 0
    out = capsys.readouterr().out
    assert "partner:ram@1,partner@1,pfs@3" in out


def test_blastradius_rejects_malformed_storage(capsys):
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2",
         "--storage", "tiered:floppy@1"]
    ) == 2
    err = capsys.readouterr().err
    assert "'floppy'" in err and "ram" in err


def test_blastradius_rejects_bad_checkpoint_every(capsys):
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2",
         "--checkpoint-every", "sometimes"]
    ) == 2
    assert "'sometimes'" in capsys.readouterr().err
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2",
         "--checkpoint-every", "0"]
    ) == 2
    assert ">= 1" in capsys.readouterr().err


def test_blastradius_rejects_nonpositive_mtbf(capsys):
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2", "--mtbf", "-1"]
    ) == 2
    assert "MTBF" in capsys.readouterr().err


def test_blastradius_memory_storage_skips_auto_interval(capsys):
    """The free store has no write cost: the blast table (the requested
    artifact) still prints and the command succeeds; the Young/Daly
    ride-along is skipped with an actionable note."""
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2", "--storage", "memory"]
    ) == 0
    out = capsys.readouterr().out
    assert "Blast radius" in out
    assert "skipped" in out and "cost-modeled" in out
    assert "Auto checkpoint interval" not in out


def test_deltachain_small_scale(capsys):
    assert main(
        ["deltachain", "--ranks", "8", "--rpn", "2", "--apps", "minife"]
    ) == 0
    out = capsys.readouterr().out
    assert "Delta chains" in out
    assert "incr" in out and "full" in out


def test_deltachain_explicit_ckpt_data_and_storage(capsys):
    assert main(
        ["deltachain", "--ranks", "8", "--rpn", "2", "--apps", "milc",
         "--ckpt-data", "incr:2:lz4-like", "--storage", "tiered:ram@1,pfs@2"]
    ) == 0
    out = capsys.readouterr().out
    assert "incr:2:lz4-like" in out


def test_deltachain_rejects_malformed_ckpt_data(capsys):
    assert main(
        ["deltachain", "--ranks", "8", "--rpn", "2",
         "--ckpt-data", "incr:4:zstd"]
    ) == 2
    err = capsys.readouterr().err
    assert "--ckpt-data" in err and "zstd" in err


def test_deltachain_rejects_malformed_storage(capsys):
    assert main(
        ["deltachain", "--ranks", "8", "--rpn", "2",
         "--storage", "tiered:floppy@1"]
    ) == 2
    assert "floppy" in capsys.readouterr().err


def test_ckptcost_rejects_malformed_storage(capsys):
    assert main(
        ["ckptcost", "--ranks", "8", "--rpn", "2", "--storage", "warp@1"]
    ) == 2
    err = capsys.readouterr().err
    assert "'warp@1'" in err


def test_blastradius_auto_cadence_accepted(capsys):
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2",
         "--checkpoint-every", "auto", "--mtbf", "0.02"]
    ) == 0
    out = capsys.readouterr().out
    assert "Blast radius" in out and "Auto checkpoint interval" in out


def test_blastradius_auto_with_memory_storage_rejected(capsys):
    assert main(
        ["blastradius", "--ranks", "8", "--rpn", "2",
         "--checkpoint-every", "auto", "--storage", "memory"]
    ) == 2
    assert "cost-modeled" in capsys.readouterr().err


def test_ioverlap_small_scale(capsys):
    assert main(
        ["ioverlap", "--ranks", "8", "--rpn", "2", "--apps", "minife"]
    ) == 0
    out = capsys.readouterr().out
    assert "I/O overlap" in out
    assert "sync" in out and "async" in out


def test_ioverlap_explicit_storage(capsys):
    assert main(
        ["ioverlap", "--ranks", "8", "--rpn", "2", "--apps", "milc",
         "--storage", "tiered:ram@1,pfs@2"]
    ) == 0
    assert "I/O overlap" in capsys.readouterr().out


def test_ioverlap_rejects_async_spec(capsys):
    assert main(
        ["ioverlap", "--ranks", "8", "--rpn", "2",
         "--storage", "tiered:ram@1,pfs@2:async"]
    ) == 2
    err = capsys.readouterr().err
    assert "base" in err and "async" in err


def test_ioverlap_rejects_malformed_storage(capsys):
    assert main(
        ["ioverlap", "--ranks", "8", "--rpn", "2",
         "--storage", "tiered:floppy@1"]
    ) == 2
    assert "floppy" in capsys.readouterr().err


# ----------------------------------------------------------------------
# journal / replay subcommands
# ----------------------------------------------------------------------

def _record_args(path):
    return [
        "journal", str(path), "--record", "--ranks", "8", "--rpn", "2",
        "--clusters", "4", "--iters", "8",
        "--schedule", "3:2:process",
    ]


def test_journal_record_inspect_replay_resume(tmp_path, capsys):
    path = tmp_path / "run.journal"
    assert main(_record_args(path)) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and '"complete": true' in out

    assert main(["journal", str(path)]) == 0
    out = capsys.readouterr().out
    assert '"app": "ring"' in out and '"projections"' in out

    assert main(["replay", str(path)]) == 0
    assert "replay-strict: OK" in capsys.readouterr().out

    assert main(["replay", str(path), "--shards", "2"]) == 0
    assert "replay-strict: OK" in capsys.readouterr().out

    assert main(["replay", str(path), "--resume"]) == 0
    assert "already complete" in capsys.readouterr().out


def test_replay_reports_divergence(tmp_path, capsys):
    import json

    path = tmp_path / "run.journal"
    assert main(_record_args(path)) == 0
    capsys.readouterr()
    lines = path.read_text().splitlines()
    for i, ln in enumerate(lines):
        rec = json.loads(ln)
        if rec.get("k") == "commit":
            rec["nbytes"] += 1
            lines[i] = json.dumps(rec)
            break
    path.write_text("\n".join(lines) + "\n")
    assert main(["replay", str(path)]) == 1
    assert "REPLAY DIVERGED at LSN" in capsys.readouterr().err


def test_journal_requires_path(capsys):
    assert main(["journal"]) == 2
    assert "requires a journal PATH" in capsys.readouterr().err
    assert main(["replay"]) == 2
    assert "requires a journal PATH" in capsys.readouterr().err


def test_journal_rejects_bad_inputs(tmp_path, capsys):
    assert main(["journal", str(tmp_path / "nope.journal")]) == 2
    assert "cannot load" in capsys.readouterr().err
    assert main(
        ["journal", str(tmp_path / "x.journal"), "--record",
         "--schedule", "3:2:meteor"]
    ) == 2
    assert "meteor" in capsys.readouterr().err


def test_journal_path_rejected_for_other_experiments(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "stray.journal"])
    assert "no journal path" in capsys.readouterr().err


# ----------------------------------------------------------------------
# trace subcommand and telemetry flags
# ----------------------------------------------------------------------

def _load_valid_trace(path):
    import json

    from repro.obs.schema import validate_chrome_trace

    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []
    return doc


def test_trace_projects_a_journal_without_resimulating(tmp_path, capsys):
    path = tmp_path / "run.journal"
    assert main(_record_args(path)) == 0
    capsys.readouterr()
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "journal projection" in out and "wrote" in out
    doc = _load_valid_trace(tmp_path / "run.journal.trace.json")
    assert any(
        e.get("ph") == "X" and e.get("name") == "checkpoint"
        for e in doc["traceEvents"]
    )


def test_trace_run_replays_with_full_instrumentation(tmp_path, capsys):
    path = tmp_path / "run.journal"
    assert main(_record_args(path)) == 0
    capsys.readouterr()
    trace_out = tmp_path / "full.trace.json"
    assert main(
        ["trace", str(path), "--run", "--trace-out", str(trace_out),
         "--metrics"]
    ) == 0
    out = capsys.readouterr().out
    assert "strict replay" in out
    assert "Counters" in out and "spbc.commits" in out
    doc = _load_valid_trace(trace_out)
    # Live replay has engine-internal lanes the projection cannot have.
    assert any(
        e.get("ph") == "C" and e.get("name") == "queue depth"
        for e in doc["traceEvents"]
    )


def test_journal_record_with_telemetry_flags(tmp_path, capsys):
    path = tmp_path / "run.journal"
    trace_out = tmp_path / "rec.trace.json"
    assert main(
        _record_args(path) + ["--trace-out", str(trace_out), "--metrics"]
    ) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "Counters" in out
    _load_valid_trace(trace_out)
    # The journal itself still replays strictly (recording was
    # observation-only even with telemetry on).
    assert main(["replay", str(path)]) == 0
    assert "replay-strict: OK" in capsys.readouterr().out


def test_replay_with_metrics_prints_tables(tmp_path, capsys):
    path = tmp_path / "run.journal"
    assert main(_record_args(path)) == 0
    capsys.readouterr()
    assert main(["replay", str(path), "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "replay-strict: OK" in out and "Counters" in out
