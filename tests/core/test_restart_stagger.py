"""Staggered restarts: spreading a multi-cluster rollback's read burst.

When one node failure rolls back several clusters at once, every member
opens its restore pipeline against the shared tier simultaneously and
the PFS read lane melts.  ``restart_stagger_ns`` offsets the i-th
affected cluster's restart by ``i * stagger``, so the *measured* read
flow timeline (``shared_read_flow_windows``) shows fewer concurrent
readers — the restart-side analogue of ``pfs_stagger_ns`` on the write
side.
"""

import pytest

from repro.apps.synthetic import ring_app
from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_failure_schedule, run_spbc
from repro.util.units import MB, MS

NRANKS = 8
RPN = 4  # node 0 hosts ranks 0-3 = clusters {0, 1} under block(8, 4)
K = 4  # four 2-rank clusters: {0,1},{2,3},{4,5},{6,7}

STATE = 4 * MB
PLAN = "tiered:ram@1,pfs@2:async"


def app(iters=10):
    return ring_app(iters=iters, msg_bytes=2048, compute_ns=2 * MS)


def _config():
    cm = ClusterMap.block(NRANKS, K)
    return cm, SPBCConfig(clusters=cm, checkpoint_every=2, state_nbytes=STATE)


def _fail_after_round2_drain():
    """A node-failure instant at which every rank's round-2 PFS copy has
    fully drained (measured from a probe run's flow windows)."""
    cm, cfg = _config()
    probe = run_spbc(app(), NRANKS, cm, config=cfg, storage=PLAN,
                     ranks_per_node=RPN)
    ends = [
        end
        for (start, end, rank, rnd) in probe.hooks.storage.shared_flow_windows()
        if rnd == 2
    ]
    assert len(ends) == NRANKS
    return max(ends) + 100_000


def run_with_stagger(stagger_ns, fail_at):
    cm, cfg = _config()
    return run_failure_schedule(
        app(), NRANKS, cm, [(fail_at, 0, "node")],
        config=cfg, storage=PLAN, ranks_per_node=RPN,
        restart_stagger_ns=stagger_ns,
    )


def peak_concurrent_readers(backend):
    events = []
    for start, end, _rank, _rnd in backend.shared_read_flow_windows():
        events.append((start, 1))
        events.append((end, -1))
    events.sort(key=lambda e: (e[0], e[1]))
    peak = cur = 0
    for _, delta in events:
        cur += delta
        peak = max(peak, cur)
    return peak


def test_restart_stagger_drops_peak_concurrent_readers():
    fail_at = _fail_after_round2_drain()
    flat = run_with_stagger(0, fail_at)
    spread = run_with_stagger(20 * MS, fail_at)
    # The node loss rolls back both of node 0's clusters.
    assert flat.restarted_ranks == spread.restarted_ranks == {0, 1, 2, 3}
    pk_flat = peak_concurrent_readers(flat.world.hooks.storage)
    pk_spread = peak_concurrent_readers(spread.world.hooks.storage)
    # Unstaggered, both clusters' members read concurrently; a stagger
    # wider than one cluster's pipeline leaves only one cluster reading.
    assert pk_flat == 4
    assert pk_spread == 2
    # Same recovery outcome either way: identical results, restarted
    # from the same drained round.
    assert spread.results == flat.results
    flat_ev = {ev.cluster: ev for ev in flat.manager.failures}
    spread_ev = {ev.cluster: ev for ev in spread.manager.failures}
    assert set(flat_ev) == set(spread_ev) == {0, 1}
    for c in (0, 1):
        assert flat_ev[c].restarted_from_round == 2
        assert spread_ev[c].restarted_from_round == 2


def test_restart_stagger_offsets_scale_with_blast_index():
    """Cluster i's read pipeline opens ~i * stagger after the first;
    measured, not assumed."""
    fail_at = _fail_after_round2_drain()
    stagger = 20 * MS
    spread = run_with_stagger(stagger, fail_at)
    windows = spread.world.hooks.storage.shared_read_flow_windows()
    cm = ClusterMap.block(NRANKS, K)
    first_read = {}
    for start, _end, rank, _rnd in windows:
        c = cm.cluster(rank)
        first_read[c] = min(first_read.get(c, start), start)
    assert set(first_read) == {0, 1}
    gap = first_read[1] - first_read[0]
    assert gap >= stagger
    assert gap < stagger + 5 * MS


def test_restart_stagger_zero_is_the_default_and_free():
    fail_at = _fail_after_round2_drain()
    cm, cfg = _config()
    default = run_failure_schedule(
        app(), NRANKS, cm, [(fail_at, 0, "node")],
        config=cfg, storage=PLAN, ranks_per_node=RPN,
    )
    flat = run_with_stagger(0, fail_at)
    assert default.makespan_ns == flat.makespan_ns
    assert default.results == flat.results
