"""Unit tests for cluster maps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import ClusterMap
from repro.sim.network import Topology


def test_block_partition():
    cm = ClusterMap.block(8, 2)
    assert cm.nclusters == 2
    assert cm.members(0) == [0, 1, 2, 3]
    assert cm.members(1) == [4, 5, 6, 7]
    assert cm.cluster(5) == 1
    assert cm.same_cluster(0, 3) and not cm.same_cluster(3, 4)
    assert cm.is_intercluster(3, 4)


def test_block_uneven_rejected():
    with pytest.raises(ValueError):
        ClusterMap.block(10, 3)


def test_block_bounds():
    with pytest.raises(ValueError):
        ClusterMap.block(4, 0)
    with pytest.raises(ValueError):
        ClusterMap.block(4, 5)


def test_singletons_and_single():
    assert ClusterMap.singletons(4).nclusters == 4
    assert ClusterMap.single(4).nclusters == 1
    assert not ClusterMap.single(4).is_intercluster(0, 3)


def test_per_node():
    topo = Topology(nranks=8, ranks_per_node=4)
    cm = ClusterMap.per_node(topo)
    assert cm.nclusters == 2
    assert cm.members(0) == [0, 1, 2, 3]


def test_noncontiguous_ids_rejected():
    with pytest.raises(ValueError):
        ClusterMap([0, 2, 2, 0])  # missing id 1


def test_empty_rejected():
    with pytest.raises(ValueError):
        ClusterMap([])


def test_node_alignment_validation():
    topo = Topology(nranks=8, ranks_per_node=4)
    ClusterMap.block(8, 2).validate_node_aligned(topo)  # ok
    with pytest.raises(ValueError):
        ClusterMap.block(8, 4).validate_node_aligned(topo)  # splits nodes


def test_equality():
    assert ClusterMap.block(8, 2) == ClusterMap.block(8, 2)
    assert ClusterMap.block(8, 2) != ClusterMap.block(8, 4)


@settings(max_examples=50, deadline=None)
@given(
    nranks=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_property_every_rank_in_exactly_one_cluster(nranks, data):
    k = data.draw(st.integers(min_value=1, max_value=nranks))
    assignment = data.draw(
        st.lists(st.integers(min_value=0, max_value=k - 1), min_size=nranks, max_size=nranks)
    )
    # normalize to contiguous ids
    ids = sorted(set(assignment))
    remap = {c: i for i, c in enumerate(ids)}
    cm = ClusterMap([remap[c] for c in assignment])
    seen = []
    for c in range(cm.nclusters):
        seen.extend(cm.members(c))
    assert sorted(seen) == list(range(nranks))
    assert sum(cm.sizes()) == nranks
