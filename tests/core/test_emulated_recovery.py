"""Emulated recovery (paper section 6.4): phase-1 logging run, phase-2
replay with only the failed cluster re-executing."""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.emulated import ReplayPlan, replayer_process
from repro.core.protocol import SPBCConfig
from repro.harness.runner import (
    run_emulated_recovery,
    run_native,
    run_spbc,
)
from repro.apps.base import get_app
from repro.apps.synthetic import halo2d_app, probe_reply_app, ring_app


def phase1(app, nranks, clusters, **kw):
    res = run_spbc(app, nranks, clusters, **kw)
    plan = ReplayPlan.from_run(res.hooks, res.makespan_ns)
    return res, plan


def test_plan_contains_only_messages_into_recovering_cluster():
    app = ring_app(iters=4, msg_bytes=512, compute_ns=10_000)
    clusters = ClusterMap.block(8, 4)
    res, plan = phase1(app, 8, clusters, ranks_per_node=2)
    assert plan.recovering_cluster == 0
    assert plan.recovering_ranks == {0, 1}
    # only rank 7 sends into cluster 0 (7 -> 0 ring edge)
    assert set(plan.records_by_sender) == {7}
    assert all(r.dst == 0 for r in plan.records_by_sender[7])
    assert plan.total_records == 4


def test_plan_records_sorted_by_send_time():
    app = get_app("milc").factory(iters=2, compute_ns=20_000)
    clusters = ClusterMap.block(8, 2)
    _res, plan = phase1(app, 8, clusters, ranks_per_node=4)
    for sender, recs in plan.records_by_sender.items():
        times = [r.send_time_ns for r in recs]
        assert times == sorted(times)
        # per-channel seq order must also hold within the merged list
        per_chan = {}
        for r in recs:
            per_chan.setdefault((r.comm_id, r.dst), []).append(r.seqnum)
        for seqs in per_chan.values():
            assert seqs == sorted(seqs)


@pytest.mark.parametrize("appname,params", [
    ("ring", dict(iters=5, msg_bytes=2048, compute_ns=50_000, allreduce_every=2)),
    ("halo2d", dict(iters=4, msg_bytes=4096, compute_ns=80_000)),
    ("milc", dict(iters=3, compute_ns=200_000)),
    ("minife", dict(iters=3, compute_ns=150_000)),
    ("probe_reply", dict(iters=2)),
])
def test_recovery_reproduces_application_results(appname, params):
    """The recovering cluster's re-execution must compute exactly the
    failure-free results (channel-determinism + correct replay)."""
    app = get_app(appname).factory(**params)
    nranks, k = 8, 4
    clusters = ClusterMap.block(nranks, k)
    res, plan = phase1(app, nranks, clusters, ranks_per_node=2)
    rec = run_emulated_recovery(app, nranks, clusters, plan, ranks_per_node=2)
    for r in plan.recovering_ranks:
        assert rec.results[r] == res.results[r], f"rank {r} diverged"


def test_rework_not_slower_than_failure_free():
    """Recovery skips inter-cluster sends and gets logged messages early:
    rework <= failure-free (paper Figure 5: all bars < 1)."""
    app = get_app("halo2d").factory(iters=5, msg_bytes=16 * 1024, compute_ns=100_000)
    nranks = 16
    clusters = ClusterMap.block(nranks, 4)
    native = run_native(app, nranks, ranks_per_node=4)
    _res, plan = phase1(app, nranks, clusters, ranks_per_node=4)
    rec = run_emulated_recovery(
        app, nranks, clusters, plan, reference_ns=native.makespan_ns, ranks_per_node=4
    )
    assert rec.normalized <= 1.001


def test_replayers_send_everything():
    app = ring_app(iters=4, msg_bytes=512, compute_ns=10_000)
    clusters = ClusterMap.block(8, 4)
    _res, plan = phase1(app, 8, clusters, ranks_per_node=2)
    rec = run_emulated_recovery(app, 8, clusters, plan, ranks_per_node=2)
    # replayer result = number of records re-sent
    for sender, recs in plan.records_by_sender.items():
        assert rec.results[sender] == len(recs)


def test_prepost_window_respected():
    """A window of 1 forces fully serial replay and still terminates."""
    app = ring_app(iters=6, msg_bytes=1024, compute_ns=5_000)
    clusters = ClusterMap.block(4, 2)
    res, plan = phase1(app, 4, clusters, ranks_per_node=2)
    rec1 = run_emulated_recovery(app, 4, clusters, plan, window=1, ranks_per_node=2)
    rec50 = run_emulated_recovery(app, 4, clusters, plan, window=50, ranks_per_node=2)
    for r in plan.recovering_ranks:
        assert rec1.results[r] == rec50.results[r] == res.results[r]


def test_invalid_window_rejected():
    app = ring_app(iters=2)
    clusters = ClusterMap.block(4, 2)
    _res, plan = phase1(app, 4, clusters, ranks_per_node=2)
    with pytest.raises(ValueError, match="window"):
        run_emulated_recovery(app, 4, clusters, plan, window=0, ranks_per_node=2)


def test_recovery_with_rendezvous_messages():
    """Large logged messages replay through the rendezvous protocol."""
    app = ring_app(iters=3, msg_bytes=200_000, compute_ns=50_000)
    clusters = ClusterMap.block(4, 2)
    res, plan = phase1(app, 4, clusters, ranks_per_node=2)
    assert plan.total_bytes >= 3 * 200_000
    rec = run_emulated_recovery(app, 4, clusters, plan, ranks_per_node=2)
    for r in plan.recovering_ranks:
        assert rec.results[r] == res.results[r]


def test_specific_cluster_recovery():
    app = ring_app(iters=3, msg_bytes=512, compute_ns=10_000)
    clusters = ClusterMap.block(8, 4)
    res = run_spbc(app, 8, clusters, ranks_per_node=2)
    from repro.core.emulated import ReplayPlan

    plan = ReplayPlan.from_run(res.hooks, res.makespan_ns, cluster_id=2)
    assert plan.recovering_ranks == {4, 5}
    rec = run_emulated_recovery(app, 8, clusters, plan, ranks_per_node=2)
    for r in (4, 5):
        assert rec.results[r] == res.results[r]
