"""Tiered stable storage through the online checkpoint/recovery path:
write costs on the simulation clock, tier survivability under node vs
process failure, and log truncation at durable commits."""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_native, run_online_failure, run_spbc
from repro.storage.backend import InMemoryBackend, make_backend
from repro.apps.synthetic import ring_app

NRANKS = 8
PLAN = "tiered:ram@1,pfs@2"


def app():
    return ring_app(iters=8, msg_bytes=4096, compute_ns=300_000)


def cfg(clusters, storage=None, every=2):
    return SPBCConfig(clusters=clusters, checkpoint_every=every, storage=storage)


def fail_between_rounds(backend, lo, hi):
    """A failure instant strictly between two checkpoint commits."""
    t_lo = backend.retrieve(0, lo).ckpt.taken_at_ns
    t_hi = backend.retrieve(0, hi).ckpt.taken_at_ns
    return (t_lo + t_hi) // 2


# ----------------------------------------------------------------------
# Write cost on the simulation clock
# ----------------------------------------------------------------------

def test_tiered_run_charges_write_time_to_the_clock():
    clusters = ClusterMap.block(NRANKS, 4)
    free = run_spbc(
        app(), NRANKS, clusters, config=cfg(clusters), ranks_per_node=2
    )
    tiered = run_spbc(
        app(), NRANKS, clusters,
        config=cfg(clusters, storage=make_backend(PLAN)), ranks_per_node=2,
    )
    backend = tiered.hooks.storage
    assert backend.write_ns_total > 0
    assert tiered.makespan_ns > free.makespan_ns
    assert tiered.results == free.results
    # every rank wrote RAM each round and PFS every second round
    assert backend.tier_writes["ram"] == NRANKS * 4
    assert backend.tier_writes["pfs"] == NRANKS * 2


def test_in_memory_backend_keeps_seed_numbers_bit_identical():
    """The default (storage=None) and an explicit InMemoryBackend are the
    same run: zero write time, identical event timing, identical output —
    the seed's failure-free numbers are untouched by the storage layer."""
    clusters = ClusterMap.block(NRANKS, 2)
    default = run_spbc(
        app(), NRANKS, clusters, config=cfg(clusters), ranks_per_node=2
    )
    explicit = run_spbc(
        app(), NRANKS, clusters,
        config=cfg(clusters, storage=InMemoryBackend()), ranks_per_node=2,
    )
    assert isinstance(default.hooks.storage, InMemoryBackend)
    assert default.makespan_ns == explicit.makespan_ns
    assert default.finish_ns == explicit.finish_ns
    assert default.results == explicit.results
    assert explicit.hooks.storage.write_ns_total == 0


# ----------------------------------------------------------------------
# Node vs process failure
# ----------------------------------------------------------------------

def probe_run(clusters):
    """Failure-free tiered run used to time the failure injection."""
    return run_spbc(
        app(), NRANKS, clusters,
        config=cfg(clusters, storage=make_backend(PLAN)), ranks_per_node=2,
    )


def test_node_failure_falls_back_to_deeper_tier_than_process_failure():
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(app(), NRANKS, ranks_per_node=2)
    probe = probe_run(clusters)
    fail_at = fail_between_rounds(probe.hooks.storage, 3, 4)

    outs = {}
    for kind in ("process", "node"):
        outs[kind] = run_online_failure(
            app(), NRANKS, clusters,
            fail_at_ns=fail_at, fail_rank=0,
            config=cfg(clusters, storage=make_backend(PLAN)),
            ranks_per_node=2, failure_kind=kind,
        )
        assert outs[kind].results == ref.results, f"{kind} recovery diverged"

    proc_ev = outs["process"].manager.failures[0]
    node_ev = outs["node"].manager.failures[0]
    assert proc_ev.kind == "process" and node_ev.kind == "node"
    # process crash: RAM partner copies survive -> newest round, fast read
    assert proc_ev.restored_tier == "ram"
    assert proc_ev.restarted_from_round == 3
    assert proc_ev.invalidated_copies == 0
    # node loss: RAM copies die -> older PFS round, slow restart read
    assert node_ev.restored_tier == "pfs"
    assert node_ev.restarted_from_round == 2
    assert node_ev.invalidated_copies > 0
    assert node_ev.restore_read_ns > proc_ev.restore_read_ns
    # the deeper rollback + read burst cost real simulated time
    assert outs["node"].makespan_ns > outs["process"].makespan_ns


def test_failure_during_write_burst_falls_back_to_previous_round():
    """A copy is restorable only once its write finished: a crash in the
    middle of a round's write burst must restart from the round before."""
    clusters = ClusterMap.block(NRANKS, 4)
    probe = probe_run(clusters)
    backend = probe.hooks.storage
    ckpt3 = backend.retrieve(0, 3).ckpt
    write_ns = backend.write_cost_ns(ckpt3, concurrent_writers=NRANKS)
    assert write_ns > 0
    # taken_at_ns stamps the write *start*; fail halfway through it
    out = run_online_failure(
        app(), NRANKS, clusters,
        fail_at_ns=ckpt3.taken_at_ns + write_ns // 2, fail_rank=0,
        config=cfg(clusters, storage=make_backend(PLAN)), ranks_per_node=2,
    )
    ref = run_native(app(), NRANKS, ranks_per_node=2)
    assert out.results == ref.results
    assert out.manager.failures[0].restarted_from_round == 2


def test_node_failure_before_any_durable_round_restarts_from_scratch():
    """RAM-only plan: a node loss leaves nothing -> synthetic round 0."""
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(app(), NRANKS, ranks_per_node=2)
    out = run_online_failure(
        app(), NRANKS, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.6), fail_rank=0,
        config=cfg(clusters, storage=make_backend("tiered:ram@1")),
        ranks_per_node=2, failure_kind="node",
    )
    assert out.results == ref.results
    ev = out.manager.failures[0]
    assert ev.restarted_from_round == 0
    assert ev.restored_tier is None
    assert ev.invalidated_copies > 0


def test_node_failure_on_in_memory_backend_degenerates_to_process_failure():
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(app(), NRANKS, ranks_per_node=2)
    kw = dict(fail_at_ns=int(ref.makespan_ns * 0.7), fail_rank=0,
              ranks_per_node=2)
    node = run_online_failure(
        app(), NRANKS, clusters, config=cfg(clusters),
        failure_kind="node", **kw,
    )
    proc = run_online_failure(
        app(), NRANKS, clusters, config=cfg(clusters),
        failure_kind="process", **kw,
    )
    assert node.results == proc.results == ref.results
    assert node.makespan_ns == proc.makespan_ns
    assert node.manager.failures[0].invalidated_copies == 0
    assert node.manager.failures[0].restarted_from_round == (
        proc.manager.failures[0].restarted_from_round
    )


def test_unknown_failure_kind_rejected():
    clusters = ClusterMap.block(4, 2)
    with pytest.raises(ValueError):
        run_online_failure(
            ring_app(iters=2, compute_ns=1_000), 4, clusters,
            fail_at_ns=1, failure_kind="meteor", ranks_per_node=2,
        )


# ----------------------------------------------------------------------
# Log truncation at durable commits
# ----------------------------------------------------------------------

def test_durable_commit_bounds_log_residency():
    """The in-memory backend commits durably every round, so resident
    log memory only covers records since the last checkpoint — while the
    cumulative Table 1 counters keep the whole run."""
    clusters = ClusterMap.block(NRANKS, 4)
    res = run_spbc(
        app(), NRANKS, clusters, config=cfg(clusters), ranks_per_node=2
    )
    spbc = res.hooks
    truncated = 0
    for r in range(NRANKS):
        log = spbc.state[r].log
        assert log.resident_bytes <= log.bytes_logged
        if log.bytes_logged:
            # everything up to the last commit moved off-resident
            assert log.resident_records < log.records_logged
            truncated += 1
    assert truncated > 0  # the ring logs on every rank


def test_non_durable_rounds_keep_logs_resident():
    """A RAM+SSD plan never reaches a surviving tier: no truncation."""
    clusters = ClusterMap.block(NRANKS, 4)
    res = run_spbc(
        app(), NRANKS, clusters,
        config=cfg(clusters, storage=make_backend("tiered:ram@1,ssd@2")),
        ranks_per_node=2,
    )
    for r in range(NRANKS):
        log = res.hooks.state[r].log
        assert log.resident_bytes == log.bytes_logged
        assert log.resident_records == log.records_logged


def test_repeated_failures_replay_records_truncated_by_commits():
    """A second rollback of the same cluster re-triggers replay after the
    survivors have truncated at their own (later) commits: the records
    the rolled-back LR needs now live in the stable log area, so replay
    must read the union — and does, converging to the reference."""
    from repro.core.protocol import SPBC
    from repro.core.recovery import RecoveryManager
    from repro.mpi.context import RankContext
    from repro.mpi.runtime import World

    factory = app()
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(factory, NRANKS, ranks_per_node=2)
    hooks = SPBC(cfg(clusters))
    world = World(NRANKS, ranks_per_node=2, hooks=hooks)
    mgr = RecoveryManager(world, hooks, factory)
    for r in range(NRANKS):
        world.launch(r, factory(RankContext(world, r), None))
    mgr.inject_failure(int(ref.makespan_ns * 0.5), 0)
    mgr.inject_failure(int(ref.makespan_ns * 0.9), 0)
    world.run()
    results = {r: p.result for r, p in world.processes.items()}
    assert results == ref.results
    assert len(mgr.failures) == 2
    # survivors truncated (durable in-memory commits) yet replayed
    survivor = hooks.state[7]
    assert survivor.log.resident_records < survivor.log.records_logged
    assert sum(s.replayed_records for s in hooks.state.values()) > 0
