"""Unit tests for the sender-side message log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logstore import LogRecord, LogStore
from repro.util.units import MB, SEC


def rec(dst=1, seq=1, nbytes=100, comm=0, t=0, tag=0, ident=(0, 0)):
    return LogRecord(
        comm_id=comm,
        dst=dst,
        seqnum=seq,
        tag=tag,
        nbytes=nbytes,
        ident=ident,
        payload=None,
        send_time_ns=t,
    )


def test_append_and_accounting():
    log = LogStore(0)
    log.append(rec(seq=1, nbytes=100))
    log.append(rec(seq=2, nbytes=50))
    assert log.bytes_logged == 150
    assert log.records_logged == 2
    assert log.last_seq(0, 1) == 2
    assert log.last_seq(0, 9) == 0


def test_nonmonotonic_seq_rejected():
    log = LogStore(0)
    log.append(rec(seq=2))
    with pytest.raises(ValueError):
        log.append(rec(seq=2))
    with pytest.raises(ValueError):
        log.append(rec(seq=1))


def test_replay_after_filters_and_orders():
    log = LogStore(0)
    for s in range(1, 6):
        log.append(rec(seq=s))
    out = log.replay_after(0, 1, 3)
    assert [r.seqnum for r in out] == [4, 5]
    assert log.replay_after(0, 1, 10) == []
    assert [r.seqnum for r in log.replay_after(0, 1, 0)] == [1, 2, 3, 4, 5]


def test_records_to_merges_comms_in_send_order():
    log = LogStore(0)
    log.append(rec(comm=0, seq=1, t=10))
    log.append(rec(comm=1, seq=1, t=5))
    log.append(rec(comm=0, seq=2, t=20))
    out = log.records_to(1)
    assert [(r.comm_id, r.seqnum) for r in out] == [(1, 1), (0, 1), (0, 2)]


def test_growth_rate():
    log = LogStore(0)
    log.append(rec(seq=1, nbytes=2 * MB))
    assert log.growth_rate_mb_s(2 * SEC) == pytest.approx(1.0)
    assert log.growth_rate_mb_s(0) == 0.0


def test_snapshot_restore_roundtrip():
    log = LogStore(0)
    log.append(rec(seq=1))
    snap = log.snapshot()
    log.append(rec(seq=2))
    log.restore(snap)
    assert log.last_seq(0, 1) == 1
    assert log.records_logged == 1


def test_truncate_frees_but_keeps_counters():
    log = LogStore(0)
    log.append(rec(seq=1, nbytes=77))
    log.truncate()
    assert log.replay_after(0, 1, 0) == []
    assert log.bytes_logged == 77  # cumulative accounting (Table 1)


def test_truncate_moves_records_to_the_stable_area():
    log = LogStore(0)
    log.append(rec(seq=1, nbytes=10))
    log.append(rec(seq=2, nbytes=20))
    assert log.resident_bytes == 30 and log.resident_records == 2
    log.truncate()
    assert log.resident_bytes == 0 and log.resident_records == 0
    # replay for recovery still reaches the truncated records
    stable = log.replay_after(0, 1, 0, include_stable=True)
    assert [r.seqnum for r in stable] == [1, 2]
    # the resident area keeps extending the same channel
    log.append(rec(seq=3, nbytes=5))
    assert log.last_seq(0, 1) == 3
    assert log.resident_records == 1
    both = log.replay_after(0, 1, 1, include_stable=True)
    assert [r.seqnum for r in both] == [2, 3]
    assert [r.seqnum for r in log.replay_after(0, 1, 1)] == [3]


def test_seq_validation_spans_truncation():
    log = LogStore(0)
    log.append(rec(seq=5))
    log.truncate()
    with pytest.raises(ValueError):
        log.append(rec(seq=5))  # must still increase past the stable area


def test_channel_keys_and_merged_channels_span_both_areas():
    log = LogStore(0)
    log.append(rec(dst=1, seq=1))
    log.truncate()
    log.append(rec(dst=2, seq=1))
    assert log.channel_keys() == {(0, 1), (0, 2)}
    merged = log.merged_channels()
    assert {k: [r.seqnum for r in v] for k, v in merged.items()} == {
        (0, 1): [1],
        (0, 2): [1],
    }
    assert sorted((r.dst, r.seqnum) for r in log.all_records()) == [(1, 1), (2, 1)]


def test_restore_lands_in_the_stable_area():
    log = LogStore(0)
    log.append(rec(seq=1, nbytes=40))
    snap = log.snapshot()
    other = LogStore(0)
    other.restore(snap)
    assert other.resident_bytes == 0  # snapshot content is on stable storage
    assert other.bytes_logged == 40
    assert other.replay_after(0, 1, 0) == []
    assert [r.seqnum for r in other.replay_after(0, 1, 0, include_stable=True)] == [1]


def test_snapshot_covers_stable_and_resident():
    log = LogStore(0)
    log.append(rec(seq=1))
    log.truncate()
    log.append(rec(seq=2))
    snap = log.snapshot()
    assert [r.seqnum for r in snap["channels"][(0, 1)]] == [1, 2]
    assert snap["records_logged"] == 2


@settings(max_examples=50, deadline=None)
@given(
    seqs=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=60, unique=True),
    cut=st.integers(min_value=0, max_value=10_000),
)
def test_property_replay_after_is_sorted_suffix(seqs, cut):
    log = LogStore(0)
    for s in sorted(seqs):
        log.append(rec(seq=s, nbytes=s))
    out = log.replay_after(0, 1, cut)
    assert [r.seqnum for r in out] == sorted(s for s in seqs if s > cut)
    assert log.bytes_logged == sum(seqs)
