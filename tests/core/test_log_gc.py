"""Receiver-driven log GC: senders delete records a receiver has
durably checkpointed past, bounding total log residency (resident AND
stable areas) — while replay across failures stays complete."""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.logstore import LogRecord, LogStore
from repro.core.protocol import SPBCConfig
from repro.harness.runner import (
    run_failure_schedule,
    run_native,
    run_online_failure,
    run_spbc,
)
from repro.storage.backend import make_backend
from repro.apps.synthetic import ring_app

NRANKS = 8


def app():
    return ring_app(iters=8, msg_bytes=4096, compute_ns=300_000)


def rec(seq, nbytes=100, cid=1, dst=3):
    return LogRecord(
        comm_id=cid, dst=dst, seqnum=seq, tag=0, nbytes=nbytes,
        ident=(0, 0), payload=None, send_time_ns=seq,
    )


# ----------------------------------------------------------------------
# LogStore.collect unit behavior
# ----------------------------------------------------------------------

def test_collect_deletes_from_both_areas():
    log = LogStore(0)
    for s in range(1, 7):
        log.append(rec(s))
    log.truncate()  # 1..6 stable
    for s in range(7, 10):
        log.append(rec(s))  # 7..9 resident
    assert log.resident_records == 3
    deleted = log.collect(1, 3, 8)
    assert deleted == 8
    assert log.collected_records == 8
    assert log.resident_records == 1
    assert [r.seqnum for r in log.replay_after(1, 3, 0, include_stable=True)] == [9]
    # cumulative Table 1 counters untouched
    assert log.records_logged == 9


def test_collect_is_monotone_and_idempotent():
    log = LogStore(0)
    for s in range(1, 5):
        log.append(rec(s))
    assert log.collect(1, 3, 2) == 2
    assert log.collect(1, 3, 2) == 0  # same floor again: no-op
    assert log.collect(1, 3, 1) == 0  # lower floor: no-op
    assert log.collect(1, 3, 4) == 2


def test_collected_channel_keeps_last_seq_and_key():
    """A fully collected channel must not forget its seq high-water mark
    (or re-sends would be re-logged) nor drop out of channel_keys (or
    recovery handshakes would skip it)."""
    log = LogStore(0)
    for s in range(1, 4):
        log.append(rec(s))
    log.collect(1, 3, 3)
    assert log.last_seq(1, 3) == 3
    assert (1, 3) in log.channel_keys()
    with pytest.raises(ValueError):
        log.append(rec(2))  # below the floor: still rejected


def test_collect_floor_survives_restore():
    """The receiver's guarantee is about *its* restart floor, so it
    outlives the sender's own rollback: records below the floor restored
    from an old snapshot are re-collected immediately."""
    log = LogStore(0)
    for s in range(1, 6):
        log.append(rec(s))
    snap = log.snapshot()  # carries 1..5
    log.collect(1, 3, 4)
    log.restore(snap)
    assert [r.seqnum for r in log.replay_after(1, 3, 0, include_stable=True)] == [5]
    assert log.last_seq(1, 3) == 5
    # pruning restored copies of already-collected records is not new
    # GC: the cumulative counters must not double-count them
    assert log.collected_records == 4


# ----------------------------------------------------------------------
# End-to-end through the protocol
# ----------------------------------------------------------------------

def test_gc_notices_bound_total_residency_on_durable_plans():
    """With in-memory (always durable) commits, receivers' GC notices
    delete replayed-out records entirely: total log bytes held (resident
    + stable) stay below the cumulative logged bytes."""
    clusters = ClusterMap.block(NRANKS, 4)
    res = run_spbc(
        app(), NRANKS, clusters,
        config=SPBCConfig(clusters=clusters, checkpoint_every=2),
        ranks_per_node=2,
    )
    spbc = res.hooks
    assert spbc.total_collected_log_bytes() > 0
    for r in range(NRANKS):
        log = spbc.state[r].log
        held = sum(
            rec.nbytes for rec in log.all_records()
        )
        assert held + log.collected_bytes == log.bytes_logged
        if log.bytes_logged:
            assert held < log.bytes_logged  # something was freed


def test_gc_fires_only_at_durable_rounds_on_tiered_plans():
    """ram@1,pfs@2: notices ride the durable (even) rounds only, and the
    stable area no longer grows without bound."""
    clusters = ClusterMap.block(NRANKS, 4)
    res = run_spbc(
        app(), NRANKS, clusters,
        config=SPBCConfig(
            clusters=clusters, checkpoint_every=2,
            storage=make_backend("tiered:ram@1,pfs@2"),
        ),
        ranks_per_node=2,
    )
    assert res.hooks.total_collected_log_bytes() > 0


def test_volatile_only_plans_never_collect():
    """A plan with no node-failure-surviving tier gives no GC credit: a
    node loss can force restart-from-scratch, which needs full replay."""
    clusters = ClusterMap.block(NRANKS, 4)
    res = run_spbc(
        app(), NRANKS, clusters,
        config=SPBCConfig(
            clusters=clusters, checkpoint_every=2,
            storage=make_backend("partner:ram@1,partner@1"),
        ),
        ranks_per_node=2,
    )
    assert res.hooks.total_collected_log_bytes() == 0
    for r in range(NRANKS):
        log = res.hooks.state[r].log
        assert log.resident_bytes == log.bytes_logged  # nothing freed


def test_recovery_converges_after_gc():
    """A failure after rounds of GC still recovers exactly: the collected
    records are provably un-replayable, everything else is intact."""
    factory = app()
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(factory, NRANKS, ranks_per_node=2)
    for kind in ("process", "node"):
        out = run_online_failure(
            factory, NRANKS, clusters,
            fail_at_ns=int(ref.makespan_ns * 0.8), fail_rank=0,
            config=SPBCConfig(clusters=clusters, checkpoint_every=1),
            ranks_per_node=2, failure_kind=kind,
        )
        assert out.results == ref.results
        assert out.world.hooks.total_collected_log_bytes() > 0


def test_repeated_failures_with_gc_still_converge():
    factory = app()
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(factory, NRANKS, ranks_per_node=2)
    out = run_failure_schedule(
        factory, NRANKS, clusters,
        [
            (int(ref.makespan_ns * 0.4), 0, "node"),
            (int(ref.makespan_ns * 0.8), 5, "process"),
        ],
        config=SPBCConfig(
            clusters=clusters, checkpoint_every=1,
            storage=make_backend("tiered:ram@1,pfs@2"),
        ),
        ranks_per_node=2,
    )
    assert out.results == ref.results


def test_floors_inherited_across_sender_restart():
    """Protocol-level regression for the rollback hole: a sender that
    crashes after collecting must come back with the floors intact, so
    records its restored snapshot carries from below them are re-pruned
    rather than silently re-materialized."""
    from repro.core.protocol import SPBC

    log = LogStore(0)
    for s in range(1, 6):
        log.append(rec(s))
    snap = log.snapshot()
    log.collect(1, 3, 4)
    fresh = LogStore(0)
    fresh.inherit_floors(log)
    fresh.restore(snap)
    assert [r.seqnum for r in fresh.replay_after(1, 3, 0, include_stable=True)] == [5]
    assert fresh.last_seq(1, 3) == 5

    # End to end: after a crash+restore of rank 0, the restarted state's
    # log still knows the floors its predecessor collected under.
    factory = app()
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(factory, NRANKS, ranks_per_node=2)
    out = run_online_failure(
        factory, NRANKS, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.8), fail_rank=0,
        config=SPBCConfig(clusters=clusters, checkpoint_every=1),
        ranks_per_node=2,
    )
    assert out.results == ref.results
    # rank 1 is cluster 0's inter-cluster sender (0 -> 1 is intra): its
    # restarted incarnation must still know its predecessor's floors.
    restarted_log = out.world.hooks.state[1].log
    assert restarted_log._collected, "floors lost across restart"
