"""Coordinated checkpointing inside clusters (Algorithm 1 lines 13-15)."""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBC, SPBCConfig
from repro.core.checkpoint import StableStorage
from repro.harness.runner import run_spbc
from repro.apps.synthetic import halo2d_app, ring_app


def run_with_ckpt(app, nranks, k, every, **kw):
    clusters = ClusterMap.block(nranks, k)
    cfg = SPBCConfig(clusters=clusters, checkpoint_every=every)
    return run_spbc(app, nranks, clusters, config=cfg, **kw)


def test_checkpoints_taken_every_n_iterations():
    res = run_with_ckpt(ring_app(iters=6, compute_ns=5_000), 8, 2, every=2, ranks_per_node=4)
    spbc = res.hooks
    for r in range(8):
        rounds = spbc.storage.rounds_of(r)
        assert rounds == [1, 2, 3]  # iterations 2, 4, 6 (calls 2,4,6)


def test_no_checkpoints_when_disabled():
    res = run_with_ckpt(ring_app(iters=4, compute_ns=5_000), 8, 2, every=None, ranks_per_node=4)
    assert res.hooks.storage.writes == 0


def test_checkpoint_rounds_consistent_within_cluster():
    res = run_with_ckpt(
        halo2d_app(iters=6, compute_ns=20_000), 16, 4, every=3, ranks_per_node=4
    )
    spbc = res.hooks
    for c in range(4):
        rounds = {tuple(spbc.storage.rounds_of(r)) for r in spbc.clusters.members(c)}
        assert len(rounds) == 1  # all members agree on the rounds taken


def test_checkpoint_saves_app_state_and_seqnums():
    res = run_with_ckpt(ring_app(iters=4, compute_ns=5_000), 8, 2, every=2, ranks_per_node=4)
    spbc = res.hooks
    ckpt = spbc.storage.load_latest(3)
    assert ckpt.app_state["iter"] == 3  # captured at the start of iteration 4 (call 4)
    wcid = res.world.comm_world.comm_id
    # rank 3 already sent 3 messages to rank 4 before the checkpoint
    assert ckpt.chan_seq[(wcid, 4)] == 3
    assert ckpt.log_snapshot["records_logged"] == 3


def test_checkpoint_cut_has_no_inflight_intra_messages():
    """The drained-cut property: at checkpoint time every intra-cluster
    send has arrived (counters match in the saved snapshot)."""
    res = run_with_ckpt(
        halo2d_app(iters=4, compute_ns=10_000), 16, 2, every=2, ranks_per_node=8
    )
    spbc = res.hooks
    # Reconstruct pairwise counters from the saved checkpoints.
    for c in range(2):
        members = spbc.clusters.members(c)
        # after the run, live counters must also match pairwise
        for a in members:
            for b in members:
                if a == b:
                    continue
                sent = spbc.state[a].intra_sent.get(b, 0)
                arrived = spbc.state[b].intra_arrived.get(a, 0)
                assert sent == arrived, (a, b)


def test_logs_saved_with_checkpoint():
    res = run_with_ckpt(ring_app(iters=4, msg_bytes=256, compute_ns=5_000), 4, 4, every=4, ranks_per_node=1)
    spbc = res.hooks
    ckpt = spbc.storage.load_latest(0)
    snap_bytes = ckpt.log_snapshot["bytes_logged"]
    assert snap_bytes == 3 * 256  # 3 sends before the 4th-iteration boundary


def test_shared_storage_instance():
    storage = StableStorage()
    clusters = ClusterMap.block(4, 2)
    cfg = SPBCConfig(clusters=clusters, checkpoint_every=2, storage=storage)
    run_spbc(ring_app(iters=4, compute_ns=1_000), 4, clusters, config=cfg, ranks_per_node=2)
    assert storage.writes == 4 * 2  # 4 ranks x 2 rounds
    assert all(storage.has_checkpoint(r) for r in range(4))
