"""The section-5.2.2 rendezvous-reordering hazard, at unit scale."""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.emulated import ReplayPlan
from repro.harness.runner import run_emulated_recovery, run_native, run_spbc
from repro.apps.synthetic import window_stress_app
from repro.sim.engine import DeadlockError

CLUSTERS = ClusterMap([0, 1, 0, 1])


def phase1(nsmall=4):
    app = window_stress_app(iters=2, nsmall=nsmall)
    res = run_spbc(app, 4, CLUSTERS, ranks_per_node=2)
    return app, res, ReplayPlan.from_run(res.hooks, res.makespan_ns)


def test_failure_free_run_is_fine():
    app = window_stress_app(iters=2, nsmall=4)
    ref = run_native(app, 4, ranks_per_node=2)
    assert ref.makespan_ns > 0


def test_small_window_deadlocks_on_adversarial_order():
    """A replayer completing sends strictly in post order cannot finish:
    the large rendezvous message blocks the small ones its receiver must
    consume first."""
    app, _res, plan = phase1(nsmall=4)
    with pytest.raises(DeadlockError):
        run_emulated_recovery(app, 4, CLUSTERS, plan, window=1, ranks_per_node=2)


def test_window_above_reordering_depth_recovers():
    app, res, plan = phase1(nsmall=4)
    rec = run_emulated_recovery(app, 4, CLUSTERS, plan, window=6, ranks_per_node=2)
    for r in plan.recovering_ranks:
        assert rec.results[r] == res.results[r]


def test_default_window_handles_it():
    app, res, plan = phase1(nsmall=4)
    rec = run_emulated_recovery(app, 4, CLUSTERS, plan, ranks_per_node=2)  # 50
    for r in plan.recovering_ranks:
        assert rec.results[r] == res.results[r]
