"""Regression tests for the failure-notification path.

Scenario that motivated it: a rank that only *receives* on its
inter-cluster channels, restored from a checkpoint taken before any
communication, knows no peers.  Without the survivor-side ping
(peer_hello) the survivor would never be asked to replay its log and the
restarted rank would wait forever.
"""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBC, SPBCConfig
from repro.harness.runner import run_native, run_online_failure
from repro.apps.synthetic import ring_app
from repro.apps.base import get_app


def test_recovery_from_precommunication_checkpoint():
    """checkpoint_every=1 takes round 1 before any message flows; the
    ring receives-only channel (left neighbor) must still be replayed."""
    app = ring_app(iters=3, compute_ns=10_000)
    nranks = 4
    clusters = ClusterMap.block(nranks, 2)
    ref = run_native(app, nranks, ranks_per_node=4)
    out = run_online_failure(
        app, nranks, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.55),
        fail_rank=0,
        config=SPBCConfig(clusters=clusters, checkpoint_every=1),
        ranks_per_node=4,
    )
    assert out.results == ref.results


@pytest.mark.parametrize("frac", [0.2, 0.5, 0.8])
def test_every_checkpoint_cadence_recovers(frac):
    """Sweep failure times against an aggressive checkpoint cadence."""
    app = get_app("halo2d").factory(iters=5, msg_bytes=2048, compute_ns=50_000)
    nranks = 8
    clusters = ClusterMap.block(nranks, 4)
    ref = run_native(app, nranks, ranks_per_node=4)
    out = run_online_failure(
        app, nranks, clusters,
        fail_at_ns=int(ref.makespan_ns * frac),
        fail_rank=3,
        config=SPBCConfig(clusters=clusters, checkpoint_every=1),
        ranks_per_node=4,
    )
    assert out.results == ref.results


def test_one_directional_channel_replay():
    """A pure producer->consumer pair across clusters: the consumer's
    cluster fails; the producer must replay even though the consumer
    never sent anything to it."""

    def app(ctx, state=None):
        start = 0 if state is None else state["iter"]
        acc = 0 if state is None else state["acc"]
        for i in range(start, 6):
            yield from ctx.maybe_checkpoint(lambda i=i, acc=acc: {"iter": i, "acc": acc})
            yield from ctx.compute(50_000)
            if ctx.rank == 0:  # producer, cluster 0
                yield from ctx.send(1, i * 7, nbytes=256, tag=1)
            elif ctx.rank == 1:  # consumer, cluster 1
                s = yield from ctx.recv(src=0, tag=1)
                acc = acc * 31 + s.payload
        return acc

    clusters = ClusterMap([0, 1])
    ref = run_native(app, 2, ranks_per_node=1)
    out = run_online_failure(
        app, 2, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.6),
        fail_rank=1,  # the consumer fails; it never sent to rank 0
        config=SPBCConfig(clusters=clusters, checkpoint_every=2),
        ranks_per_node=1,
    )
    assert out.results == ref.results


def test_peer_hello_is_idempotent():
    """Duplicate hellos / rollbacks must not double-replay (dedup by
    seqnum keeps delivery exactly-once)."""
    app = ring_app(iters=4, compute_ns=20_000)
    nranks = 4
    clusters = ClusterMap.block(nranks, 2)
    ref = run_native(app, nranks, ranks_per_node=2)

    from repro.core.recovery import RecoveryManager
    from repro.mpi.context import RankContext
    from repro.mpi.runtime import World

    hooks = SPBC(SPBCConfig(clusters=clusters, checkpoint_every=1))
    world = World(nranks, ranks_per_node=2, hooks=hooks)
    mgr = RecoveryManager(world, hooks, app)
    for r in range(nranks):
        world.launch(r, app(RankContext(world, r), None))
    mgr.inject_failure(int(ref.makespan_ns * 0.5), 0)

    # extra hellos from every survivor, injected right after restart
    def extra_hellos():
        for s in (2, 3):
            if world.runtimes[s].alive:
                hooks.notify_failure(world.runtimes[s], {0, 1})

    world.engine.schedule(
        int(ref.makespan_ns * 0.5) + mgr.restart_delay_ns + 1000, extra_hellos
    )
    world.run()
    results = {r: p.result for r, p in world.processes.items()}
    assert results == ref.results
