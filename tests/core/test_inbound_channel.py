"""Unit tests of the recovery-side inbound channel machinery: dedup,
reorder buffering, complete-prefix computation, drop sets.

These are the low-level invariants the online-recovery integration tests
rely on; exercising them directly pins down the corner cases (rendezvous
payloads lost across incarnations, duplicated replays, out-of-order live
copies)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBC, SPBCConfig, _InboundChannel
from repro.mpi.message import Envelope
from repro.mpi.runtime import World


def make_world(nranks=4, k=2):
    clusters = ClusterMap.block(nranks, k)
    hooks = SPBC(SPBCConfig(clusters=clusters))
    world = World(nranks, ranks_per_node=2, hooks=hooks)
    return world, hooks


def env(src, dst, seq, comm=0, nbytes=10):
    return Envelope(
        src=src, dst=dst, tag=0, comm_id=comm, seqnum=seq, nbytes=nbytes
    )


def test_in_order_arrivals_accepted():
    world, hooks = make_world()
    rt = world.runtimes[2]
    for s in (1, 2, 3):
        assert hooks.on_arrival(rt, env(0, 2, s)) is True
    st_ = hooks.state[2]
    assert st_.chan_in((0, 0)).arrived == 3


def test_duplicate_arrivals_dropped():
    world, hooks = make_world()
    rt = world.runtimes[2]
    assert hooks.on_arrival(rt, env(0, 2, 1))
    assert hooks.on_arrival(rt, env(0, 2, 2))
    assert hooks.on_arrival(rt, env(0, 2, 1)) is False
    assert hooks.on_arrival(rt, env(0, 2, 2)) is False
    assert hooks.state[2].chan_in((0, 0)).arrived == 2


def deliver(hooks, rt, e):
    """What _on_packet does: feed accepted arrivals into matching."""
    if hooks.on_arrival(rt, e):
        rt.accept_arrival(e)
        return True
    return False


def test_gap_buffers_until_missing_arrives():
    world, hooks = make_world()
    rt = world.runtimes[2]
    assert deliver(hooks, rt, env(0, 2, 1))
    # seq 3 arrives before seq 2: held
    assert deliver(hooks, rt, env(0, 2, 3)) is False
    ch = hooks.state[2].chan_in((0, 0))
    assert 3 in ch.buffer
    # seq 2 arrives: accepted, and the drain releases seq 3
    assert deliver(hooks, rt, env(0, 2, 2)) is True
    world.engine.run(detect_deadlock=False)  # run the scheduled drain
    assert ch.arrived == 3
    assert not ch.buffer
    # the drained message reached the matching engine
    assert rt.matching.unexpected_count == 3  # 1, 2 via accept + 3 via drain


def test_intra_cluster_arrivals_not_tracked():
    world, hooks = make_world()
    rt = world.runtimes[1]
    assert hooks.on_arrival(rt, env(0, 1, 1))  # 0 and 1 share a cluster
    assert (0, 0) not in hooks.state[1].inbound
    assert hooks.state[1].intra_arrived[0] == 1


def test_complete_prefix_with_pending_rendezvous():
    ch = _InboundChannel()
    ch.arrived = 5
    assert ch.complete_prefix(3) == 5  # nothing pending: everything held
    ch.pending_data = {4, 5}
    assert ch.complete_prefix(3) == 3  # stalls at the first missing payload
    ch.pending_data = {2}
    assert ch.complete_prefix(1) == 1


def test_drop_set_swallows_resent_copies():
    world, hooks = make_world()
    rt = world.runtimes[2]
    st_ = hooks.state[2]
    ch = st_.chan_in((0, 0))
    ch.arrived = 0
    ch.drop_set = {1, 3}
    assert hooks.on_arrival(rt, env(0, 2, 1)) is False  # swallowed
    assert hooks.on_arrival(rt, env(0, 2, 2)) is True
    assert hooks.on_arrival(rt, env(0, 2, 3)) is False  # swallowed
    assert hooks.on_arrival(rt, env(0, 2, 4)) is True
    assert ch.arrived == 4 and not ch.drop_set


def test_scrub_resets_channel_and_returns_prefix():
    world, hooks = make_world()
    rt = world.runtimes[2]
    st_ = hooks.state[2]
    # deliver 1..2 fully, accept RTS for 3 (payload pending), hold 4
    for s in (1, 2):
        hooks.on_arrival(rt, env(0, 2, s))
        hooks.on_deliver(rt, env(0, 2, s))
        rt.matching.unexpected.clear()  # pretend delivered
    hooks.on_arrival(rt, env(0, 2, 3), rvz_send_req_id=77)
    hooks.on_arrival(rt, env(0, 2, 4))
    prefix = hooks._scrub_inbound(rt, (0, 0))
    assert prefix == 2  # 3's payload never arrived
    ch = st_.chan_in((0, 0))
    assert ch.arrived == 2
    assert not ch.pending_data and not ch.buffer
    # 4 was held in unexpected: scrubbed (the peer re-sends it)
    assert all(e.seqnum <= 2 for e in rt.matching.unexpected)


@settings(max_examples=60, deadline=None)
@given(
    order=st.permutations(list(range(1, 9))),
    dups=st.lists(st.integers(min_value=1, max_value=8), max_size=6),
)
def test_property_any_arrival_order_accepts_each_seq_once(order, dups):
    """Whatever the interleaving of live/replayed/duplicate copies, each
    sequence number enters matching exactly once and in order."""
    world, hooks = make_world()
    rt = world.runtimes[2]
    for s in list(order) + dups:
        e = env(0, 2, s)
        if hooks.on_arrival(rt, e):
            rt.accept_arrival(e)
        world.engine.run(detect_deadlock=False)
    ch = hooks.state[2].chan_in((0, 0))
    assert ch.arrived == 8
    seqs = [e.seqnum for e in rt.matching.unexpected]
    assert seqs == list(range(1, 9))
