"""checkpoint_every="auto": the Young/Daly cadence plumbing.

The controller's contract: calibrate with one early checkpoint, then
settle on an interval within one iteration of sqrt(2*C*MTBF)/iter_time,
recomputed per cluster from cluster-consistent inputs (so the
coordinated barrier can never split), and recalibrate after a restart.
"""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBC, SPBCConfig
from repro.harness.runner import run_native, run_online_failure, run_spbc
from repro.storage.backend import InMemoryBackend, make_backend
from repro.apps.synthetic import ring_app

NRANKS = 8
PLAN = "tiered:ram@1,pfs@2"


def app(iters=12):
    return ring_app(iters=iters, msg_bytes=4096, compute_ns=300_000)


def auto_cfg(clusters, mtbf_ns=int(5e7), storage=None):
    return SPBCConfig(
        clusters=clusters,
        checkpoint_every="auto",
        mtbf_ns=mtbf_ns,
        storage=storage or make_backend(PLAN),
    )


# ----------------------------------------------------------------------
# Config validation (the CLI error paths' foundation)
# ----------------------------------------------------------------------

def test_auto_requires_cost_modeled_backend():
    clusters = ClusterMap.block(NRANKS, 4)
    with pytest.raises(ValueError, match="cost-modeled"):
        SPBC(SPBCConfig(clusters=clusters, checkpoint_every="auto"))
    with pytest.raises(ValueError, match="cost-modeled"):
        SPBC(
            SPBCConfig(
                clusters=clusters,
                checkpoint_every="auto",
                storage=InMemoryBackend(),
            )
        )


def test_auto_requires_positive_mtbf():
    clusters = ClusterMap.block(NRANKS, 4)
    with pytest.raises(ValueError, match="MTBF"):
        SPBC(auto_cfg(clusters, mtbf_ns=0))
    with pytest.raises(ValueError, match="MTBF"):
        SPBC(auto_cfg(clusters, mtbf_ns=-5))


def test_checkpoint_every_rejects_other_strings_and_nonpositive_ints():
    clusters = ClusterMap.block(NRANKS, 4)
    with pytest.raises(ValueError, match="'automatic'"):
        SPBC(SPBCConfig(clusters=clusters, checkpoint_every="automatic"))
    with pytest.raises(ValueError, match=">= 1"):
        SPBC(SPBCConfig(clusters=clusters, checkpoint_every=0))
    with pytest.raises(ValueError, match=">= 1"):
        SPBC(SPBCConfig(clusters=clusters, checkpoint_every=-3))


# ----------------------------------------------------------------------
# The cadence itself
# ----------------------------------------------------------------------

def test_auto_run_completes_and_matches_fixed_cadence_results():
    clusters = ClusterMap.block(NRANKS, 4)
    fixed = run_spbc(
        app(), NRANKS, clusters,
        config=SPBCConfig(
            clusters=clusters, checkpoint_every=2, storage=make_backend(PLAN)
        ),
        ranks_per_node=2,
    )
    auto = run_spbc(
        app(), NRANKS, clusters, config=auto_cfg(clusters), ranks_per_node=2
    )
    assert auto.results == fixed.results
    report = auto.hooks.auto_cadence_report()
    assert set(report) == {0, 1, 2, 3}
    for rep in report.values():
        assert rep["commits"] >= 1  # at least the calibration round


def test_auto_interval_tracks_young_daly_within_one_iteration():
    """The acceptance criterion: the settled interval reproduces
    optimal_interval() to within one iteration."""
    clusters = ClusterMap.block(NRANKS, 4)
    res = run_spbc(
        app(iters=16), NRANKS, clusters,
        config=auto_cfg(clusters, mtbf_ns=int(2e7)), ranks_per_node=2,
    )
    for cluster, rep in res.hooks.auto_cadence_report().items():
        assert rep["iter_ns"] > 0
        predicted = max(1, round(rep["t_opt_ns"] / rep["iter_ns"]))
        assert abs(rep["every"] - predicted) <= 1, (cluster, rep)


def test_auto_interval_scales_with_mtbf():
    """Less reliable machines -> denser checkpoints (more commits)."""
    clusters = ClusterMap.block(NRANKS, 4)
    commits = {}
    for mtbf in (int(1e6), int(1e10)):
        res = run_spbc(
            app(iters=16), NRANKS, clusters,
            config=auto_cfg(clusters, mtbf_ns=mtbf), ranks_per_node=2,
        )
        report = res.hooks.auto_cadence_report()
        commits[mtbf] = sum(rep["commits"] for rep in report.values())
        every = {rep["every"] for rep in report.values()}
        assert all(e >= 1 for e in every)
    assert commits[int(1e6)] >= commits[int(1e10)]


def test_auto_cadence_survives_failure_and_recalibrates():
    clusters = ClusterMap.block(NRANKS, 4)
    ref = run_native(app(), NRANKS, ranks_per_node=2)
    out = run_online_failure(
        app(), NRANKS, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.5), fail_rank=0,
        config=auto_cfg(clusters, mtbf_ns=int(5e6)),
        ranks_per_node=2, failure_kind="node",
    )
    assert out.results == ref.results
    # the restarted cluster recalibrated (fresh cadence, >= 1 commit
    # unless it finished before its first post-restart boundary)
    report = out.world.hooks.auto_cadence_report()
    assert 0 in report
