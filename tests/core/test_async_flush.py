"""Async checkpoint flush: commit semantics on the event-driven I/O path.

``--storage ...:async`` commits a coordinated checkpoint once the local
tiers land and drains the PFS copy in the background:

* the app's checkpoint *stall* shrinks (the shared-tier burst no longer
  blocks compute) and results stay identical;
* an in-flight flush is not a restorable copy — a node failure mid-
  flush cancels it and recovery restarts from the last *fully drained*
  round;
* log GC credit arrives when the drain lands (deferred, cluster-
  consistent), not at the commit barrier;
* the PFS burst timeline is *measured* from the actual flows, so
  ``pfs_stagger_ns`` is observed to de-conflict the clusters instead of
  being assumed to.
"""

import pytest

from repro.apps.synthetic import ring_app
from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_failure_schedule, run_native, run_spbc
from repro.util.units import MB, MS

NRANKS = 8
RPN = 2
K = 4  # cluster == node under ClusterMap.block(8, 4)

STATE = 4 * MB
PLAN = "tiered:ram@1,pfs@2"


def app(iters=8):
    return ring_app(iters=iters, msg_bytes=2048, compute_ns=2 * MS)


def run_mode(spec, iters=8, stagger_ns=0, allreduce_every=None):
    cm = ClusterMap.block(NRANKS, K)
    cfg = SPBCConfig(
        clusters=cm,
        checkpoint_every=2,
        state_nbytes=STATE,
        pfs_stagger_ns=stagger_ns,
    )
    factory = (
        ring_app(
            iters=iters, msg_bytes=2048, compute_ns=2 * MS,
            allreduce_every=allreduce_every,
        )
        if allreduce_every
        else app(iters)
    )
    return run_spbc(
        factory, NRANKS, cm, config=cfg, storage=spec, ranks_per_node=RPN
    )


def test_async_flush_shrinks_stall_and_makespan_preserving_results():
    sync = run_mode(PLAN)
    asyn = run_mode(PLAN + ":async")
    assert asyn.results == sync.results
    assert asyn.hooks.total_checkpoint_stall_ns() < sync.hooks.total_checkpoint_stall_ns()
    assert asyn.makespan_ns < sync.makespan_ns
    # Every deferred PFS copy eventually drained: same durable rounds.
    sb, ab = sync.hooks.storage, asyn.hooks.storage
    for r in range(NRANKS):
        assert ab.guaranteed_round(r) == sb.guaranteed_round(r)
    assert ab.flush_flows_completed == ab.flush_flows_started > 0


def test_async_flush_same_rounds_fewer_stalled_ns_via_spec_string():
    """The ``:async`` spec goes through the same registry as every other
    backend (CLI/harness parity)."""
    res = run_mode("tiered:ram@1,pfs@4:async")
    backend = res.hooks.storage
    assert backend.async_flush
    assert backend.flush_flows_started > 0


def _probe_and_flush_windows(spec):
    probe = run_mode(spec, iters=12)
    windows = [
        w for w in probe.hooks.storage.shared_flow_windows() if w[2] == 0
    ]
    assert windows, "probe produced no PFS flush windows for rank 0"
    return probe, sorted(windows, key=lambda w: w[0])


def test_node_failure_mid_flush_restarts_from_last_drained_round():
    spec = PLAN + ":async"
    probe, windows = _probe_and_flush_windows(spec)
    ref = run_native(app(iters=12), NRANKS, ranks_per_node=RPN)
    # Pick an in-flight window with a fully drained PFS round before it.
    target = None
    for start, end, _rank, rnd in windows:
        drained = [w[3] for w in windows if w[1] < start]
        if drained:
            target = (start, end, rnd, max(drained))
            break
    assert target is not None, "need two PFS rounds; recalibrate the app"
    start, end, inflight_round, last_drained = target
    fail_at = (start + end) // 2
    assert fail_at < probe.makespan_ns  # the app is still running

    cm = ClusterMap.block(NRANKS, K)
    out = run_failure_schedule(
        app(iters=12), NRANKS, cm,
        [(fail_at, 0, "node")],
        config=SPBCConfig(clusters=cm, checkpoint_every=2, state_nbytes=STATE),
        ranks_per_node=RPN, storage=spec,
    )
    assert out.results == ref.results
    ev = out.manager.failures[0]
    assert ev.kind == "node"
    # Never the in-flight round: the flush was cancelled with the node.
    assert ev.cancelled_flushes >= 1
    assert ev.restarted_from_round < inflight_round
    assert ev.restarted_from_round == last_drained
    assert ev.restored_tier == "pfs"
    # The restart read ran as flows and was measured, not assumed.
    assert ev.restore_read_ns > 0


def test_process_failure_lets_the_flush_land():
    """A process crash does not kill the node: local copies survive and
    the in-flight drain (FTI-style node-local daemon) completes, so the
    restart comes from the latest committed round."""
    spec = PLAN + ":async"
    probe, windows = _probe_and_flush_windows(spec)
    ref = run_native(app(iters=12), NRANKS, ranks_per_node=RPN)
    # Latest flush still in flight while the app is running.
    live = [w for w in windows if (w[0] + w[1]) // 2 < probe.makespan_ns]
    assert live, "every flush drains post-app; recalibrate the app"
    start, end, _rank, rnd = live[-1]
    fail_at = (start + end) // 2
    # Which rounds had committed (ram copy registered) by fail_at?
    committed = [
        r for r in probe.hooks.storage.rounds_of(0)
        if probe.hooks.storage.retrieve(0, r).ckpt.taken_at_ns < fail_at
    ]
    cm = ClusterMap.block(NRANKS, K)
    out = run_failure_schedule(
        app(iters=12), NRANKS, cm,
        [(fail_at, 0, "process")],
        config=SPBCConfig(clusters=cm, checkpoint_every=2, state_nbytes=STATE),
        ranks_per_node=RPN, storage=spec,
    )
    assert out.results == ref.results
    ev = out.manager.failures[0]
    assert ev.cancelled_flushes == 0
    assert ev.restarted_from_round == max(committed)
    backend = out.world.hooks.storage
    # No flush died with the process crash; every started drain either
    # landed or was superseded by the re-executed rounds' own flushes.
    assert backend.flush_flows_cancelled + backend.flush_flows_completed == (
        backend.flush_flows_started
    )


def test_async_deferred_gc_collects_once_the_drain_lands():
    """Durability arrives between barriers under async flush; the
    deferred cluster-consistent GC still frees sender logs."""
    res = run_mode(PLAN + ":async", iters=12)
    assert res.hooks.total_collected_log_bytes() > 0


def test_async_stagger_peak_writers_measured_not_assumed():
    flat = run_mode(PLAN + ":async", allreduce_every=2)
    spread = run_mode(PLAN + ":async", stagger_ns=2 * MS, allreduce_every=2)
    peak_flat = flat.hooks.peak_concurrent_pfs_writers()
    peak_spread = spread.hooks.peak_concurrent_pfs_writers()
    assert peak_flat == NRANKS
    assert peak_spread == NRANKS // K
    # Contention *emerges*: the unstaggered flows share the PFS and each
    # drains slower than a staggered (de-conflicted) flow.
    def avg_duration(res):
        ws = res.hooks.storage.shared_flow_windows()
        return sum(e - s for s, e, _r, _n in ws) / len(ws)

    assert avg_duration(spread) < avg_duration(flat)


def test_async_stagger_aliasing_is_observable():
    """The sync path *assumes* the offsets de-conflict the clusters.
    The measured flow timeline shows when they do not: a stagger close
    to the checkpoint cadence pushes cluster c's round-r burst onto
    cluster c+1's round-(r-1) burst, and the peak exceeds one cluster's
    worth of writers — the event-driven scheduler catches what the
    closed-form charge cannot."""
    aliased = run_mode(PLAN + ":async", stagger_ns=10 * MS, allreduce_every=2)
    peak = aliased.hooks.peak_concurrent_pfs_writers()
    assert NRANKS // K < peak < NRANKS


def test_async_auto_cadence_optimizes_against_the_stall_cost():
    """checkpoint_every='auto' under async flush uses the local-tier
    stall as Young's C — a cheaper C means an equal-or-tighter cadence
    than the sync plan's."""
    cm = ClusterMap.block(NRANKS, K)

    def run(spec):
        cfg = SPBCConfig(
            clusters=cm,
            checkpoint_every="auto",
            mtbf_ns=int(0.5e9),
            state_nbytes=STATE,
        )
        return run_spbc(
            app(iters=10), NRANKS, cm, config=cfg, storage=spec,
            ranks_per_node=RPN,
        )

    sync_rep = run(PLAN).hooks.auto_cadence_report()
    async_rep = run(PLAN + ":async").hooks.auto_cadence_report()
    for cluster in async_rep:
        assert (
            async_rep[cluster]["ckpt_cost_ns"]
            <= sync_rep[cluster]["ckpt_cost_ns"]
        )
        assert async_rep[cluster]["every"] <= sync_rep[cluster]["every"]


def test_async_ssd_drain_defers_the_local_copy():
    """The node-local SSD declares ``background_drain``: under async
    flush its writes leave the commit barrier too (FTI-style local
    daemon), so only the RAM copy stalls the app — and the drained
    copies still all land."""
    from repro.storage.backend import make_backend

    spec = "tiered:ram@1,ssd@2,pfs@4"
    b = make_backend(spec + ":async")
    # Round 2 schedules ram+ssd, round 4 ram+ssd+pfs: the SSD defers
    # alongside the PFS, the RAM copy never does.
    assert [t.name for t in b.deferred_tiers(2)] == ["local-ssd"]
    assert [t.name for t in b.deferred_tiers(4)] == ["local-ssd", "pfs"]
    assert b.amortized_write_cost_ns(STATE) < make_backend(
        spec
    ).amortized_write_cost_ns(STATE)

    sync = run_mode(spec, iters=12)
    asyn = run_mode(spec + ":async", iters=12)
    assert asyn.results == sync.results
    assert (
        asyn.hooks.total_checkpoint_stall_ns()
        < sync.hooks.total_checkpoint_stall_ns()
    )
    ab, sb = asyn.hooks.storage, sync.hooks.storage
    # Every deferred SSD copy eventually drained: the same rounds hold
    # local-ssd copies in both modes, they just landed off the barrier.
    assert ab.tier_writes["local-ssd"] == sb.tier_writes["local-ssd"] > 0
    assert ab.flush_flows_completed == ab.flush_flows_started > 0
    for r in range(NRANKS):
        assert ab.guaranteed_round(r) == sb.guaranteed_round(r)


def test_async_ssd_drain_mid_flight_copy_is_not_restorable():
    """A node failure while the SSD drain is in flight cancels it —
    recovery restarts from a fully landed round, exactly like a PFS
    flush cancellation (no time travel through the local daemon)."""
    spec = "tiered:ram@1,ssd@2,pfs@4:async"
    probe = run_mode(spec, iters=12)
    b = probe.hooks.storage
    assert b.flush_flows_started > 0
    ref = run_native(app(iters=12), NRANKS, ranks_per_node=RPN)
    # Fail a node just after round 2's commit barrier (RAM copy only),
    # while the ~8 ms SSD drain is still in flight.
    ck = b.retrieve(0, 2)
    assert ck is not None
    fail_at = (
        ck.ckpt.taken_at_ns
        + b.write_cost_ns(ck.ckpt, concurrent_writers=NRANKS)
        + 1_000_000
    )
    cm = ClusterMap.block(NRANKS, K)
    out = run_failure_schedule(
        app(iters=12), NRANKS, cm,
        [(fail_at, 0, "node")],
        config=SPBCConfig(clusters=cm, checkpoint_every=2, state_nbytes=STATE),
        ranks_per_node=RPN, storage=spec,
    )
    assert out.results == ref.results
    ev = out.manager.failures[0]
    assert ev.cancelled_flushes >= 1
    assert ev.restarted_from_round < 2


def test_async_spec_on_memory_backend_is_rejected():
    with pytest.raises(ValueError, match="memory backend takes no arguments"):
        from repro.storage.backend import make_backend

        make_backend("memory:async")


def test_third_party_node_loss_mid_restore_replans_the_read():
    """A restore pipeline sourced from a partner mirror must not land
    after the buddy node dies mid-read: the pending restore is
    re-planned against what still survives (the drained PFS round)."""
    from repro.harness.runner import run_failure_schedule

    spec = "partner:ram@1,partner@1,pfs@3:async"
    cm = ClusterMap.block(NRANKS, K)
    factory = ring_app(iters=12, msg_bytes=2048, compute_ns=2 * MS)
    ref = run_native(ring_app(iters=12, msg_bytes=2048, compute_ns=2 * MS),
                     NRANKS, ranks_per_node=RPN)

    def cfg():
        return SPBCConfig(clusters=cm, checkpoint_every=2, state_nbytes=STATE)

    probe = run_failure_schedule(
        factory, NRANKS, cm, [], config=cfg(),
        ranks_per_node=RPN, storage=spec,
    )
    b = probe.world.hooks.storage
    target = 4  # ram+partner copies only (pfs rounds are 3, 6)
    assert target in b.rounds_of(0)
    commit = max(
        b.retrieve(r, target).ckpt.taken_at_ns
        + b.write_cost_ns(b.retrieve(r, target).ckpt, concurrent_writers=NRANKS)
        for r in cm.members(0)
    )
    t_a = commit + 200_000  # node 0 dies: restore will read partner@node1
    # The PFS round 3 must be fully drained by then (the fallback).
    drained = [w for w in b.shared_flow_windows() if w[2] == 0 and w[3] == 3]
    assert drained and drained[0][1] < t_a
    # Node 1 dies while cluster 0's partner read (~3 ms for 4 MB at
    # 1.25 GB/s) is in flight, 0.5 ms after the restore began.
    t_b = t_a + 2_000_000 + 500_000

    out = run_failure_schedule(
        ring_app(iters=12, msg_bytes=2048, compute_ns=2 * MS), NRANKS, cm,
        [(t_a, 0, "node"), (t_b, 2, "node")],
        config=cfg(), ranks_per_node=RPN, storage=spec,
    )
    assert out.results == ref.results
    ev0 = [ev for ev in out.manager.failures if ev.cluster == 0][-1]
    # Never restored off the mirror that died mid-read: re-planned onto
    # the last drained PFS round.
    assert ev0.restored_tier == "pfs"
    assert ev0.restarted_from_round == 3 < target
