"""Cross-cluster staggering of PFS rounds: cluster c delays its shared-
tier write burst by c * pfs_stagger_ns, so the shared medium sees the
clusters one after another — peak concurrent PFS writers drops from
"every rank at once" to one cluster's worth."""

import pytest

from repro.apps.synthetic import ring_app
from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBC, SPBCConfig
from repro.harness.runner import run_native, run_spbc
from repro.util.units import KB, MS

NRANKS = 8
RPN = 2
K = 4


def app():
    # The allreduce before every checkpoint boundary globally re-aligns
    # the clusters, so only the configured offsets separate the bursts
    # (the ring alone is a pipeline: skew from one staggered round would
    # otherwise leak into the next boundary).
    return ring_app(
        iters=8, msg_bytes=2048, compute_ns=2 * MS, allreduce_every=2
    )


def run_with_stagger(stagger_ns):
    cm = ClusterMap.block(NRANKS, K)
    cfg = SPBCConfig(
        clusters=cm,
        checkpoint_every=2,
        state_nbytes=256 * KB,
        pfs_stagger_ns=stagger_ns,
    )
    return run_spbc(
        app(), NRANKS, cm,
        config=cfg, storage="tiered:ram@1,pfs@2", ranks_per_node=RPN,
    )


def test_stagger_drops_peak_concurrent_pfs_writers():
    flat = run_with_stagger(0)
    spread = run_with_stagger(10 * MS)
    peak_flat = flat.hooks.peak_concurrent_pfs_writers()
    peak_spread = spread.hooks.peak_concurrent_pfs_writers()
    # Unstaggered, every rank's burst overlaps; staggered, at most one
    # cluster (NRANKS / K ranks) writes at a time.
    assert peak_flat == NRANKS
    assert peak_spread < peak_flat
    assert peak_spread == NRANKS // K
    # Both runs saw the same number of shared-tier bursts.
    assert len(flat.hooks.pfs_write_windows) == len(
        spread.hooks.pfs_write_windows
    )
    assert len(flat.hooks.pfs_write_windows) > 0


def test_stagger_preserves_results_and_offsets_scale_with_cluster_id():
    ref = run_native(app(), NRANKS, ranks_per_node=RPN)
    spread = run_with_stagger(10 * MS)
    assert spread.results == ref.results
    # Per shared round, cluster c's burst starts c * stagger later.
    by_round = {}
    for start, _end, cluster in spread.hooks.pfs_write_windows:
        by_round.setdefault(cluster, []).append(start)
    first = {c: min(starts) for c, starts in by_round.items()}
    base = first[0]
    for c in range(1, K):
        # Offsets up to the clusters' (µs-scale) barrier-exit jitter.
        assert first[c] - base >= c * 10 * MS - MS


def test_stagger_validation_rejects_negative():
    cm = ClusterMap.block(NRANKS, K)
    with pytest.raises(ValueError, match="pfs_stagger_ns"):
        SPBC(SPBCConfig(clusters=cm, pfs_stagger_ns=-1))
