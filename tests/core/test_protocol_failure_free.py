"""SPBC failure-free behaviour: logging, identifiers, overhead, pattern API."""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBC, SPBCConfig, LogCostModel
from repro.harness.runner import run_native, run_spbc
from repro.apps.synthetic import probe_reply_app, ring_app
from repro.apps.base import get_app


def test_only_intercluster_messages_logged():
    app = ring_app(iters=4, msg_bytes=1000, compute_ns=10_000)
    clusters = ClusterMap.block(8, 2)
    res = run_spbc(app, 8, clusters, ranks_per_node=4)
    spbc = res.hooks
    # ring: only channels 3->4 and 7->0 cross the two block clusters
    for rank, st in spbc.state.items():
        if rank in (3, 7):
            assert st.log.records_logged == 4
        else:
            assert st.log.records_logged == 0


def test_pure_logging_logs_everything():
    app = ring_app(iters=3, msg_bytes=500, compute_ns=10_000)
    res = run_spbc(app, 6, ClusterMap.singletons(6), ranks_per_node=2)
    spbc = res.hooks
    for rank, st in spbc.state.items():
        assert st.log.records_logged == 3  # every send crosses clusters


def test_single_cluster_logs_nothing():
    app = ring_app(iters=3, msg_bytes=500, compute_ns=10_000)
    res = run_spbc(app, 6, ClusterMap.single(6), ranks_per_node=2)
    assert res.hooks.total_bytes_logged() == 0


def test_logged_bytes_match_intercluster_traffic():
    app = ring_app(iters=5, msg_bytes=777, compute_ns=5_000)
    clusters = ClusterMap.block(8, 4)
    res = run_spbc(app, 8, clusters, ranks_per_node=2)
    spbc = res.hooks
    expected = 0
    for e in res.trace.sends():
        src, dst, _cid = e.channel
        if clusters.is_intercluster(src, dst):
            expected += e.nbytes
    assert spbc.total_bytes_logged() == expected


def test_spbc_preserves_application_results():
    app = ring_app(iters=6, msg_bytes=2048, compute_ns=20_000, allreduce_every=2)
    native = run_native(app, 8, ranks_per_node=4)
    spbc = run_spbc(app, 8, ClusterMap.block(8, 2), ranks_per_node=4)
    assert native.results == spbc.results


def test_overhead_small_but_positive():
    app = get_app("minighost").factory(iters=2, nvars=6, compute_ns_per_var=2_000_000)
    native = run_native(app, 16, ranks_per_node=4)
    spbc = run_spbc(app, 16, ClusterMap.block(16, 4), ranks_per_node=4)
    overhead = (spbc.makespan_ns - native.makespan_ns) / native.makespan_ns
    assert 0.0 <= overhead < 0.05  # paper Table 2: at most ~1%


def test_more_clusters_more_logging():
    app = get_app("halo2d").factory(iters=4, msg_bytes=4096, compute_ns=50_000)
    logged = []
    for k in (1, 2, 4, 8, 16):
        res = run_spbc(app, 16, ClusterMap.block(16, k), ranks_per_node=1)
        logged.append(res.hooks.total_bytes_logged())
    assert logged == sorted(logged)
    assert logged[0] == 0 and logged[-1] > 0


def test_idents_stamped_on_messages_inside_pattern():
    app = probe_reply_app(iters=2, use_pattern_api=True)
    res = run_spbc(app, 6, ClusterMap.block(6, 2), ranks_per_node=3)
    idents = {e.ident for e in res.trace.sends() if e.tag in (1, 2)}
    # request/reply messages carry (pattern, iteration) != default
    assert idents and all(i != (0, 0) for i in idents)
    assert {i[1] for i in idents} == {1, 2}  # two iterations


def test_ident_matching_disabled_uses_default():
    cfg = SPBCConfig(clusters=ClusterMap.block(6, 2), ident_matching=False)
    app = probe_reply_app(iters=1, use_pattern_api=True)
    res = run_spbc(app, 6, ClusterMap.block(6, 2), config=cfg, ranks_per_node=3)
    assert all(e.ident == (0, 0) for e in res.trace.sends())


def test_seqnums_per_channel_monotone_gapless():
    app = get_app("milc").factory(iters=2, compute_ns=10_000)
    res = run_spbc(app, 8, ClusterMap.block(8, 2), ranks_per_node=4)
    for chan, seq in res.trace.per_channel_send_sequences().items():
        nums = [s for s, _t, _b in seq]
        assert nums == list(range(1, len(nums) + 1)), chan


def test_cost_model_values():
    cost = LogCostModel(log_fixed_ns=100, log_ns_per_byte=0.5, ident_fixed_ns=10)
    assert cost.send_cost_ns(True, 1000) == 600
    assert cost.send_cost_ns(False, 1000) == 10


def test_cluster_map_size_mismatch_rejected():
    app = ring_app(iters=1)
    with pytest.raises(ValueError):
        run_spbc(app, 8, ClusterMap.block(4, 2), ranks_per_node=4)


def test_lr_tracks_deliveries():
    app = ring_app(iters=5, msg_bytes=100, compute_ns=1_000)
    clusters = ClusterMap.block(4, 2)
    res = run_spbc(app, 4, clusters, ranks_per_node=2)
    spbc = res.hooks
    wcid = res.world.comm_world.comm_id
    # rank 2 receives 5 inter-cluster messages from rank 1
    assert spbc.state[2].lr[(wcid, 1)] == 5
    # and intra-cluster channels are not tracked in lr
    assert (wcid, 3) not in spbc.state[2].lr


def test_pattern_api_misuse_detected():
    from repro.harness.runner import run_app

    def bad(ctx, state=None):
        ctx.begin_iteration(99)  # never declared
        yield from ctx.compute(0)

    with pytest.raises(RuntimeError, match="never declared"):
        run_app(bad, 2, ranks_per_node=2)


def test_end_iteration_wrong_pattern_detected():
    from repro.harness.runner import run_app

    def bad(ctx, state=None):
        a = ctx.declare_pattern()
        b = ctx.declare_pattern()
        ctx.begin_iteration(a)
        ctx.end_iteration(b)
        yield from ctx.compute(0)

    with pytest.raises(RuntimeError, match="active pattern"):
        run_app(bad, 2, ranks_per_node=2)
