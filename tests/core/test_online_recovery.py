"""Online failure injection with true partial restart (Algorithm 1 lines
16-26 end to end) — the capability the paper's prototype lacked."""

import pytest

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_native, run_online_failure
from repro.apps.base import get_app
from repro.apps.synthetic import halo2d_app, ring_app
from repro.util.units import MS


def reference(app, nranks, rpn=2):
    return run_native(app, nranks, ranks_per_node=rpn)


def test_failure_before_any_checkpoint_recovers_from_start():
    app = ring_app(iters=6, msg_bytes=1024, compute_ns=100_000)
    nranks = 8
    clusters = ClusterMap.block(nranks, 4)
    ref = reference(app, nranks)
    out = run_online_failure(
        app, nranks, clusters, fail_at_ns=ref.makespan_ns // 2, fail_rank=0,
        ranks_per_node=2,
    )
    assert out.results == ref.results
    assert out.restarted_ranks == {0, 1}
    assert out.makespan_ns > ref.makespan_ns  # rework took extra time


def test_failure_containment_only_failed_cluster_restarts():
    app = ring_app(iters=6, msg_bytes=1024, compute_ns=100_000)
    nranks = 8
    clusters = ClusterMap.block(nranks, 4)
    ref = reference(app, nranks)
    out = run_online_failure(
        app, nranks, clusters, fail_at_ns=ref.makespan_ns // 2, fail_rank=5,
        ranks_per_node=2,
    )
    assert out.restarted_ranks == {4, 5}
    assert out.results == ref.results
    # non-failed processes were never replaced
    mgr = out.manager
    assert all(r in (4, 5) for r in mgr.restarts)
    assert len(mgr.failures) == 1 and mgr.failures[0].cluster == 2


def test_recovery_from_checkpoint_resumes_iteration():
    app = ring_app(iters=8, msg_bytes=2048, compute_ns=200_000)
    nranks = 8
    clusters = ClusterMap.block(nranks, 2)
    ref = reference(app, nranks)
    cfg = SPBCConfig(clusters=clusters, checkpoint_every=2)
    out = run_online_failure(
        app, nranks, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.8),
        fail_rank=0,
        config=cfg,
        ranks_per_node=2,
    )
    assert out.results == ref.results
    ckpt = out.world.hooks.storage.load_latest(0)
    assert ckpt is not None and ckpt.app_state["iter"] >= 2
    assert out.manager.failures[0].restarted_from_round >= 1


@pytest.mark.parametrize("appname,params,nranks", [
    ("halo2d", dict(iters=6, msg_bytes=4096, compute_ns=150_000), 8),
    ("minife", dict(iters=5, compute_ns=300_000), 8),
    ("milc", dict(iters=4, compute_ns=200_000), 8),
    ("gtc", dict(iters=4, compute_ns=300_000, npartdom=2), 8),
])
def test_online_recovery_matches_reference_across_apps(appname, params, nranks):
    app = get_app(appname).factory(**params)
    clusters = ClusterMap.block(nranks, 2)
    ref = reference(app, nranks)
    cfg = SPBCConfig(clusters=clusters, checkpoint_every=2)
    out = run_online_failure(
        app, nranks, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.6),
        fail_rank=0,
        config=cfg,
        ranks_per_node=4,
    )
    assert out.results == ref.results


def test_failure_during_large_rendezvous_transfer():
    """Crash while 200KB messages are in flight: purge + replay must
    still converge to the reference results."""
    app = ring_app(iters=5, msg_bytes=200_000, compute_ns=100_000)
    nranks = 4
    clusters = ClusterMap.block(nranks, 2)
    ref = reference(app, nranks)
    for frac in (0.3, 0.5, 0.7):
        out = run_online_failure(
            app, nranks, clusters,
            fail_at_ns=int(ref.makespan_ns * frac),
            fail_rank=0,
            ranks_per_node=2,
        )
        assert out.results == ref.results, f"diverged at failure fraction {frac}"


def test_two_failures_in_sequence():
    """A second crash of the same cluster during/after recovery."""
    app = ring_app(iters=8, msg_bytes=1024, compute_ns=200_000)
    nranks = 8
    clusters = ClusterMap.block(nranks, 4)
    ref = reference(app, nranks)
    cfg = SPBCConfig(clusters=clusters, checkpoint_every=3)
    out = run_online_failure(
        app, nranks, clusters,
        fail_at_ns=int(ref.makespan_ns * 0.4),
        fail_rank=0,
        config=cfg,
        ranks_per_node=2,
    )
    # inject a second failure via the manager on a fresh run
    from repro.core.protocol import SPBC
    from repro.core.recovery import RecoveryManager
    from repro.mpi.context import RankContext
    from repro.mpi.runtime import World

    hooks = SPBC(SPBCConfig(clusters=clusters, checkpoint_every=3))
    world = World(nranks, ranks_per_node=2, hooks=hooks)
    mgr = RecoveryManager(world, hooks, app)
    for r in range(nranks):
        world.launch(r, app(RankContext(world, r), None))
    mgr.inject_failure(int(ref.makespan_ns * 0.4), 0)
    mgr.inject_failure(int(ref.makespan_ns * 0.9), 1)
    world.run()
    results = {r: p.result for r, p in world.processes.items()}
    assert results == ref.results
    assert len(mgr.failures) == 2


def test_concurrent_failures_of_two_clusters():
    """Multiple concurrent failures (the paper's model allows them)."""
    app = ring_app(iters=8, msg_bytes=1024, compute_ns=200_000)
    nranks = 8
    clusters = ClusterMap.block(nranks, 4)
    ref = reference(app, nranks)

    from repro.core.protocol import SPBC
    from repro.core.recovery import RecoveryManager
    from repro.mpi.context import RankContext
    from repro.mpi.runtime import World

    hooks = SPBC(SPBCConfig(clusters=clusters, checkpoint_every=2))
    world = World(nranks, ranks_per_node=2, hooks=hooks)
    mgr = RecoveryManager(world, hooks, app)
    for r in range(nranks):
        world.launch(r, app(RankContext(world, r), None))
    t = int(ref.makespan_ns * 0.5)
    mgr.inject_failure(t, 0)  # cluster 0
    mgr.inject_failure(t, 4)  # cluster 2, same instant
    world.run()
    results = {r: p.result for r, p in world.processes.items()}
    assert results == ref.results
    assert {f.cluster for f in mgr.failures} == {0, 2}


def test_restart_delay_shows_in_makespan():
    app = ring_app(iters=4, msg_bytes=512, compute_ns=100_000)
    nranks = 4
    clusters = ClusterMap.block(nranks, 2)
    ref = reference(app, nranks)
    slow = run_online_failure(
        app, nranks, clusters, fail_at_ns=ref.makespan_ns // 2,
        restart_delay_ns=20 * MS, ranks_per_node=2,
    )
    fast = run_online_failure(
        app, nranks, clusters, fail_at_ns=ref.makespan_ns // 2,
        restart_delay_ns=1 * MS, ranks_per_node=2,
    )
    assert slow.results == fast.results == ref.results
    assert slow.makespan_ns > fast.makespan_ns
