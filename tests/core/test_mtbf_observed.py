"""Per-cluster MTBF estimation from observed failures
(``mtbf_ns="observed"``): the estimator's smoothing math on a scripted
failure schedule, and the auto cadence consuming the estimate."""

import pytest

from repro.apps.synthetic import ring_app
from repro.core.clusters import ClusterMap
from repro.core.mtbf import MTBFEstimator
from repro.core.protocol import SPBC, SPBCConfig
from repro.harness.runner import run_failure_schedule, run_native
from repro.storage.backend import make_backend
from repro.util.units import KB, MS, SEC

NRANKS = 8
RPN = 2


# ----------------------------------------------------------------------
# The estimator itself (scripted schedule, hand-computed smoothing)
# ----------------------------------------------------------------------

def test_estimator_returns_prior_until_first_gap():
    est = MTBFEstimator(prior_ns=10 * SEC)
    assert est.mtbf_ns() == 10 * SEC and not est.observed
    est.note_failure(3 * SEC)  # one failure: still no gap
    assert est.mtbf_ns() == 10 * SEC and not est.observed


def test_estimator_exponentially_smooths_scripted_gaps():
    est = MTBFEstimator(prior_ns=60 * SEC, alpha=0.5)
    for t in (10 * SEC, 14 * SEC, 22 * SEC):
        est.note_failure(t)
    # gaps: 4s, 8s.  m1 = 4s; m2 = 0.5*8 + 0.5*4 = 6s.
    assert est.samples == 2 and est.observed
    assert est.mtbf_ns() == 6 * SEC

    est.note_failure(24 * SEC)  # gap 2s -> 0.5*2 + 0.5*6 = 4s
    assert est.mtbf_ns() == 4 * SEC


def test_estimator_ignores_zero_gaps_and_validates():
    est = MTBFEstimator(prior_ns=SEC)
    est.note_failure(5 * SEC)
    est.note_failure(5 * SEC)  # same blast radius, same instant
    assert est.samples == 0
    with pytest.raises(ValueError, match="prior"):
        MTBFEstimator(prior_ns=0)
    with pytest.raises(ValueError, match="alpha"):
        MTBFEstimator(prior_ns=SEC, alpha=0.0)


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------

def test_config_accepts_observed_and_rejects_other_strings():
    cm = ClusterMap.block(NRANKS, 4)
    SPBC(
        SPBCConfig(
            clusters=cm,
            checkpoint_every="auto",
            mtbf_ns="observed",
            storage=make_backend("tiered:ram@1,pfs@2"),
        )
    )
    with pytest.raises(ValueError, match="'observed'"):
        SPBC(SPBCConfig(clusters=cm, mtbf_ns="estimated"))
    with pytest.raises(ValueError, match="mtbf_prior_ns"):
        SPBC(SPBCConfig(clusters=cm, mtbf_ns="observed", mtbf_prior_ns=0))


def test_mtbf_for_tracks_only_affected_clusters():
    cm = ClusterMap.block(NRANKS, 4)
    spbc = SPBC(
        SPBCConfig(clusters=cm, mtbf_ns="observed", mtbf_prior_ns=7 * SEC)
    )
    spbc.note_failure_observed([1], 2 * SEC)
    spbc.note_failure_observed([1], 5 * SEC)
    assert spbc._mtbf_for(1) == 3 * SEC  # one observed gap
    assert spbc._mtbf_for(0) == 7 * SEC  # untouched cluster: the prior
    report = spbc.mtbf_report()
    assert report[1]["samples"] == 1 and report[1]["observed"]


def test_constant_mtbf_bypasses_the_estimators():
    cm = ClusterMap.block(NRANKS, 4)
    spbc = SPBC(SPBCConfig(clusters=cm, mtbf_ns=9 * SEC))
    spbc.note_failure_observed([0], 1 * SEC)
    spbc.note_failure_observed([0], 2 * SEC)
    assert spbc._mtbf_for(0) == 9 * SEC


# ----------------------------------------------------------------------
# End to end: scripted failures feed the auto cadence
# ----------------------------------------------------------------------

def test_observed_mtbf_drives_auto_cadence_and_recovery_converges():
    factory = ring_app(iters=10, msg_bytes=2048, compute_ns=200_000)
    ref = run_native(factory, NRANKS, ranks_per_node=RPN)
    cm = ClusterMap.block(NRANKS, 4)
    # Two scripted process failures of the same cluster: after the
    # second, cluster 0's cadence runs on the observed 1.5ms gap instead
    # of the (absurdly large) prior.
    t1 = int(ref.makespan_ns * 0.3)
    t2 = t1 + int(1.5 * MS)
    out = run_failure_schedule(
        factory,
        NRANKS,
        cm,
        [(t1, 0, "process"), (t2, 0, "process")],
        config=SPBCConfig(
            clusters=cm,
            checkpoint_every="auto",
            mtbf_ns="observed",
            mtbf_prior_ns=60 * SEC,
            state_nbytes=16 * KB,
        ),
        ranks_per_node=RPN,
        storage="tiered:ram@1,pfs@2",
    )
    assert out.results == ref.results  # recovery still converges
    spbc = out.world.hooks
    report = spbc.mtbf_report()
    assert report[0]["samples"] == 1
    assert report[0]["mtbf_ns"] == t2 - t1
    assert spbc._mtbf_for(0) == t2 - t1
    # an untouched cluster still optimizes against the prior
    assert spbc._mtbf_for(3) == 60 * SEC
