"""Channel/send-determinism checkers and the AHB toolkit (sections 3.4-3.5).

The checkers approximate "all valid executions" with runs under distinct
network-jitter seeds; the bundled apps must be channel-deterministic
(SPBC's correctness condition), while the master/worker counterexample
must be flagged.
"""

import numpy as np
import pytest

from repro.core.clusters import ClusterMap
from repro.core.determinism import (
    HBIndex,
    always_happens_before,
    build_hb_index,
    check_channel_determinism,
    check_send_determinism,
)
from repro.harness.runner import run_native
from repro.apps.base import get_app
from repro.sim.network import NetworkParams
from repro.sim.tracing import CommEvent, Trace


def traces_for(appname, params, nranks, nseeds=3, rpn=4):
    app = get_app(appname).factory(**params)
    out = []
    for seed in range(nseeds):
        res = run_native(
            app,
            nranks,
            ranks_per_node=rpn,
            seed=seed,
            net_params=NetworkParams(jitter_max_ns=50_000),
        )
        out.append(res.trace)
    return out


APP_PARAMS = {
    "ring": dict(iters=3, compute_ns=20_000),
    "halo2d": dict(iters=3, compute_ns=20_000),
    "minife": dict(iters=3, compute_ns=100_000),
    "minighost": dict(iters=2, nvars=3, compute_ns_per_var=50_000),
    "amg": dict(cycles=2, compute_l0_ns=200_000),
    "gtc": dict(iters=3, compute_ns=100_000, npartdom=2),
    "milc": dict(iters=3, compute_ns=100_000),
    "cm1": dict(iters=2, compute_ns=100_000, nfields=2),
    "bt": dict(iters=2, compute_per_sweep_ns=50_000),
    "sp": dict(iters=2, compute_per_sweep_ns=50_000),
    "lu": dict(iters=2, block_ns=20_000),
    "mg": dict(cycles=2, compute_l0_ns=100_000),
}


@pytest.mark.parametrize("appname", sorted(APP_PARAMS))
def test_all_bundled_apps_are_channel_deterministic(appname):
    """SPBC's applicability condition (Definition 2) holds for every
    workload the benchmarks use."""
    traces = traces_for(appname, APP_PARAMS[appname], nranks=8)
    report = check_channel_determinism(traces)
    assert report.deterministic, report.mismatches[:3]


@pytest.mark.parametrize(
    "appname",
    ["ring", "halo2d", "cm1", "bt", "sp", "lu", "mg", "minighost"],
)
def test_named_receive_apps_are_send_deterministic(appname):
    traces = traces_for(appname, APP_PARAMS[appname], nranks=8)
    assert check_send_determinism(traces).deterministic


def test_master_worker_not_channel_deterministic():
    """The excluded class (section 3.4): first-come-first-served task
    hand-out changes even per-channel content across timings."""
    app = get_app("master_worker").factory(tasks=12)
    traces = []
    for seed in range(4):
        res = run_native(
            app,
            5,
            ranks_per_node=5,
            seed=seed,
            net_params=NetworkParams(jitter_max_ns=200_000),
        )
        traces.append(res.trace)
    report = check_channel_determinism(traces)
    assert not report.deterministic
    assert report.mismatches


def test_checker_needs_two_runs():
    with pytest.raises(ValueError):
        check_channel_determinism([Trace()])
    with pytest.raises(ValueError):
        check_send_determinism([Trace()])


def test_report_pinpoints_divergence():
    t1, t2 = Trace(), Trace()
    for seq, tag in [(1, 5), (2, 6)]:
        t1.record(CommEvent("send", 0, 0, (0, 1, 0), seq, tag=tag, nbytes=10))
    for seq, tag in [(1, 5), (2, 9)]:
        t2.record(CommEvent("send", 0, 0, (0, 1, 0), seq, tag=tag, nbytes=10))
    report = check_channel_determinism([t1, t2])
    assert not report.deterministic
    assert "index 1" in report.mismatches[0]


# ----------------------------------------------------------------------
# Vector clocks / HB
# ----------------------------------------------------------------------

def _mini_trace():
    """p0 sends m to p1; p1 then sends m' to p2."""
    t = Trace()
    t.record(CommEvent("send", 0, 10, (0, 1, 0), 1))
    t.record(CommEvent("deliver", 1, 20, (0, 1, 0), 1))
    t.record(CommEvent("send", 1, 30, (1, 2, 0), 1))
    t.record(CommEvent("deliver", 2, 40, (1, 2, 0), 1))
    return t


def test_hb_transitive_chain():
    ix = build_hb_index(_mini_trace(), 3)
    m, m2 = (0, 1, 0, 1), (1, 2, 0, 1)
    assert ix.happens_before("send", m, "deliver", m, )
    assert ix.happens_before("deliver", m, "send", m2)
    assert ix.happens_before("send", m, "deliver", m2)  # transitivity
    assert not ix.happens_before("deliver", m2, "send", m)


def test_hb_concurrent_events_unordered():
    t = Trace()
    t.record(CommEvent("send", 0, 10, (0, 2, 0), 1))
    t.record(CommEvent("send", 1, 10, (1, 2, 0), 1))
    t.record(CommEvent("deliver", 2, 30, (0, 2, 0), 1))
    t.record(CommEvent("deliver", 2, 40, (1, 2, 0), 1))
    ix = build_hb_index(t, 3)
    a, b = (0, 2, 0, 1), (1, 2, 0, 1)
    assert not ix.happens_before("send", a, "send", b)
    assert not ix.happens_before("send", b, "send", a)
    # but deliveries at the same process are ordered
    assert ix.happens_before("deliver", a, "deliver", b)


def test_hb_unknown_event_raises():
    ix = build_hb_index(_mini_trace(), 3)
    with pytest.raises(KeyError):
        ix.happens_before("send", (9, 9, 9, 9), "send", (0, 1, 0, 1))


def test_ahb_is_intersection():
    ix1 = build_hb_index(_mini_trace(), 3)
    # second "execution": the chain does not hold (m' delivered first)
    t2 = Trace()
    t2.record(CommEvent("send", 1, 5, (1, 2, 0), 1))
    t2.record(CommEvent("deliver", 2, 10, (1, 2, 0), 1))
    t2.record(CommEvent("send", 0, 15, (0, 1, 0), 1))
    t2.record(CommEvent("deliver", 1, 25, (0, 1, 0), 1))
    ix2 = build_hb_index(t2, 3)
    m, m2 = (0, 1, 0, 1), (1, 2, 0, 1)
    assert always_happens_before([ix1], "send", m, "deliver", m2)
    assert not always_happens_before([ix1, ix2], "send", m, "deliver", m2)
    with pytest.raises(ValueError):
        always_happens_before([], "send", m, "send", m2)
