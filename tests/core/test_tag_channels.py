"""Section-7 extension: per-(channel, tag) sequence numbers for hybrid
MPI+threads programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel import ChannelSeq, TagChannelSeq


def test_channelseq_basic():
    cs = ChannelSeq()
    assert cs.next(0, 1) == 1
    assert cs.next(0, 1) == 2
    assert cs.next(0, 2) == 1  # independent channel
    assert cs.current(0, 1) == 2
    assert cs.current(9, 9) == 0


def test_channelseq_snapshot_roundtrip():
    cs = ChannelSeq()
    cs.next(0, 1)
    snap = cs.snapshot()
    cs.next(0, 1)
    cs.restore(snap)
    assert cs.current(0, 1) == 1


def test_tagchannel_independent_streams():
    ts = TagChannelSeq()
    # two "threads" interleave on one channel with different tags
    assert ts.next(0, 1, tag=10) == 1
    assert ts.next(0, 1, tag=20) == 1
    assert ts.next(0, 1, tag=10) == 2
    assert ts.next(0, 1, tag=20) == 2
    assert ts.streams_of_channel(0, 1) == {10: 2, 20: 2}
    assert ts.streams_of_channel(0, 9) == {}


def test_tagchannel_resend_bounds():
    ts = TagChannelSeq()
    for _ in range(5):
        ts.next(0, 1, tag=10)
    for _ in range(3):
        ts.next(0, 1, tag=20)
    # peer says: got 3 of tag 10, all of tag 20
    bounds = ts.merge_resend_bounds({10: 3, 20: 3}, 0, 1)
    assert bounds == {10: (4, 5)}
    # peer got nothing of tag 20
    bounds = ts.merge_resend_bounds({10: 5}, 0, 1)
    assert bounds == {20: (1, 3)}
    # peer fully caught up
    assert ts.merge_resend_bounds({10: 5, 20: 3}, 0, 1) == {}


def test_tagchannel_snapshot_roundtrip():
    ts = TagChannelSeq()
    ts.next(0, 1, 5)
    snap = ts.snapshot()
    ts.next(0, 1, 5)
    ts.restore(snap)
    assert ts.current(0, 1, 5) == 1


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),   # comm
            st.integers(min_value=0, max_value=3),   # peer
            st.integers(min_value=0, max_value=4),   # tag
        ),
        min_size=1,
        max_size=120,
    )
)
def test_property_per_stream_gapless_monotone(ops):
    """Every (comm, peer, tag) stream numbers 1..k regardless of how the
    'threads' interleave — the invariant section 7 needs."""
    ts = TagChannelSeq()
    seen = {}
    for comm, peer, tag in ops:
        seq = ts.next(comm, peer, tag)
        key = (comm, peer, tag)
        assert seq == seen.get(key, 0) + 1
        seen[key] = seq
    for (comm, peer, tag), last in seen.items():
        assert ts.current(comm, peer, tag) == last
