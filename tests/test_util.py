"""Utility module tests (units, stats, tables)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import summarize
from repro.util.table import format_table
from repro.util.units import MB, SEC, mb_per_s, ns_to_s


def test_ns_to_s():
    assert ns_to_s(SEC) == 1.0
    assert ns_to_s(1_500_000_000) == 1.5


def test_mb_per_s():
    assert mb_per_s(MB, SEC) == pytest.approx(1.0)
    assert mb_per_s(10 * MB, 2 * SEC) == pytest.approx(5.0)
    assert mb_per_s(MB, 0) == 0.0


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.mean == 2.0
    assert s.minimum == 1.0 and s.maximum == 3.0
    assert s.total == 6.0
    assert s.stddev == pytest.approx((2 / 3) ** 0.5)


def test_summarize_stddev_unbiased_by_mean_clamp():
    """Regression: variance must center on the true total/n, with only
    the *reported* mean clamped.  [0.05]*3 sums to 0.15000000000000002,
    so total/n lands one ULP above max() and the clamp engages."""
    vals = [0.05] * 3
    s = summarize(vals)
    true_mean = sum(vals) / len(vals)
    assert true_mean > max(vals)  # the ULP overshoot that trips the clamp
    assert s.mean == max(vals)  # reported mean is clamped into range
    # stddev is sqrt(sum((v - total/n)^2)/n) — the definition, not a
    # recentering on the clamped value.
    expected = (sum((v - true_mean) ** 2 for v in vals) / len(vals)) ** 0.5
    assert s.stddev == expected
    assert s.stddev == pytest.approx(0.0, abs=1e-12)
    # A case where the clamp does not engage is unaffected.
    s2 = summarize([1.0, 3.0])
    assert s2.mean == 2.0 and s2.stddev == 1.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=100))
def test_property_summarize_bounds(values):
    s = summarize(values)
    assert s.minimum <= s.mean <= s.maximum
    assert s.stddev >= 0.0
    assert s.count == len(values)


def test_format_table_alignment():
    out = format_table(["a", "bee"], [[1, 2.5], [10, 3.25]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "bee" in lines[1]
    assert "2.50" in out and "3.25" in out  # default float format


def test_format_table_row_arity_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])
