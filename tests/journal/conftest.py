"""Shared fixtures: one recorded failure-schedule run per session.

The recording is the expensive part (a full 16-rank SPBC run); every
consumer test loads the same journal file.  Tests that need to mutate a
journal copy it first.
"""

import shutil

import pytest

from repro.core.clusters import ClusterMap
from repro.core.protocol import SPBCConfig
from repro.harness.runner import run_failure_schedule
from repro.journal import Journal
from repro.journal.recorder import journaled_app
from repro.util.units import MS

NRANKS = 16
RPN = 4
CLUSTER = 4
SCHEDULE = [(3 * MS, 2, "process"), (9 * MS, 9, "node")]
STORAGE = "tiered:ram@1,pfs@4"


def make_config():
    return SPBCConfig(
        clusters=ClusterMap.block(NRANKS, CLUSTER),
        checkpoint_every=3,
        state_nbytes=4096,
    )


def record(path, *, shards=None, journal=None):
    """Record the canonical fixture run; returns the runner result."""
    clusters = ClusterMap.block(NRANKS, CLUSTER)
    return run_failure_schedule(
        journaled_app("ring", iters=12),
        NRANKS,
        clusters,
        SCHEDULE,
        ranks_per_node=RPN,
        storage=STORAGE,
        config=make_config(),
        shards=shards,
        journal=journal if journal is not None else path,
    )


@pytest.fixture(scope="session")
def record_run():
    """The recording helper itself, for tests that re-record variants."""
    return record


@pytest.fixture(scope="session")
def recorded(tmp_path_factory):
    """(path, runner result) of a sequentially recorded run."""
    path = tmp_path_factory.mktemp("journal") / "run.journal"
    out = record(str(path))
    return str(path), out


@pytest.fixture(scope="session")
def journal(recorded):
    return Journal.load(recorded[0])


@pytest.fixture
def journal_copy(recorded, tmp_path):
    """A private on-disk copy, safe to tamper with or rewrite."""
    dst = tmp_path / "copy.journal"
    shutil.copy(recorded[0], dst)
    return str(dst)
