"""Journal file format: canonical ordering, fingerprints, loader checks."""

import json

import pytest

from repro.journal.format import (
    EVENT_KINDS,
    JOURNAL_VERSION,
    Journal,
    JournalError,
    canonical_json,
    canonical_key,
    fingerprint,
    strip_lsn,
)


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert canonical_json({"a": 2, "b": 1}) == '{"a":2,"b":1}'


def test_fingerprint_excludes_itself_and_tracks_content():
    h = {"nranks": 8, "app": None}
    fp = fingerprint(h)
    assert fingerprint({**h, "fingerprint": fp}) == fp
    assert fingerprint({**h, "nranks": 9}) != fp


def test_canonical_key_orders_time_then_kind():
    evs = [
        {"k": "finish", "t": 5, "rank": 0},
        {"k": "commit", "t": 5, "rank": 0, "round": 1},
        {"k": "restart", "t": 5, "cluster": 0, "round": 1},
        {"k": "failure", "t": 5, "rank": 0, "cluster": 0},
        {"k": "commit", "t": 3, "rank": 2, "round": 1},
    ]
    ordered = sorted(evs, key=canonical_key)
    # earlier time first; same-instant ties break failure < restart <
    # commit < finish (the causal order of a crash at that instant)
    assert [e["k"] for e in ordered] == [
        "commit", "failure", "restart", "commit", "finish",
    ]
    assert ordered[0]["t"] == 3


def test_canonical_key_ties_break_by_rank_then_round():
    a = {"k": "commit", "t": 5, "rank": 1, "round": 1}
    b = {"k": "commit", "t": 5, "rank": 2, "round": 1}
    c = {"k": "commit", "t": 5, "rank": 2, "round": 2}
    assert sorted([c, b, a], key=canonical_key) == [a, b, c]


def test_canonical_key_ignores_lsn():
    a = {"k": "commit", "t": 5, "rank": 1, "round": 1, "lsn": 9}
    b = {"k": "commit", "t": 5, "rank": 1, "round": 1, "lsn": 2}
    assert canonical_key(a) == canonical_key(b)
    assert strip_lsn(a) == strip_lsn(b)
    assert "lsn" not in strip_lsn(a)


def _header(**over):
    h = {"type": "header", "version": JOURNAL_VERSION, "nranks": 4,
         "schedule": [], "app": None}
    h.update(over)
    h["fingerprint"] = fingerprint(h)
    return h


def _write(path, records):
    with open(path, "w") as fh:
        for rec in records:
            fh.write(canonical_json(rec) + "\n")


def _ev(lsn, **fields):
    ev = {"type": "ev", "lsn": lsn, "k": "finish", "t": lsn, "rank": 0}
    ev.update(fields)
    return ev


def test_load_roundtrip_and_views(tmp_path):
    p = tmp_path / "j.journal"
    _write(p, [
        _header(),
        _ev(1, k="commit", rank=1, round=1, t=10),
        _ev(2, k="finish", rank=0, t=20),
        {"type": "end", "makespan_ns": 20},
    ])
    j = Journal.load(p)
    assert j.complete and not j.torn_tail
    assert j.last_lsn == 2
    assert j.commit_history()[1] == [(1, 10)]
    assert j.finish_ns() == {0: 20}
    assert j.result["makespan_ns"] == 20


def test_load_rejects_empty_file(tmp_path):
    p = tmp_path / "j.journal"
    p.write_text("")
    with pytest.raises(JournalError, match="empty"):
        Journal.load(p)


def test_load_rejects_non_header_first_record(tmp_path):
    p = tmp_path / "j.journal"
    _write(p, [{"type": "ev", "lsn": 1}])
    with pytest.raises(JournalError, match="not a header"):
        Journal.load(p)


def test_load_rejects_version_mismatch(tmp_path):
    p = tmp_path / "j.journal"
    _write(p, [_header(version=JOURNAL_VERSION + 1)])
    with pytest.raises(JournalError, match="version"):
        Journal.load(p)


def test_load_rejects_edited_header(tmp_path):
    p = tmp_path / "j.journal"
    h = _header()
    h["nranks"] = 8  # edit after fingerprinting
    _write(p, [h])
    with pytest.raises(JournalError, match="fingerprint"):
        Journal.load(p)


def test_load_rejects_lsn_gap(tmp_path):
    p = tmp_path / "j.journal"
    _write(p, [_header(), _ev(1), _ev(3)])
    with pytest.raises(JournalError, match="LSN gap"):
        Journal.load(p)


def test_load_rejects_duplicate_end(tmp_path):
    p = tmp_path / "j.journal"
    _write(p, [_header(), {"type": "end"}, {"type": "end"}])
    with pytest.raises(JournalError, match="duplicate end"):
        Journal.load(p)


def test_load_rejects_event_after_end(tmp_path):
    p = tmp_path / "j.journal"
    _write(p, [_header(), {"type": "end"}, _ev(1)])
    with pytest.raises(JournalError, match="after the end"):
        Journal.load(p)


def test_load_rejects_unknown_record_type(tmp_path):
    p = tmp_path / "j.journal"
    _write(p, [_header(), {"type": "checkpoint?"}])
    with pytest.raises(JournalError, match="unknown record type"):
        Journal.load(p)


def test_load_tolerates_torn_final_line_only(tmp_path):
    p = tmp_path / "j.journal"
    line = canonical_json(_ev(2))
    with open(p, "w") as fh:
        fh.write(canonical_json(_header()) + "\n")
        fh.write(canonical_json(_ev(1)) + "\n")
        fh.write(line[: len(line) // 2])  # torn mid-append, no newline
    j = Journal.load(p)
    assert j.torn_tail and not j.complete
    assert j.last_lsn == 1

    # The same corruption anywhere else is an error, not a torn tail.
    p2 = tmp_path / "j2.journal"
    with open(p2, "w") as fh:
        fh.write(canonical_json(_header()) + "\n")
        fh.write(line[: len(line) // 2] + "\n")
        fh.write(canonical_json(_ev(2)) + "\n")
    with pytest.raises(JournalError, match="corrupt record on line 2"):
        Journal.load(p2)


def test_event_kinds_cover_the_observable_surface():
    assert EVENT_KINDS == ("failure", "restart", "commit", "gc", "finish")


def test_recorded_journal_is_valid_jsonl(recorded):
    path, _ = recorded
    with open(path) as fh:
        lines = fh.read().splitlines()
    types = [json.loads(ln)["type"] for ln in lines]
    assert types[0] == "header"
    assert types[-1] == "end"
    assert set(types[1:-1]) == {"ev"}
    lsns = [json.loads(ln)["lsn"] for ln in lines[1:-1]]
    assert lsns == list(range(1, len(lsns) + 1))
